"""Cost-model parameters (Section 2 and Section 5 of the paper)."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.exceptions import InstanceError

#: The paper's default network penalty for a 10-gigabit network (Section 5).
DEFAULT_NETWORK_PENALTY = 8.0

#: Default load-balance weight. NOTE on paper fidelity: objective (6)
#: weights cost by ``lambda`` and the max site load ``m`` by
#: ``1 - lambda``, and Section 5 says "we mainly focus on minimizing the
#: total costs and therefore set lambda low (0.1)" — which contradicts
#: the formula (a low cost-weight makes load balancing dominant) and the
#: paper's own results (its costs never inflate to buy balance, and it
#: describes load balance as a tie-breaker "if there is a cost draw").
#: We therefore read the paper's "lambda = 0.1" as the *load-balance
#: priority* and default the cost weight to 0.9; with this value every
#: qualitative result of the paper reproduces (see EXPERIMENTS.md).
DEFAULT_LAMBDA = 0.9


class WriteAccounting(enum.Enum):
    """The three write-cost accounting choices of Section 2.1.

    The paper adopts :attr:`ALL_ATTRIBUTES` (a conservative overestimate
    that keeps the model linear in ``y``); the other two are implemented
    for the ablation benchmark.
    """

    #: "Access relevant attributes": a fraction is written only if the
    #: query updates at least one attribute co-located with it. Most
    #: accurate, quadratic in ``y`` (only supported by the evaluator and
    #: the SA solver, not the linearised QP).
    RELEVANT_ATTRIBUTES = "relevant"

    #: "Access all attributes": write queries write to every site holding
    #: any fraction of a touched table. The paper's choice.
    ALL_ATTRIBUTES = "all"

    #: "Access no attributes": writes cost only network transfer.
    NO_ATTRIBUTES = "none"


@dataclass(frozen=True)
class CostParameters:
    """Tunable parameters of the cost model.

    Parameters
    ----------
    network_penalty:
        The paper's ``p`` >= 0. ``p = 0`` models all partitions placed
        locally on one physical machine (Table 6's "Local" columns);
        ``p = 8`` models a 10-gigabit network (the default).
    load_balance_lambda:
        The paper's ``lambda`` in [0, 1]: weight ``lambda`` on total cost
        and ``1 - lambda`` on the maximally loaded site.
    write_accounting:
        Which Section-2.1 write accounting to use (default: the paper's).
    latency_penalty:
        Appendix A's ``p_l``; used only when latency estimation is
        requested. ``0`` disables the latency term.
    """

    network_penalty: float = DEFAULT_NETWORK_PENALTY
    load_balance_lambda: float = DEFAULT_LAMBDA
    write_accounting: WriteAccounting = WriteAccounting.ALL_ATTRIBUTES
    latency_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.network_penalty < 0:
            raise InstanceError(
                f"network penalty must be >= 0, got {self.network_penalty!r}"
            )
        if not 0.0 <= self.load_balance_lambda <= 1.0:
            raise InstanceError(
                f"lambda must be in [0, 1], got {self.load_balance_lambda!r}"
            )
        if self.latency_penalty < 0:
            raise InstanceError(
                f"latency penalty must be >= 0, got {self.latency_penalty!r}"
            )

    @property
    def is_local(self) -> bool:
        """True when partitions are modelled as locally placed (p = 0)."""
        return self.network_penalty == 0.0

    def with_local_placement(self) -> "CostParameters":
        """Return a copy with ``p = 0`` (Table 6's local placement)."""
        return replace(self, network_penalty=0.0)

    def with_penalty(self, network_penalty: float) -> "CostParameters":
        return replace(self, network_penalty=network_penalty)

    def with_lambda(self, load_balance_lambda: float) -> "CostParameters":
        return replace(self, load_balance_lambda=load_balance_lambda)


#: Parameters used throughout the paper's experiments (p=8, lambda=0.1).
PAPER_DEFAULTS = CostParameters()
