"""Incremental evaluation of objective (6) for local-search solvers.

The dense :class:`~repro.costmodel.evaluator.SolutionEvaluator` computes
``(|A|, |T|, |S|)`` einsums from scratch on every call, which makes the
simulated annealer's inner loop scale with instance size even when a
move touches a single transaction.  :class:`IncrementalEvaluator`
instead keeps the cost of the *current* solution as mutable state and
updates it in time proportional to the changed rows:

* ``c1x[s, a] = sum_t c1[a, t] x[t, s]`` and the analogous ``c3x`` —
  the ``c1 @ x`` / ``c3 @ x`` products the sub-solver needs — plus
  ``phix[s, a] = sum_t phi[a, t] x[t, s]`` (forced-replica counts for
  read co-location), stored side by side in one ``(|S|, 3|A|)`` block
  matrix so a transaction move is a single scatter matmul,
* ``c1y[s, t] = sum_a c1[a, t] y[a, s]``, ``c3y`` and ``ycov[s, t] =
  sum_a phi[a, t] y[a, s]`` (covered read attributes; ``missing =
  phi_total - ycov``), stored as one ``(|S|, 3|T|)`` block matrix so a
  batch of replica toggles is a single scatter matmul,
* per-site loads split into ``read_load`` (the equation-(5) bilinear
  part) and ``write_load`` (``c4 @ y``),
* the scalars ``bilinear`` (``sum y c1 x``) and ``linear`` (``c2 @
  y.sum(1)``) whose sum is objective (4); the network-transfer totals
  are already folded into ``c1``/``c2`` by the coefficient builder,
* in ``RELEVANT_ATTRIBUTES`` mode, the per-(table-group, site)
  hit-counts and byte-sums from which the exact write accounting is
  reassembled, plus the ``c4 @ y.sum(1)`` overestimate it replaces.

The count blocks ``phix`` / ``ycov`` hold small integers in float64
(exact well below 2**53) so their updates run through BLAS as well.

Invariants (property-tested against the dense evaluator in
``tests/test_incremental.py``):

* after ``reset(x, y)`` or any sequence of mutations, ``objective4()``,
  ``objective6()`` and ``site_loads()`` agree with the dense evaluator
  on the equivalent ``(x, y)`` matrices to ~1e-9 (relative),
* a ``begin_trial`` / ``rollback`` pair restores the state *exactly*
  (bitwise) — rejected annealing moves introduce no float drift,
* block columns of sites that hold no transactions (or no replicas) are
  snapped to exact zero so structural ties between empty sites break
  the same way as in the dense path.

A transaction move costs ``O(|A| + |S|)``, a replica toggle
``O(|T| + |Qw|)``; ``objective6()`` itself is ``O(|S|)``.  Trials
snapshot the state in ``O((|A| + |T|) * |S|)`` — still a factor
``min(|A|, |T|)`` below one dense evaluation.

When the dense path is still used
---------------------------------

The incremental evaluator covers objective (4)/(6) and the greedy
sub-problem inputs.  The dense evaluator remains the single source of
truth and is still used for: the final collapsed-layout guard, the
``subsolver="exact"`` MIP sub-solves, the Appendix-A latency estimate,
cost breakdowns and all reporting.  ``SaOptions(incremental=False)``
forces the annealer onto the dense path end to end.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.coefficients import CostCoefficients
from repro.costmodel.config import WriteAccounting
from repro.exceptions import InstanceError, SolverError


class IncrementalEvaluator:
    """Mutable cost state for one ``(x, y)`` solution.

    Parameters
    ----------
    coefficients:
        The static cost coefficients (also provide the parameters).
    num_sites:
        Number of sites ``|S|`` of the solutions to be tracked.
    """

    def __init__(self, coefficients: CostCoefficients, num_sites: int):
        if num_sites < 1:
            raise InstanceError(f"need at least one site, got {num_sites}")
        self.coefficients = coefficients
        self.num_sites = num_sites
        parameters = coefficients.parameters
        self._lam = parameters.load_balance_lambda
        self._relevant_mode = (
            parameters.write_accounting is WriteAccounting.RELEVANT_ATTRIBUTES
        )
        self._num_attributes = coefficients.num_attributes
        self._num_transactions = coefficients.num_transactions
        self._c2 = coefficients.c2
        self._c4 = coefficients.c4
        phi = (coefficients.indicators.phi > 0).astype(float)  # (|A|, |T|)
        self._phi_total = phi.sum(axis=0)  # (|T|,) reads per transaction
        #: Static blocks: per attribute the stacked (c1 | c3 | phi) row
        #: of length 3|T|, and per transaction the stacked
        #: (c1.T | c3.T | phi.T) row of length 3|A|.
        self._y_block = np.ascontiguousarray(
            np.hstack((coefficients.c1, coefficients.c3, phi))
        )
        self._x_block = np.ascontiguousarray(
            np.hstack((coefficients.c1.T, coefficients.c3.T, phi.T))
        )
        self._sites_arange = np.arange(num_sites)
        migration = coefficients.migration
        if migration is not None and migration.c5.shape != (
            self._num_attributes,
            num_sites,
        ):
            raise InstanceError(
                f"migration block spans {migration.c5.shape} but the "
                f"evaluator tracks ({self._num_attributes}, {num_sites}); "
                f"rebuild the block for this site count"
            )
        self._c5 = None if migration is None else migration.c5
        #: One-time move bytes of the current y (0.0 without a block);
        #: maintained through the same signed y-deltas as the linear
        #: term, snapshotted with the scalars for bitwise rollback.
        self._migration = 0.0
        if self._relevant_mode:
            self._group = coefficients.attribute_group  # (|A|,)
            self._num_groups = coefficients.group_onehot.shape[0]
            self._upd = np.ascontiguousarray(
                (coefficients.write_updates > 0).astype(np.int64)
            )  # (|A|, |Qw|)
            self._wbytes = coefficients.write_weights  # (|A|, |Qw|)
        self._snapshot: dict | None = None
        self._initialized = False

    # ------------------------------------------------------------------
    # Views into the stacked state blocks
    # ------------------------------------------------------------------
    @property
    def _c1x(self) -> np.ndarray:  # (|S|, |A|)
        return self._xstate[:, : self._num_attributes]

    @property
    def _c3x(self) -> np.ndarray:
        return self._xstate[:, self._num_attributes : 2 * self._num_attributes]

    @property
    def _phix(self) -> np.ndarray:
        return self._xstate[:, 2 * self._num_attributes :]

    @property
    def _c1y(self) -> np.ndarray:  # (|S|, |T|)
        return self._ystate[:, : self._num_transactions]

    @property
    def _c3y(self) -> np.ndarray:
        return self._ystate[:, self._num_transactions : 2 * self._num_transactions]

    @property
    def _ycov(self) -> np.ndarray:
        return self._ystate[:, 2 * self._num_transactions :]

    # ------------------------------------------------------------------
    # (Re)initialisation
    # ------------------------------------------------------------------
    def reset(self, x: np.ndarray, y: np.ndarray) -> None:
        """Rebuild the full state from dense ``(x, y)`` matrices.

        ``x`` must place every transaction on exactly one site; ``y``
        may be any 0/1 matrix (the cost formulas do not require
        coverage).  Cost: one pass of the dense products,
        ``O(|A| * |T| * |S|)``.
        """
        coeff = self.coefficients
        x = np.asarray(x)
        y = np.asarray(y)
        if x.shape != (coeff.num_transactions, self.num_sites):
            raise InstanceError(
                f"x must have shape ({coeff.num_transactions}, {self.num_sites}), "
                f"got {x.shape}"
            )
        if y.shape != (coeff.num_attributes, self.num_sites):
            raise InstanceError(
                f"y must have shape ({coeff.num_attributes}, {self.num_sites}), "
                f"got {y.shape}"
            )
        placed = np.asarray(x, dtype=float).sum(axis=1)
        if np.any(placed != 1.0):
            bad = int(np.flatnonzero(placed != 1.0)[0])
            raise InstanceError(
                f"transaction {coeff.instance.transactions[bad].name!r} is on "
                f"{placed[bad]:g} sites (incremental state needs exactly 1)"
            )
        xs = np.asarray(x, dtype=float)
        ys = np.asarray(y, dtype=float)
        self._home = np.ascontiguousarray(x.argmax(axis=1), dtype=np.intp)
        # Unconditional copy: the evaluator mutates this array in place
        # and must never alias the caller's solution.
        self._y = np.array(y, dtype=bool, order="C", copy=True)
        self._xstate = np.ascontiguousarray(xs.T @ self._x_block)  # (|S|, 3|A|)
        self._ystate = np.ascontiguousarray(ys.T @ self._y_block)  # (|S|, 3|T|)
        replica_counts = ys.sum(axis=1)
        self._site_tx = np.bincount(self._home, minlength=self.num_sites)
        self._site_rep = self._y.sum(axis=0).astype(np.int64)
        arange_t = np.arange(coeff.num_transactions)
        self._bilinear = float(self._c1y[self._home, arange_t].sum())
        self._linear = float(self._c2 @ replica_counts)
        self._migration = (
            0.0 if self._c5 is None else float((self._c5 * ys).sum())
        )
        self._read_load = np.zeros(self.num_sites)
        np.add.at(self._read_load, self._home, self._c3y[self._home, arange_t])
        self._write_load = self._c4 @ ys  # (|S|,)
        if self._relevant_mode:
            self._overestimate = float(self._c4 @ replica_counts)
            num_writes = self._upd.shape[1]
            # hit[g, s, q] / wbyte[g, s, q]: per table-group and site,
            # the count of updated attributes present and the byte sum
            # of present fractions, per write query.
            self._hit = np.zeros(
                (self._num_groups, self.num_sites, num_writes), dtype=np.int64
            )
            self._wbyte = np.zeros((self._num_groups, self.num_sites, num_writes))
            present = self._y.astype(np.int64)
            np.add.at(
                self._hit,
                self._group,
                present[:, :, None] * self._upd[:, None, :],
            )
            np.add.at(
                self._wbyte,
                self._group,
                ys[:, :, None] * self._wbytes[:, None, :],
            )
            self._relevant = float(self._wbyte[self._hit > 0].sum())
        self._snapshot = None
        self._initialized = True
        self._snap_empty_sites(self._sites_arange)

    # ------------------------------------------------------------------
    # Read accessors
    # ------------------------------------------------------------------
    def objective4(self) -> float:
        """The paper's objective (4) of the current state."""
        total = self._bilinear + self._linear
        if self._relevant_mode:
            total += self._relevant_total() - self._overestimate
        if self._c5 is not None:
            total += self._migration
        return total

    def objective6(self) -> float:
        """The blended objective (6) of the current state."""
        cost = self.objective4()
        if self._lam == 1.0:
            return cost
        return self._lam * cost + (1.0 - self._lam) * self.max_load()

    def site_loads(self) -> np.ndarray:
        """Equation (5) per-site loads (a fresh array)."""
        return self._read_load + self._write_load

    def max_load(self) -> float:
        return float((self._read_load + self._write_load).max())

    def x_matrix(self) -> np.ndarray:
        """The current ``x`` as a dense boolean matrix (fresh array)."""
        x = np.zeros((self._home.shape[0], self.num_sites), dtype=bool)
        x[np.arange(self._home.shape[0]), self._home] = True
        return x

    def y_matrix(self) -> np.ndarray:
        """The current ``y`` as a dense boolean matrix (fresh copy)."""
        return self._y.copy()

    def forced_y(self) -> np.ndarray:
        """Replicas forced by read co-location under the current ``x``:
        ``(|A|, |S|)`` boolean, equals ``phi @ x > 0``."""
        return (self._phix > 0).T

    # ------------------------------------------------------------------
    # Sub-problem inputs (replacing the sub-solver's dense matmuls)
    # ------------------------------------------------------------------
    def y_subproblem_inputs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(k, load_weight, forced)`` for ``optimize_y_greedy`` under
        the current ``x`` — the products the dense path recomputes as
        ``c1 @ x`` / ``c3 @ x`` / ``phi @ x`` every call."""
        k = self._lam * (self._c1x.T + self._c2[:, None])
        load_weight = self._c3x.T + self._c4[:, None]
        return k, load_weight, self.forced_y()

    def x_subproblem_inputs(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(cost, read_load, missing, static_load)`` for
        ``optimize_x_greedy`` under the current ``y``."""
        cost = self._lam * self._c1y.T
        read_load = np.ascontiguousarray(self._c3y.T)
        missing = np.ascontiguousarray((self._phi_total[None, :] - self._ycov).T)
        return cost, read_load, missing, self._write_load.copy()

    # ------------------------------------------------------------------
    # Trial protocol
    # ------------------------------------------------------------------
    _SNAP_ARRAYS = (
        "_home",
        "_y",
        "_xstate",
        "_ystate",
        "_site_tx",
        "_site_rep",
        "_read_load",
        "_write_load",
    )
    _SNAP_SCALARS = ("_bilinear", "_linear", "_migration")

    def begin_trial(self) -> None:
        """Snapshot the state; ``rollback`` restores it bitwise."""
        self._require_initialized()
        if self._snapshot is not None:
            raise SolverError("begin_trial called with a trial already open")
        snapshot = {name: getattr(self, name).copy() for name in self._SNAP_ARRAYS}
        for name in self._SNAP_SCALARS:
            snapshot[name] = getattr(self, name)
        if self._relevant_mode:
            snapshot["_overestimate"] = self._overestimate
            snapshot["_relevant"] = self._relevant
            snapshot["_hit"] = self._hit.copy()
            snapshot["_wbyte"] = self._wbyte.copy()
        self._snapshot = snapshot

    def commit(self) -> None:
        """Keep the trial's mutations; drop the snapshot."""
        if self._snapshot is None:
            raise SolverError("commit called without begin_trial")
        self._snapshot = None

    def rollback(self) -> None:
        """Discard the trial's mutations; restore the snapshot exactly."""
        if self._snapshot is None:
            raise SolverError("rollback called without begin_trial")
        for name, value in self._snapshot.items():
            setattr(self, name, value)
        self._snapshot = None

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def move_transactions(self, transactions, new_sites) -> None:
        """Relocate ``transactions[i]`` to ``new_sites[i]``.

        Transactions already on their target site are skipped; a
        transaction listed twice resolves to its last target.  Cost
        ``O(moved * |A|)``.
        """
        self._require_initialized()
        ts = np.asarray(transactions, dtype=np.intp).ravel()
        sites = np.asarray(new_sites, dtype=np.intp).ravel()
        if ts.size == 0:
            return
        if np.unique(ts).size != ts.size:
            _, first_of_reversed = np.unique(ts[::-1], return_index=True)
            keep = ts.size - 1 - first_of_reversed
            ts, sites = ts[keep], sites[keep]
        changed = self._home[ts] != sites
        if not changed.all():
            ts, sites = ts[changed], sites[changed]
        if ts.size:
            self._move(ts, sites)

    def set_replicas(self, attributes, sites, value: bool) -> None:
        """Set ``y[attributes[i], sites[i]] = value`` for each pair.

        Pairs already at ``value`` are skipped; duplicate pairs are
        applied once.  Cost ``O(toggled * (|T| + |Qw|))``.
        """
        self._require_initialized()
        a_arr = np.asarray(attributes, dtype=np.intp).ravel()
        s_arr = np.asarray(sites, dtype=np.intp).ravel()
        if a_arr.size == 0:
            return
        a_arr, s_arr = self._unique_pairs(a_arr, s_arr)
        changed = self._y[a_arr, s_arr] != value
        if not changed.all():
            a_arr, s_arr = a_arr[changed], s_arr[changed]
        if a_arr.size:
            signs = np.full(a_arr.shape, 1.0 if value else -1.0)
            self._apply_y_diff(a_arr, s_arr, signs)

    def assign_x(self, x_new: np.ndarray) -> None:
        """Diff ``x_new`` against the current placement and apply the
        moves; cost proportional to the changed transactions."""
        self._require_initialized()
        new_home = np.asarray(x_new).argmax(axis=1)
        moved = np.flatnonzero(new_home != self._home)
        if moved.size:
            self._move(moved, new_home[moved])

    def assign_y(self, y_new: np.ndarray) -> None:
        """Diff ``y_new`` against the current replication and apply the
        toggles; cost proportional to the changed entries."""
        self._require_initialized()
        y_new = np.asarray(y_new, dtype=bool)
        diff_a, diff_s = np.nonzero(self._y != y_new)
        if diff_a.size:
            signs = np.where(y_new[diff_a, diff_s], 1.0, -1.0)
            self._apply_y_diff(diff_a, diff_s, signs)

    # ------------------------------------------------------------------
    # Delta APIs
    # ------------------------------------------------------------------
    def delta_move_transactions(self, transactions, new_sites) -> float:
        """Apply the moves and return the change in objective (6).

        The mutation is kept; wrap in ``begin_trial``/``rollback`` to
        probe a candidate without committing it.
        """
        before = self.objective6()
        self.move_transactions(transactions, new_sites)
        return self.objective6() - before

    def delta_toggle_replicas(self, attributes, sites) -> float:
        """Flip ``y`` at each ``(attribute, site)`` pair (duplicates
        are flipped once) and return the change in objective (6).  Same
        trial semantics as :meth:`delta_move_transactions`."""
        self._require_initialized()
        before = self.objective6()
        a_arr = np.asarray(attributes, dtype=np.intp).ravel()
        s_arr = np.asarray(sites, dtype=np.intp).ravel()
        if a_arr.size:
            a_arr, s_arr = self._unique_pairs(a_arr, s_arr)
            signs = np.where(self._y[a_arr, s_arr], -1.0, 1.0)
            self._apply_y_diff(a_arr, s_arr, signs)
        return self.objective6() - before

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _unique_pairs(
        self, a_arr: np.ndarray, s_arr: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        keys = a_arr * self.num_sites + s_arr
        if np.unique(keys).size != keys.size:
            _, unique_index = np.unique(keys, return_index=True)
            a_arr, s_arr = a_arr[unique_index], s_arr[unique_index]
        return a_arr, s_arr

    def _move(self, ts: np.ndarray, sites: np.ndarray) -> None:
        """Apply moves; ``ts`` distinct, all targets differ from home."""
        old_sites = self._home[ts].copy()
        # Signed per-site scatter in one matmul over the stacked block:
        # weight[s, i] = [sites[i] == s] - [old_sites[i] == s].
        weight = (sites[None, :] == self._sites_arange[:, None]).astype(float)
        weight -= old_sites[None, :] == self._sites_arange[:, None]
        self._xstate += weight @ self._x_block[ts]
        c1y, c3y = self._c1y, self._c3y
        self._bilinear += float(c1y[sites, ts].sum() - c1y[old_sites, ts].sum())
        both = np.concatenate((sites, old_sites))
        self._read_load += np.bincount(
            both,
            weights=np.concatenate((c3y[sites, ts], -c3y[old_sites, ts])),
            minlength=self.num_sites,
        )
        self._site_tx += np.bincount(sites, minlength=self.num_sites)
        self._site_tx -= np.bincount(old_sites, minlength=self.num_sites)
        self._home[ts] = sites
        self._snap_empty_sites(both)

    def _apply_y_diff(
        self, a_arr: np.ndarray, s_arr: np.ndarray, signs: np.ndarray
    ) -> None:
        """Toggle distinct ``(a, s)`` pairs: ``+1`` adds a replica that
        is absent, ``-1`` removes one that is present."""
        onehot = (s_arr[None, :] == self._sites_arange[:, None]) * signs[None, :]
        self._ystate += onehot @ self._y_block[a_arr]
        c1x_gather = self._c1x[s_arr, a_arr]
        c3x_gather = self._c3x[s_arr, a_arr]
        self._bilinear += float(signs @ c1x_gather)
        self._linear += float(signs @ self._c2[a_arr])
        if self._c5 is not None:
            self._migration += float(signs @ self._c5[a_arr, s_arr])
        self._read_load += np.bincount(
            s_arr, weights=signs * c3x_gather, minlength=self.num_sites
        )
        c4_gather = self._c4[a_arr]
        self._write_load += np.bincount(
            s_arr, weights=signs * c4_gather, minlength=self.num_sites
        )
        # signs are exactly +-1.0, so the float bincount is integral.
        self._site_rep += np.bincount(
            s_arr, weights=signs, minlength=self.num_sites
        ).astype(np.int64)
        self._y[a_arr, s_arr] = signs > 0
        if self._relevant_mode:
            self._overestimate += float(signs @ c4_gather)
            steps = signs.astype(np.int64)
            g_arr = self._group[a_arr]
            # Only the touched (group, site) rows can change the exact
            # write accounting: difference their contribution around the
            # scatter so objective4 stays O(1) for the relevant term.
            _, unique_index = np.unique(
                g_arr * self.num_sites + s_arr, return_index=True
            )
            g_rows = g_arr[unique_index]
            s_rows = s_arr[unique_index]
            touched_hit = self._hit[g_rows, s_rows]
            touched_bytes = self._wbyte[g_rows, s_rows]
            self._relevant -= float(touched_bytes[touched_hit > 0].sum())
            np.add.at(self._hit, (g_arr, s_arr), steps[:, None] * self._upd[a_arr])
            np.add.at(
                self._wbyte, (g_arr, s_arr), signs[:, None] * self._wbytes[a_arr]
            )
            touched_hit = self._hit[g_rows, s_rows]
            touched_bytes = self._wbyte[g_rows, s_rows]
            self._relevant += float(touched_bytes[touched_hit > 0].sum())
        self._snap_empty_sites(s_arr)

    def _relevant_total(self) -> float:
        """Section 2.1's exact write accounting: a scalar maintained by
        differencing the touched (group, site) rows of the hit/byte
        tensors on each toggle (transaction moves cannot change it)."""
        return self._relevant

    def _snap_empty_sites(self, sites: np.ndarray) -> None:
        """Zero the block columns of sites holding no transactions or
        no replicas, so they match the dense path exactly and stay free
        of accumulated round-off.  ``sites`` may contain duplicates."""
        no_tx = sites[self._site_tx[sites] == 0]
        if no_tx.size:
            self._xstate[no_tx] = 0.0
            self._read_load[no_tx] = 0.0
        no_rep = sites[self._site_rep[sites] == 0]
        if no_rep.size:
            self._ystate[no_rep] = 0.0
            self._write_load[no_rep] = 0.0
            self._read_load[no_rep] = 0.0

    def _require_initialized(self) -> None:
        if not self._initialized:
            raise SolverError("IncrementalEvaluator used before reset(x, y)")
