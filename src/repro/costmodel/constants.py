"""The five static indicator arrays of Section 2.1.

For an instance with attribute set ``A``, query set ``Q`` and
transaction set ``T`` the paper defines:

* ``alpha[a,q]`` — attribute ``a`` itself is accessed by query ``q``,
* ``beta[a,q]``  — ``a`` belongs to a table that ``q`` accesses,
* ``gamma[q,t]`` — query ``q`` is used in transaction ``t``,
* ``delta[q]``   — ``q`` is a write query,
* ``phi[a,t]``   — some *read* query of ``t`` accesses ``a``.

All arrays are dense numpy float64 (they multiply into weight sums) and
are built once per instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.instance import ProblemInstance


@dataclass(frozen=True)
class IndicatorArrays:
    """Dense indicator arrays plus the row-count matrix ``n[a,q]``."""

    alpha: np.ndarray  # (|A|, |Q|)
    beta: np.ndarray  # (|A|, |Q|)
    gamma: np.ndarray  # (|Q|, |T|)
    delta: np.ndarray  # (|Q|,)
    phi: np.ndarray  # (|A|, |T|)
    rows: np.ndarray  # (|A|, |Q|)  n_{a,q}; zero where beta == 0

    @property
    def num_attributes(self) -> int:
        return self.alpha.shape[0]

    @property
    def num_queries(self) -> int:
        return self.alpha.shape[1]

    @property
    def num_transactions(self) -> int:
        return self.gamma.shape[1]


def build_indicators(instance: ProblemInstance) -> IndicatorArrays:
    """Construct the indicator arrays for ``instance``.

    Invariants established here (and property-tested):

    * ``alpha <= beta`` element-wise (accessing an attribute implies
      accessing its table),
    * every column of ``gamma`` sums over transactions to exactly 1,
    * ``phi[a,t] = max over read queries q of t of alpha[a,q]``.
    """
    num_attributes = instance.num_attributes
    num_queries = instance.num_queries
    num_transactions = instance.num_transactions

    alpha = np.zeros((num_attributes, num_queries))
    beta = np.zeros((num_attributes, num_queries))
    gamma = np.zeros((num_queries, num_transactions))
    delta = np.zeros(num_queries)
    phi = np.zeros((num_attributes, num_transactions))
    rows = np.zeros((num_attributes, num_queries))

    attribute_index = instance.attribute_index
    table_attributes = instance.table_attributes
    owner = instance.query_transaction

    for q_index, query in enumerate(instance.queries):
        t_index = owner[q_index]
        gamma[q_index, t_index] = 1.0
        if query.is_write:
            delta[q_index] = 1.0
        for qualified in query.attributes:
            a_index = attribute_index[qualified]
            alpha[a_index, q_index] = 1.0
            if not query.is_write:
                phi[a_index, t_index] = 1.0
        for table in query.tables:
            n_rows = query.rows_for(table)
            for a_index in table_attributes[table]:
                beta[a_index, q_index] = 1.0
                rows[a_index, q_index] = n_rows

    return IndicatorArrays(
        alpha=alpha, beta=beta, gamma=gamma, delta=delta, phi=phi, rows=rows
    )
