"""Objective coefficients derived from the indicators (Section 2).

``W[a,q] = w_a * f_q * n_{a,q}`` estimates the byte cost of attribute
``a`` in query ``q``. From it the paper derives four static coefficient
arrays:

* ``c1[a,t] = sum_q W[a,q] * gamma[q,t] * (beta[a,q] * (1 - delta[q])
  - p * alpha[a,q] * delta[q])`` — the bilinear ``x * y`` coefficient,
* ``c2[a]   = sum_q W[a,q] * delta[q] * (beta[a,q] + p * alpha[a,q])``
  — the per-replica coefficient,
* ``c3[a,t] = sum_q W[a,q] * gamma[q,t] * beta[a,q] * (1 - delta[q])``
  — per-site read load,
* ``c4[a]   = sum_q W[a,q] * beta[a,q] * delta[q]`` — per-replica write
  load.

``c1`` can be negative (placing a replica of an updated attribute on the
updating transaction's site avoids one network transfer), which matters
to the linearisation and the SA greedy step.

The ablation write-accounting modes adjust the ``beta * delta`` terms:

* ``ALL_ATTRIBUTES`` (paper default): keep as above.
* ``NO_ATTRIBUTES``: drop the local write cost entirely (``c2``'s beta
  term and ``c4`` become zero).
* ``RELEVANT_ATTRIBUTES``: not expressible as static coefficients; the
  evaluator computes it from the raw arrays (quadratic in ``y``).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro.costmodel.config import CostParameters, WriteAccounting
from repro.costmodel.constants import IndicatorArrays, build_indicators
from repro.model.compressed import CompressedInstance
from repro.model.instance import ProblemInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.partition.current_layout import CurrentLayout


@dataclass(frozen=True)
class MigrationBlock:
    """Migration coefficients against an incumbent layout.

    ``c5[a, s] = migration_cost * w_a * (1 - y0[a, s])`` charges every
    replica the candidate layout creates that the incumbent does not
    already hold (``migration_cost`` bytes-to-move weight per attribute
    byte; replicas the incumbent already has are free, and dropping a
    replica is free).  The term is linear in ``y``, so it rides through
    the QP linearisation and the incremental evaluator's ``y``-delta
    machinery unchanged.
    """

    layout: "CurrentLayout"
    migration_cost: float
    y0: np.ndarray  # (|A|, |S|) incumbent replica indicator
    c5: np.ndarray  # (|A|, |S|) per-new-replica move cost


@dataclass(frozen=True)
class CostCoefficients:
    """All static data the solvers need, bundled with its provenance.

    ``migration`` is ``None`` for the paper's static problem; when set
    (see :func:`attach_migration`) the evaluators add the one-time
    ``sum_{a,s} c5[a,s] * y[a,s]`` move term to objective (4).
    """

    instance: ProblemInstance
    parameters: CostParameters
    indicators: IndicatorArrays
    weights: np.ndarray  # W (|A|, |Q|)
    c1: np.ndarray  # (|A|, |T|)
    c2: np.ndarray  # (|A|,)
    c3: np.ndarray  # (|A|, |T|)
    c4: np.ndarray  # (|A|,)
    migration: MigrationBlock | None = None

    @property
    def num_attributes(self) -> int:
        return self.c1.shape[0]

    @property
    def num_transactions(self) -> int:
        return self.c1.shape[1]

    @property
    def nbytes(self) -> int:
        """Memory footprint of the held dense arrays, in bytes.

        Covers the indicator tensors and ``W`` plus the four coefficient
        arrays — the data every solver touches.  Workload compression
        shows up here directly: the dominant arrays are ``O(|A| * |Q|)``
        and ``O(|A| * |T|)``, both of which shrink with the transaction
        count.  Derived ``cached_property`` products are excluded (they
        are views of the same problem and may not have been built).
        """
        indicators = self.indicators
        arrays = (
            indicators.alpha,
            indicators.beta,
            indicators.gamma,
            indicators.delta,
            indicators.phi,
            indicators.rows,
            self.weights,
            self.c1,
            self.c2,
            self.c3,
            self.c4,
        )
        return int(sum(array.nbytes for array in arrays))

    @cached_property
    def phi_bool(self) -> np.ndarray:
        """``phi`` as a boolean mask (used by co-location handling)."""
        return self.indicators.phi > 0

    @cached_property
    def read_weight(self) -> np.ndarray:
        """``W * beta * (1 - delta)`` per (a, q): read access bytes."""
        indicators = self.indicators
        return self.weights * indicators.beta * (1.0 - indicators.delta)

    @cached_property
    def write_weight(self) -> np.ndarray:
        """``W * beta * delta`` per (a, q): local write bytes (paper mode)."""
        indicators = self.indicators
        return self.weights * indicators.beta * indicators.delta

    @cached_property
    def transfer_weight(self) -> np.ndarray:
        """``W * alpha * delta`` per (a, q): network transfer bytes."""
        indicators = self.indicators
        return self.weights * indicators.alpha * indicators.delta

    # ------------------------------------------------------------------
    # Cached query / table-group structures (shared by the vectorised
    # dense evaluator and the incremental evaluator)
    # ------------------------------------------------------------------
    @cached_property
    def query_frequencies(self) -> np.ndarray:
        """``f_q`` per query, in canonical query order (|Q|,)."""
        return np.asarray([query.frequency for query in self.instance.queries])

    @cached_property
    def query_owner(self) -> np.ndarray:
        """Owning transaction index per query (|Q|,)."""
        return np.asarray(self.instance.query_transaction, dtype=np.intp)

    @cached_property
    def write_queries(self) -> np.ndarray:
        """Canonical indices of the write queries (``delta > 0``)."""
        return np.flatnonzero(self.indicators.delta > 0)

    @cached_property
    def write_updates(self) -> np.ndarray:
        """``alpha`` restricted to write queries: (|A|, |Qw|) float 0/1.

        Column ``j`` flags the attributes *updated* by the ``j``-th
        write query (order of :attr:`write_queries`).
        """
        return np.ascontiguousarray(self.indicators.alpha[:, self.write_queries])

    @cached_property
    def write_weights(self) -> np.ndarray:
        """``W`` restricted to write queries: (|A|, |Qw|) bytes."""
        return np.ascontiguousarray(self.weights[:, self.write_queries])

    @cached_property
    def attribute_group(self) -> np.ndarray:
        """Table-group index per attribute (|A|,): attributes of one
        table share a group. Groups are numbered in schema table order."""
        instance = self.instance
        group = np.empty(self.num_attributes, dtype=np.intp)
        for g_index, (_, members) in enumerate(instance.table_attributes.items()):
            for a_index in members:
                group[a_index] = g_index
        return group

    @cached_property
    def group_onehot(self) -> np.ndarray:
        """One-hot table-group matrix (|G|, |A|): ``G[g, a] = 1`` iff
        attribute ``a`` belongs to table group ``g``."""
        group = self.attribute_group
        num_groups = int(group.max()) + 1 if group.size else 0
        onehot = np.zeros((num_groups, self.num_attributes))
        onehot[group, np.arange(self.num_attributes)] = 1.0
        return onehot

    def single_site_cost(self) -> float:
        """Objective (4) of the trivial |S| = 1 solution.

        With one site all transfer terms cancel and the cost reduces to
        ``sum_{a,q} W[a,q] * beta[a,q]`` — the paper's ``|S| = 1``
        baseline column.
        """
        if self.parameters.write_accounting is WriteAccounting.NO_ATTRIBUTES:
            return float(self.read_weight.sum())
        return float(self.read_weight.sum() + self.write_weight.sum())


def build_weights(instance: ProblemInstance, indicators: IndicatorArrays) -> np.ndarray:
    """``W[a,q] = w_a * f_q * n_{a,q}`` (zero where the table is untouched)."""
    widths = np.asarray(instance.attribute_widths())
    frequencies = np.asarray([query.frequency for query in instance.queries])
    return widths[:, None] * frequencies[None, :] * indicators.rows


def build_coefficients(
    instance: "ProblemInstance | CompressedInstance",
    parameters: CostParameters | None = None,
    indicators: IndicatorArrays | None = None,
    view: str = "compressed",
) -> CostCoefficients:
    """Derive :class:`CostCoefficients` for ``instance``.

    ``indicators`` may be passed to avoid recomputing them when several
    parameter settings are evaluated on one instance (Table 6 sweeps
    ``p``; the indicators do not depend on it).

    ``instance`` may also be a
    :class:`~repro.model.compressed.CompressedInstance`; ``view``
    selects which side the coefficients describe — ``"compressed"``
    (the default: the view solvers run on) or ``"original"`` (the view
    lifted solutions are re-evaluated on).  ``view`` is ignored for a
    plain :class:`~repro.model.instance.ProblemInstance`.
    """
    if isinstance(instance, CompressedInstance):
        if view not in ("compressed", "original"):
            raise ValueError(
                f"view must be 'compressed' or 'original', got {view!r}"
            )
        instance = getattr(instance, view)
    parameters = parameters or CostParameters()
    indicators = indicators or build_indicators(instance)
    weights = build_weights(instance, indicators)
    return _assemble_coefficients(instance, parameters, indicators, weights)


def _assemble_coefficients(
    instance: ProblemInstance,
    parameters: CostParameters,
    indicators: IndicatorArrays,
    weights: np.ndarray,
) -> CostCoefficients:
    """The parameter-dependent tail of :func:`build_coefficients`."""
    penalty = parameters.network_penalty

    alpha = indicators.alpha
    beta = indicators.beta
    gamma = indicators.gamma
    delta = indicators.delta

    read_term = weights * beta * (1.0 - delta)  # (|A|, |Q|)
    transfer_term = weights * alpha * delta
    write_term = weights * beta * delta

    if parameters.write_accounting is WriteAccounting.NO_ATTRIBUTES:
        local_write = np.zeros_like(write_term)
    else:
        # ALL_ATTRIBUTES (the paper's choice). RELEVANT_ATTRIBUTES also
        # uses these coefficients as an upper bound; its exact cost is
        # evaluated from the raw arrays by the evaluator.
        local_write = write_term

    c1 = (read_term - penalty * transfer_term) @ gamma  # (|A|, |T|)
    c2 = local_write.sum(axis=1) + penalty * transfer_term.sum(axis=1)  # (|A|,)
    c3 = read_term @ gamma  # (|A|, |T|)
    c4 = local_write.sum(axis=1)  # (|A|,)

    return CostCoefficients(
        instance=instance,
        parameters=parameters,
        indicators=indicators,
        weights=weights,
        c1=c1,
        c2=c2,
        c3=c3,
        c4=c4,
    )


def build_migration_block(
    instance: ProblemInstance,
    layout: "CurrentLayout",
    migration_cost: float,
    num_sites: int,
) -> MigrationBlock:
    """Derive the ``c5`` move-cost array against an incumbent layout."""
    y0 = layout.to_matrix(instance, num_sites)
    widths = np.asarray(instance.attribute_widths(), dtype=float)
    c5 = float(migration_cost) * widths[:, None] * (1.0 - y0)
    return MigrationBlock(
        layout=layout, migration_cost=float(migration_cost), y0=y0, c5=c5
    )


def attach_migration(
    coefficients: CostCoefficients,
    layout: "CurrentLayout",
    migration_cost: float,
    num_sites: int,
) -> CostCoefficients:
    """A copy of ``coefficients`` carrying a migration term.

    The c1–c4 arrays, indicators and instance are shared by identity
    (so :class:`~repro.qp.linearize.LinearizationCache` lookups keyed on
    them still hit); only the ``migration`` field differs.  With a
    compressed view, build the block against the *original* instance's
    coefficients when re-evaluating lifted solutions — attribute widths
    and the schema are identical across views, so the layout validates
    against both.
    """
    block = build_migration_block(
        coefficients.instance, layout, migration_cost, num_sites
    )
    return dataclasses.replace(coefficients, migration=block)


class CoefficientCache:
    """Shares the parameter-independent work of :func:`build_coefficients`
    across the points of a parameter sweep.

    Indicators and weights depend only on the instance; the coefficient
    arrays built from them go through :func:`_assemble_coefficients`
    with exactly the same operations as an uncached build, so the
    returned :class:`CostCoefficients` are bitwise identical to
    ``build_coefficients(instance, parameters)`` — sweeps using the
    cache reproduce uncached results to the last ulp.  Repeated requests
    for the *same* parameters additionally return the same object, so
    its ``cached_property`` products (``phi_bool``, the write tensors,
    table groups, ...) are also shared across sweep points.

    ``capacity`` bounds the number of per-parameters entries the memo
    retains (least-recently-used eviction beyond it, counted in
    :attr:`evictions`), mirroring
    :class:`~repro.qp.linearize.LinearizationCache`: a week-long
    advisor service that sees many distinct cost parameters must not
    grow without bound.  The default ``None`` keeps the historical
    unbounded behaviour; eviction never changes any returned value —
    an evicted entry is simply reassembled (bitwise identically) on the
    next request.
    """

    def __init__(
        self,
        instance: ProblemInstance,
        indicators: IndicatorArrays | None = None,
        capacity: int | None = None,
    ):
        if capacity is not None and capacity < 1:
            from repro.exceptions import OptionsError

            raise OptionsError(
                f"coefficient cache capacity must be >= 1 (or None for "
                f"unbounded), got {capacity}"
            )
        self.instance = instance
        self.indicators = indicators or build_indicators(instance)
        self.weights = build_weights(instance, self.indicators)
        self.capacity = capacity
        self._memo: OrderedDict[CostParameters, CostCoefficients] = OrderedDict()
        #: Memo hit/miss counters (every miss still shares the cached
        #: indicators/weights — only the coefficient assembly reruns).
        self.hits = 0
        self.misses = 0
        #: Entries dropped by the LRU bound (0 while unbounded).
        self.evictions = 0

    def coefficients(self, parameters: CostParameters | None = None) -> CostCoefficients:
        """The coefficients for ``parameters`` (memoised per parameters)."""
        parameters = parameters or CostParameters()
        cached = self._memo.get(parameters)
        if cached is None:
            self.misses += 1
            cached = _assemble_coefficients(
                self.instance, parameters, self.indicators, self.weights
            )
            self._memo[parameters] = cached
            if self.capacity is not None:
                while len(self._memo) > self.capacity:
                    self._memo.popitem(last=False)
                    self.evictions += 1
        else:
            self.hits += 1
            self._memo.move_to_end(parameters)
        return cached

    def stats(self) -> dict[str, int]:
        """Hit/miss/evict counters as one dictionary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
