"""Evaluate candidate solutions ``(x, y)`` under the cost model.

``x`` is a boolean/0-1 array of shape ``(|T|, |S|)`` (transaction
placement), ``y`` of shape ``(|A|, |S|)`` (attribute placement, possibly
replicated). The evaluator computes:

* objective (4) — the "actual cost" the paper reports in every table,
* the blended objective (6) — what the solvers minimise,
* the breakdown ``A = AR + AW`` and ``B`` (transfer bytes),
* per-site loads (equation (5)),
* the Appendix-A latency estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.costmodel.coefficients import CostCoefficients
from repro.costmodel.config import WriteAccounting
from repro.exceptions import InstanceError


@dataclass(frozen=True)
class CostBreakdown:
    """Full decomposition of a solution's cost."""

    objective4: float
    objective6: float
    read_access: float  # AR
    write_access: float  # AW
    transfer: float  # B (unweighted by p)
    site_loads: tuple[float, ...]
    max_load: float
    latency: float  # Appendix A estimate (0 unless latency_penalty > 0)
    migration: float = 0.0  # one-time move bytes (0 without a layout)

    @property
    def local_access(self) -> float:
        """``A = AR + AW``."""
        return self.read_access + self.write_access

    @property
    def weighted_transfer(self) -> float:
        """``p * B``."""
        return self.objective4 - self.local_access - self.migration


class SolutionEvaluator:
    """Evaluates solutions against a fixed :class:`CostCoefficients`.

    The evaluator is the single source of truth for costs: the QP
    objective, the SA search and the execution simulator are all
    cross-checked against it in the test suite.
    """

    def __init__(self, coefficients: CostCoefficients):
        self.coefficients = coefficients

    # ------------------------------------------------------------------
    # Core objectives
    # ------------------------------------------------------------------
    def objective4(self, x: np.ndarray, y: np.ndarray) -> float:
        """The paper's objective (4): ``A + pB`` as a coefficient sum.

        With a migration block attached the one-time move term
        ``sum c5 * y`` is added on top; without one the arithmetic is
        untouched (no ``+ 0.0``), keeping layout-free evaluations
        bitwise identical to the static model.
        """
        x, y = self._check_shapes(x, y)
        coeff = self.coefficients
        bilinear = float(np.einsum("as,at,ts->", y, coeff.c1, x))
        linear = float(coeff.c2 @ y.sum(axis=1))
        if coeff.parameters.write_accounting is WriteAccounting.RELEVANT_ATTRIBUTES:
            # Replace the overestimated AW (all fractions of touched
            # tables) by the exact "relevant attributes" accounting.
            overestimate = float(coeff.c4 @ y.sum(axis=1))
            total = bilinear + linear - overestimate + self._relevant_write_access(x, y)
        else:
            total = bilinear + linear
        if coeff.migration is not None:
            total += self.migration_cost(y)
        return total

    def migration_cost(self, y: np.ndarray) -> float:
        """``sum_{a,s} c5[a,s] * y[a,s]``: bytes moved to reach ``y``."""
        coeff = self.coefficients
        if coeff.migration is None:
            return 0.0
        c5 = coeff.migration.c5
        y = np.asarray(y, dtype=float)
        if c5.shape != y.shape:
            raise InstanceError(
                f"migration block spans {c5.shape} but y has shape "
                f"{y.shape}; rebuild the block for this site count"
            )
        return float((c5 * y).sum())

    def site_loads(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Equation (5): the work of each site."""
        x, y = self._check_shapes(x, y)
        coeff = self.coefficients
        read_load = np.einsum("as,at,ts->s", y, coeff.c3, x)
        write_load = coeff.c4 @ y
        return read_load + write_load

    def objective6(self, x: np.ndarray, y: np.ndarray) -> float:
        """The blended objective (6): ``lambda * cost + (1-lambda) * m``."""
        lam = self.coefficients.parameters.load_balance_lambda
        cost = self.objective4(x, y)
        if lam == 1.0:
            return cost
        max_load = float(self.site_loads(x, y).max())
        return lam * cost + (1.0 - lam) * max_load

    # ------------------------------------------------------------------
    # Breakdown
    # ------------------------------------------------------------------
    def breakdown(self, x: np.ndarray, y: np.ndarray) -> CostBreakdown:
        """Full cost decomposition; satisfies
        ``objective4 == AR + AW + p * B`` (property-tested)."""
        x, y = self._check_shapes(x, y)
        coeff = self.coefficients
        parameters = coeff.parameters

        read_access = float(np.einsum("as,at,ts->", y, coeff.read_weight @ coeff.indicators.gamma, x))
        if parameters.write_accounting is WriteAccounting.RELEVANT_ATTRIBUTES:
            write_access = self._relevant_write_access(x, y)
        elif parameters.write_accounting is WriteAccounting.NO_ATTRIBUTES:
            write_access = 0.0
        else:
            write_access = float(coeff.write_weight.sum(axis=1) @ y.sum(axis=1))

        # B = sum W alpha delta y  -  sum W alpha delta gamma x y
        transfer_total = float(coeff.transfer_weight.sum(axis=1) @ y.sum(axis=1))
        transfer_home = float(
            np.einsum("as,at,ts->", y, coeff.transfer_weight @ coeff.indicators.gamma, x)
        )
        transfer = transfer_total - transfer_home

        loads = self.site_loads(x, y)
        max_load = float(loads.max())
        objective4 = read_access + write_access + parameters.network_penalty * transfer
        migration = 0.0
        if coeff.migration is not None:
            migration = self.migration_cost(y)
            objective4 = objective4 + migration
        lam = parameters.load_balance_lambda
        objective6 = lam * objective4 + (1.0 - lam) * max_load
        latency = self.latency(x, y) if parameters.latency_penalty > 0 else 0.0
        return CostBreakdown(
            objective4=objective4,
            objective6=objective6,
            read_access=read_access,
            write_access=write_access,
            transfer=transfer,
            site_loads=tuple(float(load) for load in loads),
            max_load=max_load,
            latency=latency,
            migration=migration,
        )

    def latency(self, x: np.ndarray, y: np.ndarray) -> float:
        """Appendix A: ``p_l * sum_q f_q * psi_q``.

        ``psi_q = 1`` iff write query ``q`` has at least one replica of
        an updated attribute on a site other than its transaction's.
        Raises :class:`InstanceError` when a transaction is placed on no
        site (its "home site" would be undefined).
        """
        x, y = self._check_shapes(x, y)
        coeff = self.coefficients
        penalty = coeff.parameters.latency_penalty
        if penalty == 0.0:
            return 0.0
        placed = x.sum(axis=1)
        if np.any(placed < 1.0):
            bad = int(np.flatnonzero(placed < 1.0)[0])
            raise InstanceError(
                f"transaction {coeff.instance.transactions[bad].name!r} is on "
                f"no site; home sites are undefined for the latency estimate"
            )
        write_queries = coeff.write_queries
        if write_queries.size == 0:
            return 0.0
        home_sites = x.argmax(axis=1)  # (|T|,)
        query_home = home_sites[coeff.query_owner[write_queries]]  # (|Qw|,)
        replica_counts = y.sum(axis=1)  # (|A|,)
        remote = replica_counts[:, None] - y[:, query_home]  # (|A|, |Qw|)
        has_remote = (coeff.write_updates * remote).sum(axis=0) > 0
        frequencies = coeff.query_frequencies[write_queries]
        return penalty * float(frequencies[has_remote].sum())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _relevant_write_access(self, x: np.ndarray, y: np.ndarray) -> float:
        """Section 2.1's exact accounting: a fraction is written only if
        the write query updates an attribute co-located with it.

        Vectorised over the cached table groups: per (table group g,
        write query q, site s) compute the count of updated attributes
        of g present on s and the byte sum of g's present fractions; a
        group contributes its bytes wherever the count is positive.
        """
        coeff = self.coefficients
        if coeff.write_queries.size == 0:
            return 0.0
        onehot = coeff.group_onehot  # (|G|, |A|)
        updates = coeff.write_updates  # (|A|, |Qw|)
        wbytes = coeff.write_weights  # (|A|, |Qw|)
        present = y > 0  # (|A|, |S|)
        # (|A|, |Qw|, |S|) -> grouped (|G|, |Qw|, |S|)
        hit = np.tensordot(onehot, updates[:, :, None] * present[:, None, :], axes=(1, 0))
        byte_sums = np.tensordot(
            onehot, wbytes[:, :, None] * present[:, None, :], axes=(1, 0)
        )
        return float(byte_sums[hit > 0].sum())

    def _check_shapes(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        coeff = self.coefficients
        if x.ndim != 2 or x.shape[0] != coeff.num_transactions:
            raise InstanceError(
                f"x must have shape (|T|={coeff.num_transactions}, |S|), "
                f"got {x.shape}"
            )
        if y.ndim != 2 or y.shape[0] != coeff.num_attributes:
            raise InstanceError(
                f"y must have shape (|A|={coeff.num_attributes}, |S|), "
                f"got {y.shape}"
            )
        if x.shape[1] != y.shape[1]:
            raise InstanceError(
                f"x and y must agree on the number of sites, "
                f"got {x.shape[1]} != {y.shape[1]}"
            )
        return x, y


def objective6_lower_bound(coefficients: CostCoefficients, num_sites: int) -> float:
    """A cheap, sound lower bound on objective (6) over *all* feasible
    solutions of model (4) with ``num_sites`` sites.

    Used by the portfolio's shared incumbent
    (:mod:`repro.sa.backends.incumbent`): once a restart's objective
    reaches this bound, no later restart can return anything strictly
    better, so pending restarts may be pruned without changing the
    best-of-N result.

    The bound sums three floors, each implied by the constraints alone:

    * **reads** — read co-location forces ``y[a, home(t)] = 1`` wherever
      ``phi[a, t] = 1``, so every read coefficient ``c3[a, t]`` with
      ``phi[a, t] = 1`` is paid by any feasible solution (attributes
      with table-only ``beta`` access and no ``phi`` can legally cost
      nothing);
    * **writes** — every attribute needs at least one replica, so the
      per-replica write coefficients ``c4`` are paid at least once
      (``ALL_ATTRIBUTES``); under ``RELEVANT_ATTRIBUTES`` the site
      hosting the heaviest updated attribute of each (table group,
      write query) pair pays at least that attribute's bytes;
    * **load** — ``p * B >= 0`` and the summed site loads are at least
      the read + write floors above, so the max load is at least their
      mean over ``num_sites``.

    The floors use the same coefficient arrays the evaluator sums, but
    not the same summation *order*, and the evaluator's own objective
    carries rounding of its einsums — so where the arithmetic is not
    provably exact (non-integral coefficients, or a ``lambda < 1``
    blend) the returned bound retreats by a conservative accumulated-
    rounding margin.  That keeps the prune proof sound in floats: a
    retreated bound can only make pruning fire less often, never skip a
    restart that could win.  On integral pure-cost instances (integer
    widths, frequencies and row counts, ``lambda = 1``) every sum is
    exact and the bound is returned untouched, so reaching the floor is
    an exact float equality.
    """
    coeff = coefficients
    parameters = coeff.parameters
    forced_read = float((coeff.c3 * coeff.phi_bool).sum())
    if parameters.write_accounting is WriteAccounting.RELEVANT_ATTRIBUTES:
        write_floor = 0.0
        masked = coeff.write_updates * coeff.write_weights  # (|A|, |Qw|)
        if masked.size:
            group = coeff.attribute_group
            for g_index in range(int(group.max()) + 1):
                rows = masked[group == g_index]
                if rows.size:
                    write_floor += float(rows.max(axis=0).sum())
    else:
        # c4 is already zeroed under NO_ATTRIBUTES accounting.
        write_floor = float(coeff.c4.sum())
    cost_floor = forced_read + write_floor  # + p * B, and B >= 0
    lam = parameters.load_balance_lambda
    if lam == 1.0:
        bound = cost_floor
    else:
        # Equation (5) loads always use c4, whatever the write accounting.
        load_floor = (forced_read + float(coeff.c4.sum())) / num_sites
        bound = lam * cost_floor + (1.0 - lam) * load_floor

    # Exact case: integral addends whose totals fit double-integer range
    # sum without rounding, and lambda = 1 adds no blend products.  The
    # check must cover the *evaluator's* arithmetic too: objectives are
    # computed through c1/c2, which embed network_penalty — a fractional
    # penalty (whose p*B terms cancel inexactly) makes reported
    # objectives land ulps off even when c3/c4 are integral, so c1/c2
    # integrality is part of the condition.
    # The migration term is >= 0 for every feasible y (the incumbent
    # covers each attribute somewhere, so min-per-attribute c5 is 0),
    # hence the floors above remain sound with a block attached; it
    # does enter the evaluator's arithmetic, so it joins the
    # integrality/magnitude accounting below.
    c5_total = 0.0 if coeff.migration is None else float(
        np.abs(coeff.migration.c5).sum()
    )
    magnitude = abs(forced_read) + abs(write_floor) + c5_total + float(
        np.abs(coeff.c1).sum() + np.abs(coeff.c2).sum() + np.abs(coeff.c4).sum()
    )
    integral = (
        lam == 1.0
        # the evaluator's replication terms (c2/c4 against y.sum) can
        # accumulate up to num_sites times these totals, so the
        # exact-integer-range check scales by num_sites.
        and magnitude * max(num_sites, 1) < 2.0**52
        and bool(np.all(coeff.c1 == np.rint(coeff.c1)))
        and bool(np.all(coeff.c2 == np.rint(coeff.c2)))
        and bool(np.all(coeff.c3 == np.rint(coeff.c3)))
        and bool(np.all(coeff.c4 == np.rint(coeff.c4)))
        and (
            parameters.write_accounting is not WriteAccounting.RELEVANT_ATTRIBUTES
            or bool(np.all(coeff.write_weights == np.rint(coeff.write_weights)))
        )
        and (
            coeff.migration is None
            or bool(
                np.all(coeff.migration.c5 == np.rint(coeff.migration.c5))
            )
        )
    )
    if integral:
        return bound
    # Accumulated-rounding retreat: both this bound and any evaluated
    # objective are sums of O(|A| * |T| * |S|) products, each step
    # rounding at most eps relative to the running magnitude.
    migration_terms = 0 if coeff.migration is None else coeff.migration.c5.size
    terms = (coeff.c3.size + coeff.c4.size + migration_terms + 4) * max(num_sites, 1)
    slack = terms * np.finfo(np.float64).eps * max(magnitude, 1.0)
    return bound - slack


def feasibility_violations(
    coefficients: CostCoefficients, x: np.ndarray, y: np.ndarray
) -> list[str]:
    """Return human-readable descriptions of constraint violations.

    Checks the three families of constraints of model (4):

    * every transaction on exactly one site,
    * every attribute on at least one site,
    * read co-location: ``phi[a,t] = 1`` and ``x[t,s] = 1`` imply
      ``y[a,s] = 1``.
    """
    violations: list[str] = []
    x = np.asarray(x)
    y = np.asarray(y)
    instance = coefficients.instance
    transaction_sites = x.sum(axis=1)
    for t_index in np.flatnonzero(transaction_sites != 1):
        violations.append(
            f"transaction {instance.transactions[t_index].name!r} is on "
            f"{int(transaction_sites[t_index])} sites (must be exactly 1)"
        )
    attribute_sites = y.sum(axis=1)
    for a_index in np.flatnonzero(attribute_sites < 1):
        violations.append(
            f"attribute {instance.attributes[a_index].qualified_name!r} is "
            f"on no site"
        )
    phi = coefficients.phi_bool
    home = x.argmax(axis=1)
    for t_index in range(x.shape[0]):
        if transaction_sites[t_index] != 1:
            continue
        site = home[t_index]
        missing = np.flatnonzero(phi[:, t_index] & (y[:, site] == 0))
        for a_index in missing:
            violations.append(
                f"read co-location broken: transaction "
                f"{instance.transactions[t_index].name!r} on site {site} reads "
                f"{instance.attributes[a_index].qualified_name!r} which is not there"
            )
    return violations


def check_solution_feasible(
    coefficients: CostCoefficients, x: np.ndarray, y: np.ndarray
) -> bool:
    """True iff ``(x, y)`` satisfies all constraints of model (4)."""
    return not feasibility_violations(coefficients, x, y)
