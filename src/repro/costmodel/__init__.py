"""The paper's cost model (Section 2).

Given a problem instance and cost parameters (network penalty ``p``,
load-balance weight ``lambda``), this package derives:

* the static indicator arrays ``alpha, beta, gamma, delta, phi``
  (:mod:`repro.costmodel.constants`),
* the per-attribute weights ``W[a,q] = w_a * f_q * n_{a,q}`` and the
  objective coefficients ``c1, c2, c3, c4``
  (:mod:`repro.costmodel.coefficients`),
* evaluation of any candidate solution ``(x, y)``: objective (4), the
  blended objective (6), the cost breakdown ``A = AR + AW`` and ``B``,
  per-site loads and the Appendix-A latency estimate
  (:mod:`repro.costmodel.evaluator`),
* incremental evaluation for local search: mutable per-solution state
  (``c1 @ x`` / ``c3 @ x`` products, per-site loads, transfer totals)
  with delta updates per moved transaction / toggled replica, used by
  the simulated annealer's hot loop
  (:mod:`repro.costmodel.incremental`).

The dense evaluator remains the single source of truth; the incremental
evaluator is property-tested against it across all write-accounting
modes, replication on/off and ``lambda < 1``.
"""

from repro.costmodel.config import CostParameters, WriteAccounting
from repro.costmodel.constants import IndicatorArrays, build_indicators
from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.evaluator import (
    CostBreakdown,
    SolutionEvaluator,
    check_solution_feasible,
    feasibility_violations,
)
from repro.costmodel.incremental import IncrementalEvaluator

__all__ = [
    "CostParameters",
    "WriteAccounting",
    "IndicatorArrays",
    "build_indicators",
    "CostCoefficients",
    "build_coefficients",
    "CostBreakdown",
    "IncrementalEvaluator",
    "SolutionEvaluator",
    "check_solution_feasible",
    "feasibility_violations",
]
