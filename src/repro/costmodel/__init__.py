"""The paper's cost model (Section 2).

Given a problem instance and cost parameters (network penalty ``p``,
load-balance weight ``lambda``), this package derives:

* the static indicator arrays ``alpha, beta, gamma, delta, phi``
  (:mod:`repro.costmodel.constants`),
* the per-attribute weights ``W[a,q] = w_a * f_q * n_{a,q}`` and the
  objective coefficients ``c1, c2, c3, c4``
  (:mod:`repro.costmodel.coefficients`),
* evaluation of any candidate solution ``(x, y)``: objective (4), the
  blended objective (6), the cost breakdown ``A = AR + AW`` and ``B``,
  per-site loads and the Appendix-A latency estimate
  (:mod:`repro.costmodel.evaluator`).
"""

from repro.costmodel.config import CostParameters, WriteAccounting
from repro.costmodel.constants import IndicatorArrays, build_indicators
from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.evaluator import (
    CostBreakdown,
    SolutionEvaluator,
    check_solution_feasible,
    feasibility_violations,
)

__all__ = [
    "CostParameters",
    "WriteAccounting",
    "IndicatorArrays",
    "build_indicators",
    "CostCoefficients",
    "build_coefficients",
    "CostBreakdown",
    "SolutionEvaluator",
    "check_solution_feasible",
    "feasibility_violations",
]
