"""Round-robin baseline: naive transaction spread, greedy attributes."""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.signature import resolve_legacy_params
from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.model.instance import ProblemInstance
from repro.partition.assignment import PartitioningResult
from repro.sa.subsolve import SubproblemSolver


def round_robin_partitioning(
    instance: ProblemInstance | CostCoefficients,
    num_sites: int,
    params: CostParameters | None = None,
    seed: int | None = None,
    **legacy,
) -> PartitioningResult:
    """Place transaction ``t`` on site ``t mod |S|``; attributes follow
    greedily (forced replicas plus cost-negative ones).

    ``seed`` is part of the normalised baseline signature and ignored —
    the placement is deterministic.
    """
    params = resolve_legacy_params("round_robin_partitioning", params, legacy)
    del seed
    started = time.perf_counter()
    coefficients = (
        instance
        if isinstance(instance, CostCoefficients)
        else build_coefficients(instance, params)
    )
    num_transactions = coefficients.num_transactions
    x = np.zeros((num_transactions, num_sites), dtype=bool)
    x[np.arange(num_transactions), np.arange(num_transactions) % num_sites] = True
    subsolver = SubproblemSolver(coefficients, num_sites)
    y = subsolver.optimize_y_greedy(x)
    evaluator = SolutionEvaluator(coefficients)
    return PartitioningResult(
        coefficients=coefficients,
        x=x,
        y=y,
        objective=evaluator.objective4(x, y),
        solver="round-robin",
        wall_time=time.perf_counter() - started,
    )
