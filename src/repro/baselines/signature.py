"""The normalised baseline call shape and its deprecation adapter.

Every baseline partitioner takes ``(instance, num_sites, params, seed)``
— matching the registry adapters in :mod:`repro.api.strategies` — with
any extra tuning knobs keyword-only after that.

**The deprecated ``parameters=`` keyword** (canonical documentation —
everywhere else links here): before the unified advisor API the
baselines spelled the cost-model argument ``parameters=``.  That
spelling is still accepted through one release, but

* it raises a :class:`DeprecationWarning` pointing at the normalised
  signature (``params=``),
* passing both spellings at once is a :class:`TypeError` (the call is
  ambiguous),
* callers should migrate to ``params=`` — or better, to
  :func:`repro.api.advise`, whose :class:`~repro.api.request.
  SolveRequest` carries the parameters explicitly and never had the
  old spelling.
"""

from __future__ import annotations

import warnings

from repro.costmodel.config import CostParameters


def resolve_legacy_params(
    function_name: str,
    params: CostParameters | None,
    legacy: dict,
) -> CostParameters | None:
    """Fold the deprecated ``parameters=`` spelling into ``params``."""
    if "parameters" in legacy:
        warnings.warn(
            f"{function_name}(parameters=...) is deprecated; use the "
            f"normalised (instance, num_sites, params, seed) signature "
            f"(params=...)",
            DeprecationWarning,
            stacklevel=3,
        )
        replacement = legacy.pop("parameters")
        if params is not None and replacement is not None:
            raise TypeError(
                f"{function_name}() got both params and the deprecated "
                f"parameters keyword"
            )
        if params is None:
            params = replacement
    if legacy:
        unexpected = ", ".join(sorted(legacy))
        raise TypeError(
            f"{function_name}() got unexpected keyword arguments: {unexpected}"
        )
    if params is not None and not isinstance(params, CostParameters):
        # Catches pre-normalisation positional call patterns early
        # (e.g. an int landing in the params slot).
        raise TypeError(
            f"{function_name}() expects CostParameters (or None) in the "
            f"third position, got {type(params).__name__}; tuning knobs "
            f"such as restarts/max_rounds are keyword-only now"
        )
    return params
