"""The normalised baseline call shape and its legacy-keyword rejection.

Every baseline partitioner takes ``(instance, num_sites, params, seed)``
— matching the registry adapters in :mod:`repro.api.strategies` — with
any extra tuning knobs keyword-only after that.

**The removed ``parameters=`` keyword** (canonical documentation —
everywhere else links here): before the unified advisor API the
baselines spelled the cost-model argument ``parameters=``.  The spelling
was deprecated for one release (accepted with a
:class:`DeprecationWarning`); that cycle is complete and it now raises
:class:`TypeError` with a migration message.  Callers migrate by
renaming the keyword to ``params=`` — or better, by moving to
:func:`repro.api.advise`, whose
:class:`~repro.api.request.SolveRequest` carries the parameters
explicitly and never had the old spelling.
"""

from __future__ import annotations

from repro.costmodel.config import CostParameters


def resolve_legacy_params(
    function_name: str,
    params: CostParameters | None,
    legacy: dict,
) -> CostParameters | None:
    """Reject the removed ``parameters=`` spelling, validate ``params``."""
    if "parameters" in legacy:
        raise TypeError(
            f"{function_name}() no longer accepts the parameters keyword "
            f"(removed after its deprecation cycle); rename it to "
            f"params=, or serve the solve through repro.api.advise()"
        )
    if legacy:
        unexpected = ", ".join(sorted(legacy))
        raise TypeError(
            f"{function_name}() got unexpected keyword arguments: {unexpected}"
        )
    if params is not None and not isinstance(params, CostParameters):
        # Catches pre-normalisation positional call patterns early
        # (e.g. an int landing in the params slot).
        raise TypeError(
            f"{function_name}() expects CostParameters (or None) in the "
            f"third position, got {type(params).__name__}; tuning knobs "
            f"such as restarts/max_rounds are keyword-only now"
        )
    return params
