"""Greedy first-fit bin packing of co-access fragments.

Mirrors the related-work approach of distributing predefined fragments
to sites with a first-fit-decreasing heuristic: the fragments are the
reasonable-cut groups (Section 4), their weight is their total access
volume, and sites are bins balanced by accumulated weight. Transactions
then follow their heaviest read fragment and co-location is repaired by
replication.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.signature import resolve_legacy_params
from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.model.instance import ProblemInstance
from repro.partition.assignment import PartitioningResult
from repro.reduction.cuts import attribute_groups
from repro.sa.subsolve import SubproblemSolver


def greedy_binpack_partitioning(
    instance: ProblemInstance | CostCoefficients,
    num_sites: int,
    params: CostParameters | None = None,
    seed: int | None = None,
    **legacy,
) -> PartitioningResult:
    """First-fit-decreasing packing of co-access groups onto sites.

    ``seed`` is part of the normalised baseline signature and ignored —
    the packing order is deterministic.
    """
    params = resolve_legacy_params("greedy_binpack_partitioning", params, legacy)
    del seed
    started = time.perf_counter()
    if isinstance(instance, CostCoefficients):
        coefficients = instance
        problem = coefficients.instance
    else:
        coefficients = build_coefficients(instance, params)
        problem = instance

    groups = attribute_groups(problem)
    access = (coefficients.weights * coefficients.indicators.beta).sum(axis=1)  # (|A|,)
    group_weights = [float(access[members].sum()) for members in groups]

    # First-fit decreasing onto the least-loaded site.
    y = np.zeros((coefficients.num_attributes, num_sites), dtype=bool)
    site_loads = np.zeros(num_sites)
    for g_index in np.argsort(group_weights)[::-1]:
        site = int(np.argmin(site_loads))
        y[groups[g_index], site] = True
        site_loads[site] += group_weights[g_index]

    # Transactions follow their heaviest read volume.
    phi = coefficients.phi_bool.astype(float)
    read_weight = coefficients.c3
    num_transactions = coefficients.num_transactions
    x = np.zeros((num_transactions, num_sites), dtype=bool)
    scores = np.zeros((num_transactions, num_sites))
    for site in range(num_sites):
        scores[:, site] = (read_weight * (phi * y[:, site : site + 1])).sum(axis=0)
    x[np.arange(num_transactions), scores.argmax(axis=1)] = True

    subsolver = SubproblemSolver(coefficients, num_sites)
    y = subsolver.repair_y(x, y)

    evaluator = SolutionEvaluator(coefficients)
    return PartitioningResult(
        coefficients=coefficients,
        x=x,
        y=y,
        objective=evaluator.objective4(x, y),
        solver="greedy-binpack",
        wall_time=time.perf_counter() - started,
        metadata={"num_fragments": len(groups)},
    )
