"""Attribute-affinity clustering baseline (bond energy algorithm).

The classic vertical-partitioning pipeline cited in the paper's related
work (Navathe et al. style):

1. build the attribute affinity matrix
   ``AA[a,b] = sum over queries co-accessing a and b of f_q * n_q``,
2. order attributes with the bond energy algorithm (BEA) of McCormick
   et al., which greedily inserts each attribute at the position
   maximising the "bond" to its neighbours,
3. cut the ordered sequence into ``|S|`` contiguous fragments at the
   weakest bonds,
4. place each transaction on the site whose fragment it reads most,
5. repair read co-location by replicating missing attributes.

This is not cost-model-aware (it ignores the transfer penalty and load
balancing), which is exactly the gap the paper's algorithms close — the
ablation benchmark quantifies it.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.signature import resolve_legacy_params
from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.model.instance import ProblemInstance
from repro.partition.assignment import PartitioningResult
from repro.sa.subsolve import SubproblemSolver


def affinity_matrix(coefficients: CostCoefficients) -> np.ndarray:
    """``AA[a,b] = sum_q alpha[a,q] * alpha[b,q] * f_q * n_q``.

    ``n_q`` is taken as the row count of the table holding ``a`` (the
    matrix is made symmetric by averaging both directions).
    """
    indicators = coefficients.indicators
    frequencies = np.asarray(
        [query.frequency for query in coefficients.instance.queries]
    )
    weighted = indicators.alpha * (frequencies[None, :] * indicators.rows)
    affinity = weighted @ indicators.alpha.T
    return (affinity + affinity.T) / 2.0


def bond_energy_order(affinity: np.ndarray) -> list[int]:
    """Order attributes by the bond energy algorithm (BEA).

    Attributes are inserted one by one at the position maximising the
    incremental bond ``2 * bond(left, new) + 2 * bond(new, right)
    - 2 * bond(left, right)`` where ``bond(i, j) = sum_k AA[i,k] *
    AA[j,k]``.
    """
    n = affinity.shape[0]
    if n == 0:
        return []
    order = [0]
    bonds = affinity @ affinity.T  # bond(i, j)

    def bond(i: int | None, j: int | None) -> float:
        if i is None or j is None:
            return 0.0
        return float(bonds[i, j])

    for new in range(1, n):
        best_position, best_gain = 0, -np.inf
        for position in range(len(order) + 1):
            left = order[position - 1] if position > 0 else None
            right = order[position] if position < len(order) else None
            gain = 2 * bond(left, new) + 2 * bond(new, right) - 2 * bond(left, right)
            if gain > best_gain:
                best_gain, best_position = gain, position
        order.insert(best_position, new)
    return order


def _split_order(
    order: list[int], affinity: np.ndarray, num_fragments: int
) -> list[list[int]]:
    """Cut the BEA order at the ``num_fragments - 1`` weakest links."""
    if num_fragments <= 1 or len(order) <= num_fragments:
        if num_fragments <= 1:
            return [list(order)]
        # Degenerate: one attribute per fragment where possible.
        fragments = [[a] for a in order[: num_fragments - 1]]
        fragments.append(list(order[num_fragments - 1:]))
        return fragments
    link_strengths = [
        (float(affinity[order[i], order[i + 1]]), i) for i in range(len(order) - 1)
    ]
    cut_positions = sorted(
        index for _, index in sorted(link_strengths)[: num_fragments - 1]
    )
    fragments: list[list[int]] = []
    previous = 0
    for position in cut_positions:
        fragments.append(list(order[previous : position + 1]))
        previous = position + 1
    fragments.append(list(order[previous:]))
    return [fragment for fragment in fragments if fragment]


def affinity_partitioning(
    instance: ProblemInstance | CostCoefficients,
    num_sites: int,
    params: CostParameters | None = None,
    seed: int | None = None,
    **legacy,
) -> PartitioningResult:
    """BEA-clustered fragments, transactions by read overlap, repaired.

    ``seed`` is part of the normalised baseline signature and ignored —
    the BEA ordering is deterministic.
    """
    params = resolve_legacy_params("affinity_partitioning", params, legacy)
    del seed
    started = time.perf_counter()
    coefficients = (
        instance
        if isinstance(instance, CostCoefficients)
        else build_coefficients(instance, params)
    )
    num_attributes = coefficients.num_attributes
    num_transactions = coefficients.num_transactions

    affinity = affinity_matrix(coefficients)
    order = bond_energy_order(affinity)
    fragments = _split_order(order, affinity, num_sites)

    y = np.zeros((num_attributes, num_sites), dtype=bool)
    for site, fragment in enumerate(fragments):
        y[fragment, site] = True
    # Sites without a fragment (more sites than fragments) stay empty
    # until repair; every attribute already has one replica.
    for site in range(len(fragments), num_sites):
        pass

    # Transactions go where their read weight is largest.
    phi = coefficients.phi_bool.astype(float)
    read_weight = coefficients.c3  # (|A|, |T|)
    site_scores = np.zeros((num_transactions, num_sites))
    for site in range(num_sites):
        site_scores[:, site] = (read_weight * (phi * y[:, site : site + 1])).sum(axis=0)
    x = np.zeros((num_transactions, num_sites), dtype=bool)
    x[np.arange(num_transactions), site_scores.argmax(axis=1)] = True

    # Repair read co-location by replication.
    subsolver = SubproblemSolver(coefficients, num_sites)
    y = subsolver.repair_y(x, y)

    evaluator = SolutionEvaluator(coefficients)
    return PartitioningResult(
        coefficients=coefficients,
        x=x,
        y=y,
        objective=evaluator.objective4(x, y),
        solver="affinity",
        wall_time=time.perf_counter() - started,
        metadata={"fragments": [len(f) for f in fragments]},
    )
