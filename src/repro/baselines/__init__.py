"""Baseline partitioners the paper's algorithms are compared against.

Beyond the paper's own ``|S| = 1`` baseline we implement classic
approaches from its related-work section so the benefit of the
QP/SA formulation can be quantified:

* round-robin transaction placement (naive),
* alternating greedy descent (hill climbing),
* attribute-affinity clustering via the bond energy algorithm
  (McCormick et al., used by Navathe-style vertical partitioning),
* greedy first-fit bin packing of co-access fragments.

All baselines return feasible :class:`PartitioningResult` objects
(read co-location is repaired by adding replicas where needed) and share
the normalised ``(instance, num_sites, params, seed)`` call shape used
by the :mod:`repro.api` registry adapters.  The removed pre-API
``parameters=`` spelling is documented in one place:
:mod:`repro.baselines.signature`.
"""

from repro.baselines.round_robin import round_robin_partitioning
from repro.baselines.hillclimb import hill_climb_partitioning
from repro.baselines.affinity import (
    affinity_matrix,
    bond_energy_order,
    affinity_partitioning,
)
from repro.baselines.greedy import greedy_binpack_partitioning

__all__ = [
    "round_robin_partitioning",
    "hill_climb_partitioning",
    "affinity_matrix",
    "bond_energy_order",
    "affinity_partitioning",
    "greedy_binpack_partitioning",
]
