"""Alternating greedy descent (hill climbing) baseline.

Repeats the SA solver's two exact-direction greedy moves —
``optimize_y`` for fixed ``x``, ``optimize_x`` for fixed ``y`` — until
the blended objective stops improving. This is Algorithm 1 with the
temperature forced to zero: it shows how much the annealing acceptance
of worse solutions actually buys.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.signature import resolve_legacy_params
from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.model.instance import ProblemInstance
from repro.partition.assignment import PartitioningResult
from repro.sa.state import random_transaction_placement
from repro.sa.subsolve import SubproblemSolver


def hill_climb_partitioning(
    instance: ProblemInstance | CostCoefficients,
    num_sites: int,
    params: CostParameters | None = None,
    seed: int | None = None,
    *,
    restarts: int = 4,
    max_rounds: int = 25,
    **legacy,
) -> PartitioningResult:
    """Best of ``restarts`` alternating-descent runs from random starts.

    .. note:: Before the unified-API normalisation the 4th positional
       argument was ``restarts``; it is now ``seed`` (matching the
       common baseline shape) and the tuning knobs are keyword-only.
    """
    params = resolve_legacy_params("hill_climb_partitioning", params, legacy)
    started = time.perf_counter()
    coefficients = (
        instance
        if isinstance(instance, CostCoefficients)
        else build_coefficients(instance, params)
    )
    rng = np.random.default_rng(seed)
    subsolver = SubproblemSolver(coefficients, num_sites)
    evaluator = SolutionEvaluator(coefficients)

    best: tuple[float, np.ndarray, np.ndarray] | None = None
    total_rounds = 0
    for _ in range(max(1, restarts)):
        x = random_transaction_placement(
            coefficients.num_transactions, num_sites, rng
        )
        y = subsolver.optimize_y_greedy(x)
        cost = evaluator.objective6(x, y)
        for _ in range(max_rounds):
            total_rounds += 1
            new_x = subsolver.optimize_x_greedy(y)
            new_y = subsolver.optimize_y_greedy(new_x)
            new_cost = evaluator.objective6(new_x, new_y)
            if new_cost >= cost - 1e-12:
                break
            x, y, cost = new_x, new_y, new_cost
        if best is None or cost < best[0]:
            best = (cost, x, y)

    cost, x, y = best
    return PartitioningResult(
        coefficients=coefficients,
        x=x,
        y=y,
        objective=evaluator.objective4(x, y),
        solver="hill-climb",
        wall_time=time.perf_counter() - started,
        metadata={"rounds": total_rounds, "restarts": restarts, "objective6": cost},
    )
