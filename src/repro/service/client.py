"""Synchronous client for the advisor service.

Reuses the portfolio transport's :class:`~repro.sa.transport.protocol.Endpoint`
(same frame format on the socket), performs the service handshake, and
exposes a blocking ``advise`` plus a pipelined ``advise_many``.  A
``rejected`` frame surfaces as the same structured
:class:`~repro.exceptions.RejectedError` the in-process facade raises,
so callers handle backpressure identically whether they embed
:class:`~repro.service.core.AsyncAdvisor` or dial the socket.
"""

from __future__ import annotations

import socket
from typing import Sequence

from repro.api.report import SolveReport
from repro.api.request import SolveRequest
from repro.exceptions import RejectedError, TransportError
from repro.sa.transport.protocol import (
    SUPPORTED_PROTOCOL_VERSIONS,
    Endpoint,
)
from repro.service.wire import (
    KIND_ADVISE,
    KIND_ERROR,
    KIND_HELLO,
    KIND_HELLO_ACK,
    KIND_REJECTED,
    KIND_REPORT,
    KIND_SHUTDOWN,
    KIND_STATS,
    KIND_STATS_REPORT,
    SERVICE_ENVELOPE,
    report_from_wire,
)


class ServiceClient:
    """One connection to an :class:`~repro.service.server.AdvisorServer`.

    Use as a context manager::

        with ServiceClient(host, port, client="tenant-a") as svc:
            report = svc.advise(request)
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client: str | None = None,
        timeout: float | None = 300.0,
    ):
        self.client = client
        self.timeout = timeout
        sock = socket.create_connection((host, port))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.endpoint = Endpoint(sock)
        self.protocol_version: int | None = None
        self._next_id = 0
        self._handshake()

    def _handshake(self) -> None:
        hello: dict = {
            "protocol_versions": list(SUPPORTED_PROTOCOL_VERSIONS),
            "envelope": SERVICE_ENVELOPE,
        }
        if self.client:
            hello["client"] = self.client
        self.endpoint.send(KIND_HELLO, **hello)
        ack = self._recv()
        if ack.get("kind") == KIND_ERROR:
            raise TransportError(
                f"service refused the handshake: {ack.get('message')}"
            )
        if ack.get("kind") != KIND_HELLO_ACK:
            raise TransportError(
                f"expected {KIND_HELLO_ACK!r} frame, got "
                f"{ack.get('kind')!r}"
            )
        if ack.get("envelope") != SERVICE_ENVELOPE:
            raise TransportError(
                f"service speaks envelope {ack.get('envelope')!r}, this "
                f"client speaks {SERVICE_ENVELOPE!r}"
            )
        self.protocol_version = int(ack["protocol_version"])

    def _recv(self) -> dict:
        frame = self.endpoint.recv(self.timeout)
        if frame is None:
            raise TransportError(
                f"service did not answer within {self.timeout}s"
            )
        return frame

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def advise(self, request: SolveRequest) -> SolveReport:
        """Solve one request; blocks until the report arrives.

        Raises :class:`~repro.exceptions.RejectedError` when admission
        control refuses the request, :class:`TransportError` on a
        service-side error frame.
        """
        return self.advise_many([request])[0]

    def advise_many(
        self, requests: Sequence[SolveRequest]
    ) -> list[SolveReport]:
        """Pipeline several requests on this one connection.

        All requests are written before any answer is read, so
        identical requests in the batch coalesce server-side.  Answers
        arrive in any order (the ``id`` echo correlates them); the
        returned list matches the input order.  The first rejection or
        error is raised after every answer has been collected, so one
        rejected request does not desynchronise the stream.
        """
        ids = []
        for request in requests:
            self._next_id += 1
            ids.append(self._next_id)
            self.endpoint.send(
                KIND_ADVISE, id=self._next_id, request=request.to_dict()
            )
        answers: dict[int, dict] = {}
        while len(answers) < len(ids):
            frame = self._recv()
            frame_id = frame.get("id")
            if frame_id is None:
                raise TransportError(
                    f"service sent an uncorrelated {frame.get('kind')!r} "
                    f"frame mid-batch: {frame.get('message')!r}"
                )
            answers[int(frame_id)] = frame
        reports: list[SolveReport] = []
        failure: Exception | None = None
        for request_id in ids:
            frame = answers[request_id]
            kind = frame.get("kind")
            if kind == KIND_REPORT:
                reports.append(report_from_wire(frame["report"]))
            elif kind == KIND_REJECTED:
                failure = failure or RejectedError(
                    str(frame.get("reason")),
                    str(frame.get("message")),
                    retry_after=frame.get("retry_after"),
                )
            else:
                failure = failure or TransportError(
                    f"service error: {frame.get('message')}"
                )
        if failure is not None:
            raise failure
        return reports

    def stats(self) -> dict:
        """Fetch the service's counter document."""
        self.endpoint.send(KIND_STATS)
        frame = self._recv()
        if frame.get("kind") != KIND_STATS_REPORT:
            raise TransportError(
                f"expected {KIND_STATS_REPORT!r} frame, got "
                f"{frame.get('kind')!r}"
            )
        return frame["stats"]

    def shutdown(self) -> None:
        """Ask the server to drain and exit (acknowledged)."""
        self.endpoint.send(KIND_SHUTDOWN)
        frame = self._recv()
        if frame.get("kind") != KIND_SHUTDOWN:
            raise TransportError(
                f"expected {KIND_SHUTDOWN!r} ack, got "
                f"{frame.get('kind')!r}"
            )

    def close(self) -> None:
        self.endpoint.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
