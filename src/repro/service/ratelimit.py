"""Per-client token buckets behind the service's admission control.

A classic token bucket: a client's bucket refills at ``rate`` tokens
per second up to ``burst``, and each admitted request spends one token.
A client that stays under ``rate`` requests/second is never throttled;
a burst of up to ``burst`` requests is absorbed; beyond that the
limiter answers with the seconds until the next token — surfaced to the
caller as ``retry_after`` on the structured rejection, never as a
silent drop or a blocking sleep.

The clock is injectable so tests drive time deterministically.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable


class TokenBucket:
    """One client's bucket: continuous refill, unit spend."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: int, now: float):
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def try_acquire(self, now: float) -> float:
        """Spend one token.  Returns ``0.0`` on success, else the
        seconds until a full token will have refilled."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Token buckets per client id, bounded by ``max_clients``.

    The bucket table is itself an LRU: beyond ``max_clients`` the
    least-recently-seen client's bucket is forgotten.  Forgetting is
    always in the client's favour (a fresh bucket starts full), so the
    bound can never reject anyone a bigger table would have admitted.
    ``rate <= 0`` disables limiting entirely.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self.clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def admit(self, client: str) -> float:
        """Charge ``client`` one token.  Returns ``0.0`` when admitted,
        else the recommended retry-after in seconds."""
        if self.rate <= 0:
            return 0.0
        now = self.clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        return bucket.try_acquire(now)

    def __len__(self) -> int:
        return len(self._buckets)
