"""Load shedding: degrade the strategy under queue pressure.

The paper's solvers form a natural cost ladder — the exact QP is the
most expensive, the annealing portfolio is the scalable middle, and the
greedy baseline is near-free.  Under queue pressure the service walks
a request *down* that ladder instead of letting it time out:

* **light pressure** (pending depth >= ``shed_threshold``): requests
  bound for the QP family (``qp``, ``qp-heavy``, ``auto`` and any
  chain containing one of them) are served by ``sa-portfolio``;
* **hard pressure** (depth >= ``shed_hard_threshold``): every
  degradable request drops to the floor — ``greedy``, or a single
  ``sa`` run when the request forbids replication (``greedy`` cannot
  produce disjoint partitionings).

Baselines (rank 0) are never degraded — there is nothing cheaper to
degrade *to* — and neither are unknown user-registered strategies,
whose cost the policy cannot judge.  A degraded request keeps the
original's instance, parameters, sites, replication mode, seed and
budget; the original per-strategy options are dropped (they are keyed
to the strategy that did not run).  The report records the provenance
as ``metadata["degraded_from"]`` and answers the client normally: a
cheaper valid answer now instead of a timeout later.

The decision is a pure function of ``(request, queue depth)``, so a
pressure trace replays deterministically.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.api.request import SolveRequest
from repro.service.config import ServiceConfig

#: How expensive a strategy is to serve, for shedding purposes only:
#: 2 = QP family (degradable twice), 1 = SA family (degradable to the
#: floor), 0 = already cheap or unknown (never degraded).
STRATEGY_COST_RANK: Mapping[str, int] = {
    "qp": 2,
    "qp-heavy": 2,
    "auto": 2,  # may resolve to qp; assume the expensive branch
    "sa": 1,
    "sa-portfolio": 1,
}

#: Shedding levels.
LEVEL_NONE = 0
LEVEL_LIGHT = 1
LEVEL_HARD = 2


def strategy_rank(strategy: str) -> int:
    """The shedding rank of a (possibly chained) strategy string."""
    stages = tuple(
        part.strip() for part in strategy.split("->")
    )
    return max((STRATEGY_COST_RANK.get(stage, 0) for stage in stages),
               default=0)


class SheddingPolicy:
    """Map queue depth to a shedding level and rewrite requests."""

    def __init__(self, config: ServiceConfig):
        self.config = config

    def level(self, depth: int) -> int:
        """The shedding level for a pending-queue ``depth``."""
        config = self.config
        if not config.shedding_enabled:
            return LEVEL_NONE
        if config.shed_hard_threshold and depth >= config.shed_hard_threshold:
            return LEVEL_HARD
        if depth >= config.shed_threshold:
            return LEVEL_LIGHT
        return LEVEL_NONE

    def degrade(
        self, request: SolveRequest, level: int
    ) -> tuple[SolveRequest, str | None]:
        """The request actually served at ``level``.

        Returns ``(request, None)`` unchanged when the level or the
        strategy's rank does not call for degradation, else a rewritten
        request plus the original strategy string (what
        ``degraded_from`` will record).
        """
        if level <= LEVEL_NONE:
            return request, None
        rank = strategy_rank(request.strategy)
        target: str | None = None
        options: dict[str, Any] = {}
        if level >= LEVEL_HARD and rank >= 1:
            if request.allow_replication:
                target = "greedy"
            else:
                # greedy cannot produce disjoint layouts; the floor for
                # a disjoint request is one seeded anneal.
                target = "sa"
                options = dict(self.config.shed_sa_options)
        elif level >= LEVEL_LIGHT and rank >= 2:
            target = "sa-portfolio"
            options = dict(self.config.shed_sa_options)
        if target is None or target == request.strategy:
            return request, None
        return (
            request.with_(strategy=target, options=options),
            request.strategy,
        )
