"""Tuning knobs of the advisor service, validated eagerly."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import OptionsError


@dataclass(frozen=True)
class ServiceConfig:
    """Admission, caching and shedding knobs of one service instance.

    Attributes
    ----------
    max_pending:
        Bound on the pending-solve queue.  A submit that would push the
        queue past this limit is answered with a structured
        ``queue-full`` rejection (:class:`~repro.exceptions.RejectedError`
        in process, a REJECTED frame on the wire) — never silently
        dropped.  Coalesced duplicates and result-cache hits do not
        occupy queue slots.
    rate_limit:
        Per-client token-bucket refill rate in requests/second;
        ``0.0`` (the default) disables rate limiting.
    rate_burst:
        Token-bucket capacity: how many requests a client may issue
        back to back before the refill rate gates it.
    max_clients:
        Bound on tracked per-client buckets (least-recently-seen
        clients are forgotten beyond it — forgetting refills a bucket,
        it never rejects anyone spuriously).
    result_cache_capacity:
        LRU bound on cached finished reports, keyed by the request's
        canonical JSON.  ``0`` disables result caching.  Only
        *undegraded* reports are cached: a report produced under load
        shedding must not be replayed to a later request served under
        no pressure.
    shed_threshold:
        Pending-queue depth at which the load-shedding policy starts
        degrading expensive strategies one rung
        (``qp`` family → ``sa-portfolio``).  ``0`` disables shedding.
    shed_hard_threshold:
        Depth at which every degradable strategy drops to the floor
        (``greedy``, or a single ``sa`` run for disjoint requests,
        which ``greedy`` cannot serve).  Must be >= ``shed_threshold``.
    shed_sa_options:
        Extra options merged into a shed request served by the
        ``sa-portfolio`` rung (e.g. ``{"restarts": 2}`` to cap the
        degraded portfolio).  Never applied to undegraded requests.
    collect_traces:
        Enable per-client workload-trace collection: clients may report
        query executions via
        :meth:`~repro.service.core.AsyncAdvisor.record_event` and the
        merged trace feeds
        :meth:`~repro.api.advisor.Advisor.readvise`.  Off by default —
        a service that is not re-partitioning should not pay for (or
        retain) per-client statistics.  Tracked clients are bounded by
        ``max_clients`` (least-recently-active traces are dropped).
    """

    max_pending: int = 64
    rate_limit: float = 0.0
    rate_burst: int = 8
    max_clients: int = 1024
    result_cache_capacity: int = 128
    shed_threshold: int = 0
    shed_hard_threshold: int = 0
    shed_sa_options: Mapping[str, Any] = field(default_factory=dict)
    collect_traces: bool = False

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise OptionsError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.rate_limit < 0:
            raise OptionsError(
                f"rate_limit must be >= 0 requests/second, got "
                f"{self.rate_limit}"
            )
        if self.rate_burst < 1:
            raise OptionsError(
                f"rate_burst must be >= 1, got {self.rate_burst}"
            )
        if self.max_clients < 1:
            raise OptionsError(
                f"max_clients must be >= 1, got {self.max_clients}"
            )
        if self.result_cache_capacity < 0:
            raise OptionsError(
                f"result_cache_capacity must be >= 0, got "
                f"{self.result_cache_capacity}"
            )
        if self.shed_threshold < 0 or self.shed_hard_threshold < 0:
            raise OptionsError("shed thresholds must be >= 0")
        if self.shed_hard_threshold and not self.shed_threshold:
            raise OptionsError(
                "shed_hard_threshold requires shed_threshold (the light "
                "rung precedes the hard one)"
            )
        if (
            self.shed_threshold
            and self.shed_hard_threshold
            and self.shed_hard_threshold < self.shed_threshold
        ):
            raise OptionsError(
                f"shed_hard_threshold ({self.shed_hard_threshold}) must "
                f"be >= shed_threshold ({self.shed_threshold})"
            )

    @property
    def shedding_enabled(self) -> bool:
        return self.shed_threshold > 0
