"""Service frames and the report codec.

The service speaks the exact frame *format* of the portfolio transport
(:mod:`repro.sa.transport.protocol`: 4-byte big-endian length prefix +
sorted-key UTF-8 JSON with a ``"kind"`` discriminator, 64MB cap) but a
different *envelope*: where the transport carries restart task/result
envelopes, the service carries full :class:`~repro.api.SolveRequest`
documents in ADVISE frames and serialised
:class:`~repro.api.SolveReport` documents in REPORT frames.  The
handshake therefore negotiates the envelope by *kind string*
(:data:`SERVICE_ENVELOPE`) rather than by the transport's integer
envelope version — a restart worker dialling a service port (or vice
versa) fails the handshake with a structured ERROR frame instead of
mis-decoding frames.

Report codec
------------

``report_to_wire`` keeps only JSON-faithful fields: placements as 0/1
lists, the objective as a float (Python's JSON round-trips floats
exactly via shortest-repr), metadata with numpy scalars/arrays
converted to their Python equivalents.  ``report_from_wire`` rebuilds a
fully functional :class:`~repro.api.SolveReport` — coefficients are
reconstructed canonically from the request's instance and parameters,
exactly the way the queue backend's workers do, and the feasibility
check in :class:`~repro.partition.assignment.PartitioningResult` runs
again on the client side.  Metadata values that were numpy arrays come
back as lists (they have no declared dtype on the wire); everything the
bitwise contract covers — placements, objective, strategy, seeds —
round-trips exactly.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np

from repro.api.report import SolveReport
from repro.api.request import SolveRequest
from repro.costmodel.coefficients import build_coefficients
from repro.exceptions import TransportError
from repro.partition.assignment import PartitioningResult
from repro.sa.transport.protocol import (
    MAX_FRAME_BYTES,
    _LENGTH,
    decode_payload,
    encode_frame,
)

#: The envelope kind this service build speaks; the handshake requires
#: an exact match (a mismatched peer gets a structured ERROR frame).
SERVICE_ENVELOPE = "solve-report/1"

#: Version stamp of the serialised report document.
REPORT_FORMAT_VERSION = 1

# -- frame kinds -------------------------------------------------------
KIND_HELLO = "hello"                # client -> server: version offer
KIND_HELLO_ACK = "hello-ack"        # server -> client: chosen version
KIND_ADVISE = "advise"              # client -> server: one SolveRequest
KIND_REPORT = "report"              # server -> client: one SolveReport
KIND_REJECTED = "rejected"          # server -> client: admission refused
KIND_STATS = "stats"                # client -> server: stats probe
KIND_STATS_REPORT = "stats-report"  # server -> client: stats document
KIND_ERROR = "error"                # either way: structured failure
KIND_SHUTDOWN = "shutdown"          # client -> server: drain and exit


# ----------------------------------------------------------------------
# Async frame IO (the sync side reuses transport's Endpoint directly)
# ----------------------------------------------------------------------
async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any]:
    """Read one frame from an asyncio stream.

    Raises :class:`~repro.exceptions.TransportError` on a corrupt
    length prefix or undecodable payload, and
    ``asyncio.IncompleteReadError`` when the peer goes away mid-frame.
    """
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame announces {length} bytes, over MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES}) — corrupt length prefix?"
        )
    data = await reader.readexactly(length)
    return decode_payload(data)


async def write_frame(
    writer: asyncio.StreamWriter, kind: str, **fields: Any
) -> None:
    """Encode and send one frame, draining the transport buffer."""
    writer.write(encode_frame(kind, **fields))
    await writer.drain()


# ----------------------------------------------------------------------
# Report codec
# ----------------------------------------------------------------------
def jsonify(value: Any) -> Any:
    """Convert numpy scalars/arrays (recursively) to JSON-safe values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    return value


def result_to_wire(result: PartitioningResult) -> dict[str, Any]:
    """One :class:`PartitioningResult` as a JSON-compatible document."""
    return {
        "x": np.asarray(result.x, dtype=int).tolist(),
        "y": np.asarray(result.y, dtype=int).tolist(),
        "objective": float(result.objective),
        "solver": result.solver,
        "wall_time": float(result.wall_time),
        "proven_optimal": bool(result.proven_optimal),
        "metadata": jsonify(result.metadata),
    }


def result_from_wire(
    payload: dict[str, Any], coefficients: Any
) -> PartitioningResult:
    return PartitioningResult(
        coefficients=coefficients,
        x=np.asarray(payload["x"], dtype=bool),
        y=np.asarray(payload["y"], dtype=bool),
        objective=float(payload["objective"]),
        solver=str(payload["solver"]),
        wall_time=float(payload.get("wall_time", 0.0)),
        proven_optimal=bool(payload.get("proven_optimal", False)),
        metadata=dict(payload.get("metadata") or {}),
    )


def report_to_wire(report: SolveReport) -> dict[str, Any]:
    """Serialise a :class:`SolveReport` for a REPORT frame."""
    return {
        "format_version": REPORT_FORMAT_VERSION,
        "request": report.request.to_dict(),
        "strategy": report.strategy,
        "wall_time": float(report.wall_time),
        "cache_stats": {
            key: int(value) for key, value in report.cache_stats.items()
        },
        "result": result_to_wire(report.result),
        "stage_results": [
            result_to_wire(stage) for stage in report.stage_results
        ],
    }


def report_from_wire(payload: dict[str, Any]) -> SolveReport:
    """Rebuild a functional :class:`SolveReport` from a REPORT frame."""
    version = payload.get("format_version")
    if version != REPORT_FORMAT_VERSION:
        raise TransportError(
            f"unsupported report format_version {version!r} (this build "
            f"reads version {REPORT_FORMAT_VERSION})"
        )
    request = SolveRequest.from_dict(payload["request"])
    # Rebuilt canonically, like the queue backend's workers: the wire
    # carries (instance, parameters), never raw coefficient arrays.
    coefficients = build_coefficients(request.instance, request.parameters)
    return SolveReport(
        request=request,
        result=result_from_wire(payload["result"], coefficients),
        strategy=str(payload["strategy"]),
        wall_time=float(payload.get("wall_time", 0.0)),
        cache_stats=dict(payload.get("cache_stats") or {}),
        stage_results=[
            result_from_wire(stage, coefficients)
            for stage in payload.get("stage_results") or []
        ],
    )
