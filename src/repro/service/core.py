"""The in-process asyncio facade over a shared :class:`~repro.api.Advisor`.

:class:`AsyncAdvisor` is the serving layer itself, with no socket in
sight — the socket server (:mod:`repro.service.server`) is a thin frame
pump over it, and tests and embedders use it directly.  One instance
owns:

* a long-lived :class:`~repro.api.Advisor` (shared coefficient and
  MIP-skeleton caches across every request served),
* **request coalescing** — requests with identical canonical JSON
  (:meth:`~repro.api.SolveRequest.canonical_key`) that are in flight
  together share one underlying solve and all receive the *same*
  :class:`~repro.api.SolveReport`,
* **admission control** — a bounded pending queue plus per-client
  token-bucket rate limits; overload answers with a structured
  :class:`~repro.exceptions.RejectedError`, never a silent drop,
* a bounded **result cache** (LRU by canonical key; undegraded reports
  only), and
* the **load-shedding policy** of :mod:`repro.service.shedding` —
  under queue pressure expensive strategies are served by cheaper ones
  (``qp`` → ``sa-portfolio`` → ``greedy``), recorded as
  ``metadata["degraded_from"]``.

Determinism contract
--------------------

Solves execute strictly in admission order on one worker thread, so a
degradation-free run over a request sequence — coalesced or not — is
bitwise identical to a sequential ``advisor.advise`` loop over the
deduplicated sequence, *including* the per-request ``cache_stats``
deltas (pinned by ``tests/test_service.py``).  Concurrency buys
coalescing and backpressure, never different arithmetic.

``submit`` may be called before :meth:`start`: entries queue up and are
served once the worker runs.  Tests use this to build deterministic
queue pressure.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.api.advisor import Advisor
from repro.api.report import SolveReport
from repro.api.request import SolveRequest
from repro.exceptions import RejectedError
from repro.service.config import ServiceConfig
from repro.service.ratelimit import RateLimiter
from repro.service.shedding import LEVEL_HARD, LEVEL_LIGHT, SheddingPolicy
from repro.stats.estimator import TraceCollector


@dataclass
class _Pending:
    """One admitted solve and everything hanging off it."""

    key: str
    request: SolveRequest            # as submitted (the coalescing key)
    exec_request: SolveRequest       # what actually runs (possibly shed)
    degraded_from: str | None
    future: "asyncio.Future[SolveReport]"


class AsyncAdvisor:
    """Concurrent front end over one shared :class:`~repro.api.Advisor`.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`
    explicitly::

        async with AsyncAdvisor() as service:
            report = await service.submit(request, client="tenant-a")
    """

    def __init__(
        self,
        advisor: Advisor | None = None,
        config: ServiceConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.advisor = advisor or Advisor()
        self.config = config or ServiceConfig()
        self.shedding = SheddingPolicy(self.config)
        self.rate_limiter = RateLimiter(
            self.config.rate_limit,
            self.config.rate_burst,
            max_clients=self.config.max_clients,
            clock=clock,
        )
        self._queue: asyncio.Queue[_Pending | None] = asyncio.Queue()
        self._inflight: dict[str, _Pending] = {}
        self._results: OrderedDict[str, SolveReport] = OrderedDict()
        self._executor: ThreadPoolExecutor | None = None
        self._worker: asyncio.Task[None] | None = None
        # Per-client workload traces (populated only when the
        # `collect_traces` config knob is on), LRU-bounded like the
        # rate-limiter's client buckets.
        self._traces: OrderedDict[str, TraceCollector] = OrderedDict()
        self.counters = {
            "received": 0,
            "served": 0,
            "coalesced": 0,
            "result_cache_hits": 0,
            "result_cache_evictions": 0,
            "rejected_queue_full": 0,
            "rejected_rate_limited": 0,
            "shed_light": 0,
            "shed_hard": 0,
            "trace_events": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncAdvisor":
        """Start the single solve worker (idempotent)."""
        if self._worker is None:
            # One thread: solves run off the event loop but strictly in
            # admission order — the determinism contract.
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="advisor-solve"
            )
            self._worker = asyncio.ensure_future(self._serve_loop())
        return self

    async def stop(self) -> None:
        """Drain the queue, then stop the worker and its thread."""
        if self._worker is None:
            return
        await self._queue.put(None)
        await self._worker
        self._worker = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "AsyncAdvisor":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    async def submit(
        self, request: SolveRequest, *, client: str = "default"
    ) -> SolveReport:
        """Admit one request and await its report.

        Raises :class:`~repro.exceptions.RejectedError` (reason
        ``"rate-limited"`` or ``"queue-full"``) when admission control
        refuses it; any solver error propagates to the submitter (and
        to every coalesced co-submitter).
        """
        self.counters["received"] += 1
        retry_after = self.rate_limiter.admit(client)
        if retry_after > 0.0:
            self.counters["rejected_rate_limited"] += 1
            raise RejectedError(
                "rate-limited",
                f"client {client!r} exceeded "
                f"{self.config.rate_limit:g} requests/second "
                f"(burst {self.config.rate_burst}); retry in "
                f"{retry_after:.3f}s",
                retry_after=retry_after,
            )
        key = request.canonical_key()
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.counters["coalesced"] += 1
            return await asyncio.shield(inflight.future)
        cached = self._results.get(key)
        if cached is not None:
            self.counters["result_cache_hits"] += 1
            self._results.move_to_end(key)
            return cached
        depth = self._queue.qsize()
        if depth >= self.config.max_pending:
            self.counters["rejected_queue_full"] += 1
            raise RejectedError(
                "queue-full",
                f"pending queue is full ({depth} of "
                f"{self.config.max_pending} solves waiting)",
            )
        level = self.shedding.level(depth)
        exec_request, degraded_from = self.shedding.degrade(request, level)
        if degraded_from is not None:
            if level >= LEVEL_HARD:
                self.counters["shed_hard"] += 1
            elif level >= LEVEL_LIGHT:
                self.counters["shed_light"] += 1
        entry = _Pending(
            key=key,
            request=request,
            exec_request=exec_request,
            degraded_from=degraded_from,
            future=asyncio.get_running_loop().create_future(),
        )
        self._inflight[key] = entry
        self._queue.put_nowait(entry)
        return await asyncio.shield(entry.future)

    async def _serve_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            entry = await self._queue.get()
            if entry is None:
                return
            try:
                report = await loop.run_in_executor(
                    self._executor, self._solve, entry
                )
            except Exception as error:  # propagate to every waiter
                if not entry.future.cancelled():
                    entry.future.set_exception(error)
            else:
                if not entry.future.cancelled():
                    entry.future.set_result(report)
                self.counters["served"] += 1
                if (
                    entry.degraded_from is None
                    and self.config.result_cache_capacity > 0
                ):
                    self._results[entry.key] = report
                    while (
                        len(self._results)
                        > self.config.result_cache_capacity
                    ):
                        self._results.popitem(last=False)
                        self.counters["result_cache_evictions"] += 1
            finally:
                # Remove from the in-flight map only after the future
                # resolved, so a submit racing this completion either
                # coalesces onto the resolved future or hits the result
                # cache — never re-solves an identical in-flight key.
                del self._inflight[entry.key]

    def _solve(self, entry: _Pending) -> SolveReport:
        """Runs on the worker thread (the advisor serialises anyway)."""
        report = self.advisor.advise(entry.exec_request)
        if entry.degraded_from is not None:
            report.result.metadata["degraded_from"] = entry.degraded_from
            # The report answers the *submitted* request; the degraded
            # execution shows in `strategy` and the metadata marker.
            report.request = entry.request
        return report

    # ------------------------------------------------------------------
    # workload traces (for online re-partitioning)
    # ------------------------------------------------------------------
    def record_event(
        self,
        query_name: str,
        rows: dict | None = None,
        *,
        client: str = "default",
    ) -> bool:
        """Log one query execution into ``client``'s trace.

        Returns ``True`` when recorded, ``False`` (a cheap no-op) when
        the service was configured without ``collect_traces`` — callers
        can report unconditionally.  Tracked clients are LRU-bounded by
        ``max_clients``; evicting a client forgets its trace.
        """
        if not self.config.collect_traces:
            return False
        collector = self._traces.get(client)
        if collector is None:
            collector = TraceCollector()
            self._traces[client] = collector
            while len(self._traces) > self.config.max_clients:
                self._traces.popitem(last=False)
        else:
            self._traces.move_to_end(client)
        collector.record(query_name, rows)
        self.counters["trace_events"] += 1
        return True

    def client_trace(self, client: str = "default") -> TraceCollector | None:
        """The trace collected for ``client``, or ``None``."""
        return self._traces.get(client)

    def merged_trace(self) -> TraceCollector:
        """All per-client traces folded into one collector.

        The workload-wide view to hand to
        :meth:`~repro.api.advisor.Advisor.readvise`; always returns a
        fresh collector (possibly empty), never an internal one.
        """
        merged = TraceCollector()
        for collector in self._traces.values():
            merged.merge(collector)
        return merged

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Service counters plus the advisor's cache stats — the same
        document the socket server answers STATS frames with."""
        return {
            **self.counters,
            "pending": self._queue.qsize(),
            "inflight": len(self._inflight),
            "result_cache_size": len(self._results),
            "trace_clients": len(self._traces),
            "advisor": self.advisor.cache_stats(),
        }
