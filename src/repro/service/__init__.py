"""Async advisor service: a concurrent front end over one shared
:class:`~repro.api.Advisor`.

Layers, inside out:

* :class:`AsyncAdvisor` (:mod:`repro.service.core`) — the in-process
  asyncio facade: request coalescing by canonical key, admission
  control (bounded queue + per-client token buckets), a bounded LRU
  result cache and the load-shedding ladder.
* :class:`AdvisorServer` / :class:`ServerThread`
  (:mod:`repro.service.server`) — the loopback socket front end, a
  frame pump over the facade reusing the portfolio transport's frame
  format with the service's own negotiated envelope kind.
* :class:`ServiceClient` (:mod:`repro.service.client`) — the blocking
  client, with pipelined ``advise_many``.

Start a server with ``python -m repro.service`` (or the CLI's
``serve``), talk to it with the CLI's ``request`` subcommand or a
:class:`ServiceClient`.
"""

from repro.exceptions import RejectedError
from repro.service.config import ServiceConfig
from repro.service.core import AsyncAdvisor
from repro.service.client import ServiceClient
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.server import AdvisorServer, ServerThread, serve
from repro.service.shedding import SheddingPolicy, strategy_rank
from repro.service.wire import SERVICE_ENVELOPE

__all__ = [
    "AdvisorServer",
    "AsyncAdvisor",
    "RateLimiter",
    "RejectedError",
    "SERVICE_ENVELOPE",
    "ServerThread",
    "ServiceClient",
    "ServiceConfig",
    "SheddingPolicy",
    "TokenBucket",
    "serve",
    "strategy_rank",
]
