"""``python -m repro.service`` — run the advisor service on loopback.

Prints ``repro advisor service listening on HOST:PORT`` once bound
(``--port 0``, the default, picks a free port) and serves until a
client sends a SHUTDOWN frame.
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import Sequence

from repro.service.config import ServiceConfig
from repro.service.server import serve


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the partitioning advisor over loopback TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: loopback)")
    parser.add_argument("--port", type=int, default=0,
                        help="port to bind (default: 0 = pick a free one)")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="bounded pending-solve queue depth")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="per-client requests/second (0 disables)")
    parser.add_argument("--burst", type=int, default=8,
                        help="per-client token-bucket burst size")
    parser.add_argument("--max-clients", type=int, default=1024,
                        help="rate-limiter client-table bound (LRU)")
    parser.add_argument("--result-cache", type=int, default=128,
                        help="result-cache capacity (0 disables)")
    parser.add_argument("--coefficient-cache", type=int, default=None,
                        help="advisor coefficient-cache capacity "
                             "(default: unbounded)")
    parser.add_argument("--shed-threshold", type=int, default=0,
                        help="queue depth that starts light shedding "
                             "(0 disables shedding)")
    parser.add_argument("--shed-hard-threshold", type=int, default=0,
                        help="queue depth that starts hard shedding")
    parser.add_argument("--shed-sa-options", default=None,
                        help="JSON options for shed sa/sa-portfolio runs")
    return parser


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    shed_sa_options = (
        json.loads(args.shed_sa_options) if args.shed_sa_options else {}
    )
    return ServiceConfig(
        max_pending=args.max_pending,
        rate_limit=args.rate,
        rate_burst=args.burst,
        max_clients=args.max_clients,
        result_cache_capacity=args.result_cache,
        shed_threshold=args.shed_threshold,
        shed_hard_threshold=args.shed_hard_threshold,
        shed_sa_options=shed_sa_options,
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.api.advisor import Advisor

    advisor = Advisor(coefficient_capacity=args.coefficient_cache)
    try:
        asyncio.run(
            serve(
                host=args.host,
                port=args.port,
                config=config_from_args(args),
                advisor=advisor,
                announce=True,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
