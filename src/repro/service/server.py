"""The asyncio socket front end: a frame pump over :class:`AsyncAdvisor`.

One server owns one :class:`~repro.service.core.AsyncAdvisor` and
serves any number of loopback connections.  Each connection starts with
the HELLO handshake (protocol versions shared with the portfolio
transport, the service's own envelope kind), then carries ADVISE /
STATS / SHUTDOWN frames.  Every ADVISE frame is handled in its own
task, so one connection can pipeline requests — and identical requests
from *different* connections coalesce in the shared facade, which is
the point of a front end over per-process solvers.

Frames answered per request (all carry the request's ``id`` echo):

* ``report`` — the serialised :class:`~repro.api.SolveReport`;
* ``rejected`` — admission control refused it (``reason`` is
  ``"queue-full"`` or ``"rate-limited"``; ``retry_after`` seconds when
  known);
* ``error`` — the request was undecodable or the solve raised.

:class:`ServerThread` hosts the whole loop on a daemon thread for the
synchronous world (tests, the CLI's one-shot ``request`` command
against an in-process server).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.api.advisor import Advisor
from repro.api.request import SolveRequest
from repro.exceptions import RejectedError, ReproError, TransportError
from repro.sa.transport.protocol import SUPPORTED_PROTOCOL_VERSIONS
from repro.service.config import ServiceConfig
from repro.service.core import AsyncAdvisor
from repro.service.wire import (
    KIND_ADVISE,
    KIND_ERROR,
    KIND_HELLO,
    KIND_HELLO_ACK,
    KIND_REJECTED,
    KIND_REPORT,
    KIND_SHUTDOWN,
    KIND_STATS,
    KIND_STATS_REPORT,
    SERVICE_ENVELOPE,
    read_frame,
    report_to_wire,
    write_frame,
)


class AdvisorServer:
    """Serve :class:`SolveRequest` frames over loopback TCP."""

    def __init__(
        self,
        service: AsyncAdvisor | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        config: ServiceConfig | None = None,
        advisor: Advisor | None = None,
    ):
        self.service = service or AsyncAdvisor(advisor, config)
        self.host = host
        self.port = port  # 0 until started; then the bound port
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()
        self._connections = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AdvisorServer":
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Block until a SHUTDOWN frame (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()
        await self.close()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    # ------------------------------------------------------------------
    # one connection
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        default_client = f"conn-{self._connections}"
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task[None]] = set()
        try:
            client = await self._handshake(reader, writer, default_client)
            if client is None:
                return
            while True:
                frame = await read_frame(reader)
                kind = frame.get("kind")
                if kind == KIND_ADVISE:
                    task = asyncio.ensure_future(
                        self._serve_advise(frame, writer, write_lock, client)
                    )
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                elif kind == KIND_STATS:
                    async with write_lock:
                        await write_frame(
                            writer, KIND_STATS_REPORT,
                            stats=self.service.stats(),
                        )
                elif kind == KIND_SHUTDOWN:
                    async with write_lock:
                        await write_frame(writer, KIND_SHUTDOWN)
                    self.request_shutdown()
                    return
                else:
                    async with write_lock:
                        await write_frame(
                            writer, KIND_ERROR,
                            message=f"unexpected frame kind {kind!r}",
                        )
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # peer went away; in-flight answers have nowhere to go
        except TransportError:
            pass  # corrupt frame; drop the connection
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        default_client: str,
    ) -> str | None:
        """Validate the HELLO; returns the client id, or ``None`` when
        the connection was refused (after a structured ERROR frame)."""
        hello = await read_frame(reader)
        if hello.get("kind") != KIND_HELLO:
            await write_frame(
                writer, KIND_ERROR,
                message=f"expected a {KIND_HELLO!r} frame, got "
                        f"{hello.get('kind')!r}",
            )
            return None
        offered = hello.get("protocol_versions")
        shared = sorted(
            set(offered or ()) & set(SUPPORTED_PROTOCOL_VERSIONS)
        )
        if not shared:
            await write_frame(
                writer, KIND_ERROR,
                message=f"no shared protocol version: client offers "
                        f"{offered!r}, server speaks "
                        f"{sorted(SUPPORTED_PROTOCOL_VERSIONS)}",
            )
            return None
        envelope = hello.get("envelope")
        if envelope != SERVICE_ENVELOPE:
            await write_frame(
                writer, KIND_ERROR,
                message=f"envelope kind mismatch: client speaks "
                        f"{envelope!r}, this service speaks "
                        f"{SERVICE_ENVELOPE!r} (is a restart worker "
                        f"dialling the service port?)",
            )
            return None
        await write_frame(
            writer, KIND_HELLO_ACK,
            protocol_version=shared[-1],
            envelope=SERVICE_ENVELOPE,
        )
        client = hello.get("client")
        return str(client) if client else default_client

    async def _serve_advise(
        self,
        frame: dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        client: str,
    ) -> None:
        request_id = frame.get("id")
        try:
            request = SolveRequest.from_dict(frame["request"])
        except (ReproError, KeyError, TypeError, ValueError) as error:
            async with write_lock:
                await write_frame(
                    writer, KIND_ERROR, id=request_id,
                    message=f"undecodable request: {error}",
                )
            return
        try:
            report = await self.service.submit(request, client=client)
        except RejectedError as rejection:
            async with write_lock:
                await write_frame(
                    writer, KIND_REJECTED, id=request_id,
                    reason=rejection.reason,
                    retry_after=rejection.retry_after,
                    message=str(rejection),
                )
            return
        except ReproError as error:
            async with write_lock:
                await write_frame(
                    writer, KIND_ERROR, id=request_id,
                    message=f"{type(error).__name__}: {error}",
                )
            return
        async with write_lock:
            await write_frame(
                writer, KIND_REPORT, id=request_id,
                report=report_to_wire(report),
            )


async def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    config: ServiceConfig | None = None,
    advisor: Advisor | None = None,
    ready: "asyncio.Future[AdvisorServer] | None" = None,
    announce: bool = False,
) -> None:
    """Start a server and run it until a SHUTDOWN frame.

    ``ready`` (when given) resolves with the started server — its
    ``port`` holds the bound port; ``announce`` prints the classic
    ``listening on HOST:PORT`` line for script consumers.
    """
    server = AdvisorServer(host=host, port=port, config=config,
                           advisor=advisor)
    await server.start()
    if ready is not None:
        ready.set_result(server)
    if announce:
        print(f"repro advisor service listening on "
              f"{server.host}:{server.port}", flush=True)
    await server.serve_until_shutdown()


class ServerThread:
    """Host an :class:`AdvisorServer` on a daemon thread.

    For synchronous callers (tests, benches, the CLI): ``start()``
    returns once the port is bound; ``stop()`` shuts the loop down and
    joins the thread.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        config: ServiceConfig | None = None,
        advisor: Advisor | None = None,
    ):
        self.host = host
        self.port: int | None = None
        self._config = config
        self._advisor = advisor
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: AdvisorServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._failure: BaseException | None = None

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="advisor-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise TransportError(
                f"service thread failed to bind within {timeout}s"
            )
        if self._failure is not None:
            raise TransportError(
                f"service thread failed to start: {self._failure}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                AdvisorServer(
                    host=self.host, config=self._config,
                    advisor=self._advisor,
                ).start()
            )
            self._server = server
            self.port = server.port
            self._started.set()
            loop.run_until_complete(server.serve_until_shutdown())
        except BaseException as error:  # surfaced by start()
            self._failure = error
            self._started.set()
        finally:
            loop.close()
            asyncio.set_event_loop(None)

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._server is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self._server.request_shutdown
                )
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
