"""Bench target: socket-transport overhead and retry-storm throughput.

Two questions, answered as *ratios only* (absolute wall-clock is
machine noise; the ratios are what the transport design controls):

* **envelope round-trip overhead** — encoding a restart task envelope
  into a length-prefixed frame and decoding it back, relative to the
  bare envelope encode/decode the in-process queue backend does.  This
  is the per-task price of the wire;
* **retry-storm throughput** — wall-clock of a socket portfolio under
  a deterministic fault storm (dropped results, a killed worker, a
  stalled heartbeat) relative to the same portfolio on a clean socket
  pool and on the in-process queue backend.  Every variant returns the
  bitwise-identical best (asserted), so the ratio isolates the cost of
  fault *recovery*, not of different work.

Besides the rendered table the run emits a ``BENCH_transport.json``
artifact (into ``REPRO_BENCH_ARTIFACT_DIR``, default: the working
directory) so successive runs leave a machine-readable trajectory.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from pathlib import Path

from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable
from repro.costmodel.coefficients import build_coefficients
from repro.instances.random_gen import InstanceParameters, generate_instance
from repro.sa.backends.base import RestartTask
from repro.sa.backends.queue import (
    decode_restart_task,
    encode_restart_task,
)
from repro.sa.options import SaOptions
from repro.sa.portfolio import run_portfolio
from repro.sa.transport import Fault, FaultPlan, SocketTransportBackend
from repro.sa.transport.protocol import KIND_TASK, decode_payload, encode_frame

#: Where the JSON artifact lands (default: the working directory).
ARTIFACT_ENV_VAR = "REPRO_BENCH_ARTIFACT_DIR"
ARTIFACT_NAME = "BENCH_transport.json"

NUM_SITES = 3
ENVELOPE_REPEATS = 200

#: The deterministic fault storm of the throughput measurement: a lost
#: result, a worker killed mid-restart, and a heartbeat stall — one of
#: each failure family the liveness machinery handles.
def _storm_plan() -> FaultPlan:
    return FaultPlan(
        (
            Fault("drop", kind="result", direction="recv", index=0, connection=0),
            Fault("kill-worker", kind="result", index=0, connection=1),
            Fault("stall-heartbeat", kind="heartbeat", index=2, connection=0),
        )
    )


def _bench_instance(seed: int):
    instance = generate_instance(
        InstanceParameters(
            name="transport-bench",
            num_transactions=6,
            num_tables=4,
            max_queries_per_transaction=3,
            update_percent=30.0,
            max_attributes_per_table=5,
            max_table_refs_per_query=2,
            max_attribute_refs_per_query=4,
            attribute_widths=(2.0, 8.0),
            max_frequency=5,
            max_rows=3,
        ),
        seed=seed,
    )
    return build_coefficients(instance)


def _portfolio_options(seed: int) -> SaOptions:
    return SaOptions(
        seed=seed,
        restarts=6,
        inner_loops=4,
        max_outer_loops=10,
        # Tight liveness tuning so the storm's recovery paths (not the
        # timeouts around them) dominate the measurement.
        heartbeat_interval=0.05,
        heartbeat_timeout=0.8,
        backoff_base=0.01,
        max_retries=3,
        backend="socket",
    )


def _envelope_roundtrip_ratio(coefficients, options: SaOptions) -> float:
    task = RestartTask(restart=0, seed=options.seed)
    started = time.perf_counter()
    for _ in range(ENVELOPE_REPEATS):
        envelope = encode_restart_task(coefficients, NUM_SITES, options, task)
        decode_restart_task(envelope)
    bare = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(ENVELOPE_REPEATS):
        envelope = encode_restart_task(coefficients, NUM_SITES, options, task)
        frame = encode_frame(
            KIND_TASK, task_id="0:0", restart=0, envelope=envelope
        )
        payload = decode_payload(frame[4:])
        decode_restart_task(payload["envelope"])
    framed = time.perf_counter() - started
    return framed / bare if bare > 0 else 1.0


def _timed_portfolio(coefficients, options: SaOptions, backend):
    started = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = run_portfolio(coefficients, NUM_SITES, options, backend=backend)
    return result, time.perf_counter() - started


def transport(profile: BenchProfile | None = None) -> BenchTable:
    """The runner-facing table; also writes the JSON artifact."""
    profile = profile or get_profile()
    coefficients = _bench_instance(profile.seed)
    options = _portfolio_options(profile.seed)

    overhead = _envelope_roundtrip_ratio(coefficients, options)

    queue_result, queue_wall = _timed_portfolio(coefficients, options, "queue")
    clean_backend = SocketTransportBackend(workers=2, spawn="thread")
    clean_result, clean_wall = _timed_portfolio(
        coefficients, options, clean_backend
    )
    storm_backend = SocketTransportBackend(
        workers=2, spawn="thread", fault_plan=_storm_plan(), connect_timeout=5.0
    )
    storm_result, storm_wall = _timed_portfolio(
        coefficients, options, storm_backend
    )

    # The whole point of the transport: identical results, any weather.
    for other in (clean_result, storm_result):
        assert other.objective6 == queue_result.objective6
        assert other.best_restart == queue_result.best_restart

    rows = [
        {
            "metric": "envelope frame round-trip vs bare envelope",
            "ratio": round(overhead, 3),
            "detail": f"{ENVELOPE_REPEATS} encode+decode repetitions",
        },
        {
            "metric": "socket (clean) vs in-process queue",
            "ratio": round(clean_wall / queue_wall, 3) if queue_wall else 1.0,
            "detail": "2 thread workers, 6 restarts",
        },
        {
            "metric": "socket (retry storm) vs socket (clean)",
            "ratio": round(storm_wall / clean_wall, 3) if clean_wall else 1.0,
            "detail": (
                f"storm: drop+kill+stall; {storm_result.requeue_count} "
                f"requeues, {storm_result.worker_failures} worker failures"
            ),
        },
        {
            "metric": "socket (retry storm) vs in-process queue",
            "ratio": round(storm_wall / queue_wall, 3) if queue_wall else 1.0,
            "detail": "end-to-end price of faults + recovery",
        },
    ]
    table = BenchTable(
        title="Socket transport — overhead and retry-storm throughput "
        "(ratios only; identical results asserted)",
        columns=["metric", "ratio", "detail"],
        notes=[
            "all portfolio variants returned the bitwise-identical "
            "best-of-6 (asserted in the bench itself)",
        ],
    )
    for row in rows:
        table.add_row(**row)

    path = artifact_path()
    payload = {
        "bench": "transport",
        "profile": profile.name,
        "seed": profile.seed,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "rows": rows,
        "storm": {
            "requeue_count": storm_result.requeue_count,
            "retried_restarts": storm_result.retried_restarts,
            "worker_failures": storm_result.worker_failures,
        },
    }
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n")
        table.notes.append(f"artifact written to {path}")
    except OSError as error:  # read-only CI checkouts keep the table
        table.notes.append(f"artifact not written ({error})")
    return table


def artifact_path() -> Path:
    """Where :func:`transport` writes its JSON artifact."""
    return Path(os.environ.get(ARTIFACT_ENV_VAR, ".")) / ARTIFACT_NAME
