"""Bench target: the calibration sweep and its persisted table.

Reproduces the equal-CPU-budget reading of Table 3's SA column — a
best-of-N restart portfolio given ``T/N`` of the budget per restart
against a single anneal given all of ``T`` — with the budget measured
in *outer annealing loops*, not wall-clock, so every ratio is a pure
function of the master seed and regression-gateable in CI.  Alongside
the ratio rows, the run serves each solve through an
``Advisor(calibration=...)`` recording hook and persists the resulting
:class:`~repro.calibration.CalibrationTable` inside the artifact: the
emitted ``BENCH_calibration.json`` is both the repo's perf-trajectory
record and a ready-to-load table for calibrated ``"auto"`` routing
(``repro-partition advise --calibration BENCH_calibration.json``).

Two contracts are asserted in-bench: the portfolio really consumed the
reduced per-restart budget (equal total CPU by construction), and the
recorded table's :meth:`~repro.calibration.CalibrationTable.recommend`
is non-None for every class the sweep touched — the artifact can always
drive calibrated routing.  The ratio regression gate itself lives in
``benchmarks/test_calibration_bench.py`` and the ``calibration`` CI
job; its tolerance band ships inside the artifact under ``"gate"``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.api import Advisor, SolveRequest
from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable
from repro.calibration import CalibrationTable, instance_class
from repro.costmodel.config import CostParameters
from repro.instances.library import named_instance

#: Where the JSON artifact lands (default: the working directory).
ARTIFACT_ENV_VAR = "REPRO_BENCH_ARTIFACT_DIR"
ARTIFACT_NAME = "BENCH_calibration.json"

NUM_SITES = 4
#: Portfolio sizes N for the best-of-N-at-T/N sweep.
RESTART_COUNTS = (2, 4)
#: Instances swept (small rndB, larger rndA — two distinct classes).
INSTANCES = ("rndBt4x15", "rndAt4x15")
#: The rndB class is small enough for an exact QP observation too.
QP_INSTANCES = ("rndBt4x15",)

#: Regression-gate tolerance band on the equal-budget ratio
#: (portfolio objective / single-anneal objective).  Seed-pinned and
#: iteration-budgeted, so drift beyond this band means the annealer,
#: the portfolio seeding, or the cost model changed behaviour.
GATE = {"min_ratio": 0.5, "max_ratio": 1.1}


def _sa_request(instance, profile: BenchProfile, parameters: CostParameters,
                *, restarts: int, outer_loops: int) -> SolveRequest:
    base = profile.sa_for(instance.num_attributes)
    options = {
        "inner_loops": base.inner_loops,
        "max_outer_loops": outer_loops,
        # Patience must not undercut the loop budget, or the comparison
        # would measure early-stopping luck instead of the budget split.
        "patience": outer_loops,
        "restarts": restarts,
    }
    return SolveRequest(
        instance, num_sites=NUM_SITES, parameters=parameters,
        strategy="sa" if restarts == 1 else "sa-portfolio",
        options=options, seed=profile.seed,
    )


def calibrate(profile: BenchProfile | None = None) -> BenchTable:
    """The runner-facing table; also writes ``BENCH_calibration.json``."""
    profile = profile or get_profile()
    parameters = CostParameters()
    calibration = CalibrationTable()
    advisor = Advisor(calibration=calibration)
    budget = max(profile.sa_options.max_outer_loops, len(RESTART_COUNTS) * 4)

    rows = []
    for name in INSTANCES:
        instance = named_instance(name, seed=profile.seed)
        klass = instance_class(
            instance.num_attributes, instance.num_transactions
        )
        single = advisor.advise(
            _sa_request(instance, profile, parameters,
                        restarts=1, outer_loops=budget)
        )
        for restarts in RESTART_COUNTS:
            per_restart = max(1, budget // restarts)
            portfolio = advisor.advise(
                _sa_request(instance, profile, parameters,
                            restarts=restarts, outer_loops=per_restart)
            )
            # Contract: the portfolio really ran N restarts on the
            # reduced budget — equal total CPU by construction.
            assert portfolio.result.metadata["restarts"] == restarts
            rows.append({
                "instance": name,
                "instance_class": klass,
                "restarts": restarts,
                "single_objective": round(single.objective, 4),
                "portfolio_objective": round(portfolio.objective, 4),
                "ratio": round(portfolio.objective / single.objective, 4),
                "single_outer_loops": budget,
                "portfolio_outer_loops": per_restart,
            })

    # Exact-solver observations for the classes the QP can still serve,
    # so the persisted table carries qp-vs-sa evidence for recommend().
    for name in QP_INSTANCES:
        instance = named_instance(name, seed=profile.seed)
        advisor.advise(SolveRequest(
            instance, num_sites=NUM_SITES, parameters=parameters,
            strategy="qp", seed=profile.seed,
            options={"gap": profile.qp_gap,
                     "time_limit": profile.qp_time_limit},
        ))

    # Contract: every swept class now has a calibrated recommendation.
    for name in INSTANCES:
        instance = named_instance(name, seed=profile.seed)
        klass = instance_class(
            instance.num_attributes, instance.num_transactions
        )
        recommendation = calibration.recommend(klass, num_sites=NUM_SITES)
        assert recommendation is not None, klass

    table = BenchTable(
        title="Calibration — equal-CPU-budget portfolio vs single anneal "
        "(best-of-N at budget/N outer loops, budget in loops not seconds)",
        columns=["instance", "instance_class", "restarts",
                 "single_objective", "portfolio_objective", "ratio",
                 "single_outer_loops", "portfolio_outer_loops"],
        notes=[
            f"{len(calibration)} observations recorded into the embedded "
            f"calibration table",
            f"regression gate: ratio in "
            f"[{GATE['min_ratio']}, {GATE['max_ratio']}]",
        ],
    )
    for row in rows:
        table.add_row(**row)

    path = artifact_path()
    payload = {
        "bench": "calibration",
        "profile": profile.name,
        "seed": profile.seed,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "rows": rows,
        "gate": dict(GATE),
        "calibration": calibration.to_dict(),
    }
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n")
        table.notes.append(f"artifact written to {path}")
    except OSError as error:  # read-only CI checkouts keep the table
        table.notes.append(f"artifact not written ({error})")
    return table


def artifact_path() -> Path:
    """Where :func:`calibrate` writes its JSON artifact."""
    return Path(os.environ.get(ARTIFACT_ENV_VAR, ".")) / ARTIFACT_NAME
