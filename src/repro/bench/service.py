"""Bench target: advisor-service throughput under duplicates and pressure.

Three questions, answered as *ratios only* (absolute wall-clock is
machine noise, and the CI container is single-core — the ratios are
what coalescing and shedding control, no wall-clock parallelism is
asserted):

* **coalesced duplicate storm** — N identical requests through the
  service versus the same N requests through a sequential
  ``advisor.advise`` loop.  Coalescing solves once and fans the report
  out, so the ratio falls towards 1/N;
* **mixed workload** — a batch of distinct-seed requests with
  duplicates mixed in, service versus the sequential loop over the full
  batch.  The service solves only the deduplicated work;
* **shed under pressure** — the same deep queue of SA requests served
  with shedding off versus shedding on (hard level: ``greedy`` floor).
  Degraded answers are near-free, so the ratio shows what admission
  pressure buys.

Every scenario asserts its result contract in-bench: coalesced reports
are *the same object*, every served report is bitwise identical to the
sequential loop over the deduplicated sequence, and shed reports carry
``degraded_from`` provenance.  Besides the rendered table the run
emits ``BENCH_service.json`` (into ``REPRO_BENCH_ARTIFACT_DIR``,
default: the working directory).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.api import Advisor, SolveRequest
from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable
from repro.instances.random_gen import InstanceParameters, generate_instance
from repro.service.config import ServiceConfig
from repro.service.core import AsyncAdvisor

#: Where the JSON artifact lands (default: the working directory).
ARTIFACT_ENV_VAR = "REPRO_BENCH_ARTIFACT_DIR"
ARTIFACT_NAME = "BENCH_service.json"

NUM_SITES = 2
STORM_SIZE = 12          # identical requests in the duplicate storm
MIXED_UNIQUE = 4         # distinct seeds in the mixed workload
MIXED_COPIES = 3         # each distinct request appears this often
PRESSURE_DEPTH = 8       # queued solves in the shedding scenario

SA_OPTIONS = {"inner_loops": 8, "max_outer_loops": 20, "patience": 6}


def _bench_instance(seed: int):
    return generate_instance(
        InstanceParameters(
            name="service-bench",
            num_transactions=6,
            num_tables=4,
            max_queries_per_transaction=3,
            update_percent=30.0,
            max_attributes_per_table=5,
            max_table_refs_per_query=2,
            max_attribute_refs_per_query=4,
            attribute_widths=(2.0, 8.0),
            max_frequency=5,
            max_rows=3,
        ),
        seed=seed,
    )


def _sa_request(instance, seed: int) -> SolveRequest:
    return SolveRequest(
        instance=instance,
        num_sites=NUM_SITES,
        strategy="sa",
        options=dict(SA_OPTIONS),
        seed=seed,
    )


def _sequential_wall(requests: list[SolveRequest]) -> tuple[list, float]:
    """The comparison target: a fresh Advisor, one advise per request."""
    advisor = Advisor()
    started = time.perf_counter()
    reports = [advisor.advise(request) for request in requests]
    return reports, time.perf_counter() - started


def _service_wall(
    requests: list[SolveRequest], config: ServiceConfig
) -> tuple[list, dict, float]:
    """All requests submitted concurrently; queue built *before* the
    worker starts so every request sees deterministic queue depth."""

    async def run():
        service = AsyncAdvisor(config=config)
        tasks = [
            asyncio.ensure_future(service.submit(request))
            for request in requests
        ]
        # Let every submit reach the queue before the worker runs.
        for _ in range(3 * len(requests)):
            await asyncio.sleep(0)
        async with service:
            reports = await asyncio.gather(*tasks)
        return reports, service.stats()

    started = time.perf_counter()
    reports, stats = asyncio.run(run())
    return reports, stats, time.perf_counter() - started


def _assert_identical(report, reference) -> None:
    assert np.array_equal(report.result.x, reference.result.x)
    assert np.array_equal(report.result.y, reference.result.y)
    assert report.result.objective == reference.result.objective
    assert report.strategy == reference.strategy


def service(profile: BenchProfile | None = None) -> BenchTable:
    """The runner-facing table; also writes the JSON artifact."""
    profile = profile or get_profile()
    instance = _bench_instance(profile.seed)
    no_shed = ServiceConfig(max_pending=256)

    # -- coalesced duplicate storm ------------------------------------
    storm = [_sa_request(instance, seed=1)] * STORM_SIZE
    seq_reports, seq_wall = _sequential_wall(storm)
    svc_reports, svc_stats, svc_wall = _service_wall(storm, no_shed)
    assert all(report is svc_reports[0] for report in svc_reports)
    _assert_identical(svc_reports[0], seq_reports[0])
    storm_ratio = svc_wall / seq_wall if seq_wall else 1.0
    storm_detail = (
        f"{STORM_SIZE} identical requests, "
        f"{svc_stats['coalesced'] + svc_stats['result_cache_hits']} "
        f"coalesced/cached, {svc_stats['served']} solved"
    )

    # -- mixed workload ------------------------------------------------
    mixed = [
        _sa_request(instance, seed=seed)
        for seed in range(MIXED_UNIQUE)
        for _ in range(MIXED_COPIES)
    ]
    unique = mixed[::MIXED_COPIES]
    seq_mixed, seq_mixed_wall = _sequential_wall(mixed)
    svc_mixed, mixed_stats, svc_mixed_wall = _service_wall(mixed, no_shed)
    # Bitwise contract: each service answer equals the sequential loop
    # over the deduplicated sequence (cache_stats included).
    dedup_reports, _ = _sequential_wall(unique)
    for index, report in enumerate(svc_mixed):
        reference = dedup_reports[index // MIXED_COPIES]
        _assert_identical(report, reference)
    for report, reference in zip(svc_mixed[::MIXED_COPIES], dedup_reports):
        assert report.cache_stats == reference.cache_stats
    mixed_ratio = svc_mixed_wall / seq_mixed_wall if seq_mixed_wall else 1.0
    mixed_detail = (
        f"{len(mixed)} requests over {MIXED_UNIQUE} distinct seeds, "
        f"{mixed_stats['served']} solved"
    )

    # -- shed under pressure -------------------------------------------
    pressure = [
        _sa_request(instance, seed=100 + index)
        for index in range(PRESSURE_DEPTH)
    ]
    _, _, unshed_wall = _service_wall(pressure, no_shed)
    shed_config = ServiceConfig(
        max_pending=256, shed_threshold=1, shed_hard_threshold=2
    )
    shed_reports, shed_stats, shed_wall = _service_wall(
        pressure, shed_config
    )
    # First request admitted at depth 0 runs as asked; everything at
    # hard depth is served by the greedy floor with provenance.
    assert shed_reports[0].degraded_from is None
    for report in shed_reports[2:]:
        assert report.degraded_from == "sa"
        assert report.strategy == "greedy"
        assert report.result.metadata["degraded_from"] == "sa"
    shed_ratio = shed_wall / unshed_wall if unshed_wall else 1.0
    shed_detail = (
        f"depth {PRESSURE_DEPTH} queue, {shed_stats['shed_hard']} hard "
        f"+ {shed_stats['shed_light']} light sheds"
    )

    rows = [
        {
            "metric": "coalesced duplicate storm vs sequential loop",
            "ratio": round(storm_ratio, 3),
            "detail": storm_detail,
        },
        {
            "metric": "mixed workload vs sequential loop",
            "ratio": round(mixed_ratio, 3),
            "detail": mixed_detail,
        },
        {
            "metric": "shed under pressure vs unshed service",
            "ratio": round(shed_ratio, 3),
            "detail": shed_detail,
        },
    ]
    table = BenchTable(
        title="Advisor service — coalescing and shedding throughput "
        "(ratios only; result identity asserted)",
        columns=["metric", "ratio", "detail"],
        notes=[
            "service answers asserted bitwise-identical to a sequential "
            "advise loop over the deduplicated request sequence "
            "(cache_stats included); shed answers carry degraded_from",
        ],
    )
    for row in rows:
        table.add_row(**row)

    path = artifact_path()
    payload = {
        "bench": "service",
        "profile": profile.name,
        "seed": profile.seed,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "rows": rows,
        "counters": {
            "storm": svc_stats,
            "mixed": mixed_stats,
            "shed": shed_stats,
        },
    }
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n")
        table.notes.append(f"artifact written to {path}")
    except OSError as error:  # read-only CI checkouts keep the table
        table.notes.append(f"artifact not written ({error})")
    return table


def artifact_path() -> Path:
    """Where :func:`service` writes its JSON artifact."""
    return Path(os.environ.get(ARTIFACT_ENV_VAR, ".")) / ARTIFACT_NAME
