"""Bench target: one ``advise_many`` batch through a shared Advisor.

A 10-point request batch over one instance — a penalty sweep alternating
replicated/disjoint QP requests plus a pair of seeded SA requests — the
shape a long-lived advisor service sees.  The point is cache behaviour,
not wall-clock: on the single-core CI container the assertable outcome
is the hit ratios of the shared ``CoefficientCache`` and
``LinearizationCache`` (and batch determinism), which the bench-smoke
test pins.
"""

from __future__ import annotations

from repro.api import Advisor, SolveRequest
from repro.api.report import SolveReport
from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable
from repro.costmodel.config import CostParameters
from repro.instances.library import named_instance

#: Nonzero penalties share one ``need_pair`` sparsity pattern, so the
#: replicated and disjoint MIP skeletons are each built once and
#: re-priced for every later point.
BATCH_PENALTIES = (1.0, 2.0, 4.0, 8.0)
BATCH_INSTANCE = "rndBt4x15"
BATCH_SEED = 20100116


def build_batch(profile: BenchProfile | None = None) -> list[SolveRequest]:
    """The 10 requests of the advisor-batch bench."""
    profile = profile or get_profile()
    instance = named_instance(BATCH_INSTANCE, seed=profile.seed)
    requests: list[SolveRequest] = []
    for penalty in BATCH_PENALTIES:
        parameters = CostParameters(network_penalty=penalty)
        for allow_replication in (True, False):
            requests.append(
                SolveRequest(
                    instance=instance,
                    num_sites=2,
                    parameters=parameters,
                    allow_replication=allow_replication,
                    strategy="qp",
                    options={"backend": "scipy", "gap": profile.qp_gap},
                    time_limit=profile.qp_time_limit,
                )
            )
    sa_options = {"inner_loops": 5, "max_outer_loops": 10, "patience": 4,
                  "restarts": 2}
    for penalty in BATCH_PENALTIES[:2]:
        requests.append(
            SolveRequest(
                instance=instance,
                num_sites=2,
                parameters=CostParameters(network_penalty=penalty),
                strategy="sa",
                options=sa_options,
            )
        )
    return requests


def run_batch(
    profile: BenchProfile | None = None, jobs: int | None = None
) -> tuple[list[SolveReport], Advisor]:
    """Serve the batch through one Advisor; returns reports + advisor."""
    profile = profile or get_profile()
    advisor = Advisor()
    reports = advisor.advise_many(
        build_batch(profile), master_seed=BATCH_SEED, jobs=jobs
    )
    return reports, advisor


def advisor_batch(profile: BenchProfile | None = None) -> BenchTable:
    """The runner-facing table: one row per request plus cache totals."""
    profile = profile or get_profile()
    reports, advisor = run_batch(profile)
    table = BenchTable(
        title="Advisor batch — 10 requests through one shared Advisor "
        f"({BATCH_INSTANCE}, |S|=2)",
        columns=["#", "strategy", "p", "repl", "objective", "time s",
                 "coeff hit", "lin hit"],
        notes=[],
    )
    for index, report in enumerate(reports):
        request = report.request
        table.add_row(
            **{"#": index,
               "strategy": report.strategy,
               "p": request.parameters.network_penalty,
               "repl": "yes" if request.allow_replication else "no",
               "objective": round(report.objective),
               "time s": round(report.wall_time, 2),
               "coeff hit": report.cache_stats["coefficient_hits"],
               "lin hit": report.cache_stats["linearization_hits"]},
        )
    stats = advisor.cache_stats()
    total_coeff = stats["coefficient_hits"] + stats["coefficient_misses"]
    total_lin = stats["linearization_hits"] + stats["linearization_misses"]
    table.notes.append(
        f"coefficient cache: {stats['coefficient_hits']}/{total_coeff} hits; "
        f"linearization cache: {stats['linearization_hits']}/{total_lin} hits"
    )
    table.notes.append(
        "deterministic per master seed regardless of jobs (portfolio "
        "incumbents are completion-order independent)"
    )
    return table
