"""Benchmark budgets and profiles."""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.exceptions import ReproError
from repro.sa.options import SaOptions

PROFILE_ENV_VAR = "REPRO_BENCH_PROFILE"
#: Override the SA restart portfolio size for a bench run (best-of-N).
RESTARTS_ENV_VAR = "REPRO_BENCH_RESTARTS"
#: Override the SA portfolio worker count for a bench run.
JOBS_ENV_VAR = "REPRO_BENCH_JOBS"
#: Override the portfolio execution backend for a bench run
#: ("serial", "process", "thread" or "queue"; results are identical
#: whatever the backend — only the execution path changes).
BACKEND_ENV_VAR = "REPRO_BENCH_BACKEND"


@dataclass(frozen=True)
class BenchProfile:
    """Resource budgets for one benchmark run."""

    name: str
    #: Wall-clock budget per QP solve (the paper used 1800 s).
    qp_time_limit: float
    #: MIP gap (the paper used 0.1%).
    qp_gap: float
    #: SA options for ordinary runs.
    sa_options: SaOptions
    #: Include the largest instances (the x100 family, 64-table rows).
    include_large: bool
    #: Table 1 class sizes (#tables = |T|).
    table1_sizes: tuple[int, ...]
    #: Seed for random instances.
    seed: int = 20100116

    def sa_for(self, num_attributes: int) -> SaOptions:
        """SA options, slightly reduced for very large instances."""
        if num_attributes > 500 and self.sa_options.max_outer_loops > 15:
            return replace(self.sa_options, max_outer_loops=15)
        return self.sa_options


QUICK_PROFILE = BenchProfile(
    name="quick",
    qp_time_limit=20.0,
    qp_gap=1e-3,
    sa_options=SaOptions(inner_loops=10, max_outer_loops=20, patience=6, seed=7),
    include_large=False,
    table1_sizes=(20,),
)

PAPER_PROFILE = BenchProfile(
    name="paper",
    qp_time_limit=1800.0,
    qp_gap=1e-3,
    sa_options=SaOptions(inner_loops=20, max_outer_loops=60, patience=10, seed=7),
    include_large=True,
    table1_sizes=(20, 100),
)

_PROFILES = {profile.name: profile for profile in (QUICK_PROFILE, PAPER_PROFILE)}


def _int_env(variable: str) -> int | None:
    value = os.environ.get(variable)
    if value is None or not value.strip():
        return None
    try:
        return int(value)
    except ValueError:
        raise ReproError(
            f"{variable} must be an integer, got {value!r}"
        ) from None


def get_profile(name: str | None = None) -> BenchProfile:
    """Look up a profile by name, falling back to ``REPRO_BENCH_PROFILE``.

    ``REPRO_BENCH_RESTARTS`` / ``REPRO_BENCH_JOBS`` layer a multi-start
    annealing portfolio on top of any profile without editing it:
    best-of-N restarts, optionally across N workers (see
    :mod:`repro.sa.portfolio`); ``REPRO_BENCH_BACKEND`` selects the
    portfolio execution backend (:mod:`repro.sa.backends`).
    """
    if name is None:
        name = os.environ.get(PROFILE_ENV_VAR, "quick")
    try:
        profile = _PROFILES[name]
    except KeyError:
        known = ", ".join(_PROFILES)
        raise ReproError(f"unknown bench profile {name!r}; known: {known}") from None
    overrides = {}
    restarts = _int_env(RESTARTS_ENV_VAR)
    if restarts is not None:
        overrides["restarts"] = restarts
    jobs = _int_env(JOBS_ENV_VAR)
    if jobs is not None:
        overrides["jobs"] = jobs
    backend = os.environ.get(BACKEND_ENV_VAR)
    if backend is not None and backend.strip():
        overrides["backend"] = backend.strip()
    if overrides:
        profile = replace(profile, sa_options=replace(profile.sa_options, **overrides))
    return profile
