"""Benchmark budgets and profiles."""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.sa.options import SaOptions

PROFILE_ENV_VAR = "REPRO_BENCH_PROFILE"


@dataclass(frozen=True)
class BenchProfile:
    """Resource budgets for one benchmark run."""

    name: str
    #: Wall-clock budget per QP solve (the paper used 1800 s).
    qp_time_limit: float
    #: MIP gap (the paper used 0.1%).
    qp_gap: float
    #: SA options for ordinary runs.
    sa_options: SaOptions
    #: Include the largest instances (the x100 family, 64-table rows).
    include_large: bool
    #: Table 1 class sizes (#tables = |T|).
    table1_sizes: tuple[int, ...]
    #: Seed for random instances.
    seed: int = 20100116

    def sa_for(self, num_attributes: int) -> SaOptions:
        """SA options, slightly reduced for very large instances."""
        if num_attributes > 500 and self.sa_options.max_outer_loops > 15:
            from dataclasses import replace

            return replace(self.sa_options, max_outer_loops=15)
        return self.sa_options


QUICK_PROFILE = BenchProfile(
    name="quick",
    qp_time_limit=20.0,
    qp_gap=1e-3,
    sa_options=SaOptions(inner_loops=10, max_outer_loops=20, patience=6, seed=7),
    include_large=False,
    table1_sizes=(20,),
)

PAPER_PROFILE = BenchProfile(
    name="paper",
    qp_time_limit=1800.0,
    qp_gap=1e-3,
    sa_options=SaOptions(inner_loops=20, max_outer_loops=60, patience=10, seed=7),
    include_large=True,
    table1_sizes=(20, 100),
)

_PROFILES = {profile.name: profile for profile in (QUICK_PROFILE, PAPER_PROFILE)}


def get_profile(name: str | None = None) -> BenchProfile:
    """Look up a profile by name, falling back to ``REPRO_BENCH_PROFILE``."""
    if name is None:
        name = os.environ.get(PROFILE_ENV_VAR, "quick")
    try:
        return _PROFILES[name]
    except KeyError:
        known = ", ".join(_PROFILES)
        raise ReproError(f"unknown bench profile {name!r}; known: {known}") from None
