"""Shared JSON schemas for the ``BENCH_*.json`` artifact families.

Every bench target that persists a machine-readable artifact declares
its shape here, one schema per family, all sharing the common envelope
(``bench``, ``profile``, ``seed``, ``generated_at``, ``rows``).  The
schemas are the contract between the emitters, the reporting renderers
(:mod:`repro.reporting`) and CI: ``tests/test_bench.py`` validates every
emitter's output against its family schema, so a bench refactor cannot
silently change an artifact's shape without the suite noticing.

The validator implements the small JSON-Schema subset the contracts
need (``type``/``required``/``properties``/``items``/``enum``/``const``)
— no external dependency, deterministic error paths.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.exceptions import ArtifactError

_TYPES = {
    "object": (dict,),
    "array": (list,),
    "string": (str,),
    "integer": (int,),
    "number": (int, float),
    "boolean": (bool,),
    "null": (type(None),),
}


def _check_type(value: Any, expected: str | list[str], path: str) -> None:
    names = [expected] if isinstance(expected, str) else list(expected)
    for name in names:
        try:
            accepted = _TYPES[name]
        except KeyError:
            raise ArtifactError(
                f"schema bug at {path}: unknown type {name!r}"
            ) from None
        # bool is an int subclass; only "boolean" (or "number" asked
        # explicitly alongside) may accept it.
        if isinstance(value, bool) and name in ("integer", "number"):
            continue
        if isinstance(value, accepted):
            return
    raise ArtifactError(
        f"{path}: expected {' or '.join(names)}, got "
        f"{type(value).__name__} ({value!r})"
    )


def validate_schema(value: Any, schema: Mapping[str, Any], path: str = "$") -> None:
    """Validate ``value`` against the schema subset; raise :class:`ArtifactError`."""
    if "const" in schema and value != schema["const"]:
        raise ArtifactError(
            f"{path}: expected {schema['const']!r}, got {value!r}"
        )
    if "enum" in schema and value not in schema["enum"]:
        raise ArtifactError(
            f"{path}: {value!r} not one of {list(schema['enum'])}"
        )
    if "type" in schema:
        _check_type(value, schema["type"], path)
    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                raise ArtifactError(f"{path}: missing required key {name!r}")
        for name, sub in schema.get("properties", {}).items():
            if name in value:
                validate_schema(value[name], sub, f"{path}.{name}")
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            validate_schema(item, schema["items"], f"{path}[{index}]")


def _envelope(family: str, extra_required: list[str],
              properties: Mapping[str, Any], row_schema: Mapping[str, Any],
              ) -> dict[str, Any]:
    """The shared artifact envelope specialised for one family."""
    return {
        "type": "object",
        "required": ["bench", "profile", "seed", "generated_at", "rows",
                     *extra_required],
        "properties": {
            "bench": {"const": family},
            "profile": {"type": "string"},
            "seed": {"type": "integer"},
            "generated_at": {"type": "string"},
            "rows": {"type": "array", "items": row_schema},
            **properties,
        },
    }


_RATIO_ROW = {
    "type": "object",
    "required": ["metric", "ratio", "detail"],
    "properties": {
        "metric": {"type": "string"},
        "ratio": {"type": "number"},
        "detail": {"type": "string"},
    },
}

#: One schema per artifact family; the key doubles as the family tag in
#: the artifact's ``bench`` field and in its ``BENCH_<family>.json``
#: (modulo the compression family, whose tag is its bench name).
ARTIFACT_SCHEMAS: dict[str, dict[str, Any]] = {
    "drift": _envelope(
        "drift",
        ["migration_cost"],
        {"migration_cost": {"type": "number"}},
        {
            "type": "object",
            "required": ["drift", "resolve_vs_stay", "warm_vs_cold_iters",
                         "verdict", "detail"],
            "properties": {
                "drift": {"type": "number"},
                "resolve_vs_stay": {"type": "number"},
                "warm_vs_cold_iters": {"type": "number"},
                "verdict": {"enum": ["stay", "migrate"]},
                "detail": {"type": "string"},
            },
        },
    ),
    "service": _envelope(
        "service",
        ["counters"],
        {
            "counters": {
                "type": "object",
                "required": ["storm", "mixed", "shed"],
                "properties": {
                    "storm": {"type": "object"},
                    "mixed": {"type": "object"},
                    "shed": {"type": "object"},
                },
            },
        },
        _RATIO_ROW,
    ),
    "transport": _envelope(
        "transport",
        ["storm"],
        {
            "storm": {
                "type": "object",
                "required": ["requeue_count", "retried_restarts",
                             "worker_failures"],
                "properties": {
                    "requeue_count": {"type": "integer"},
                    "retried_restarts": {"type": "integer"},
                    "worker_failures": {"type": "integer"},
                },
            },
        },
        _RATIO_ROW,
    ),
    "compression": _envelope(
        "compression",
        ["strategy"],
        {"strategy": {"type": "string"}},
        {
            "type": "object",
            "required": ["instance", "tier", "ratio", "objective",
                         "gap", "bound", "wall_time"],
            "properties": {
                "instance": {"type": "string"},
                "tier": {"type": "string"},
                "ratio": {"type": "number"},
                "objective": {"type": "number"},
                "gap": {"type": "number"},
                "bound": {"type": "number"},
                "wall_time": {"type": "number"},
            },
        },
    ),
    "calibration": _envelope(
        "calibration",
        ["calibration", "gate"],
        {
            "calibration": {
                "type": "object",
                "required": ["format_version", "observations"],
                "properties": {
                    "format_version": {"type": "integer"},
                    "observations": {"type": "array", "items": {"type": "object"}},
                },
            },
            "gate": {
                "type": "object",
                "required": ["max_ratio", "min_ratio"],
                "properties": {
                    "max_ratio": {"type": "number"},
                    "min_ratio": {"type": "number"},
                },
            },
        },
        {
            "type": "object",
            "required": ["instance", "instance_class", "restarts",
                         "single_objective", "portfolio_objective", "ratio",
                         "single_outer_loops", "portfolio_outer_loops"],
            "properties": {
                "instance": {"type": "string"},
                "instance_class": {"type": "string"},
                "restarts": {"type": "integer"},
                "single_objective": {"type": "number"},
                "portfolio_objective": {"type": "number"},
                "ratio": {"type": "number"},
                "single_outer_loops": {"type": "integer"},
                "portfolio_outer_loops": {"type": "integer"},
            },
        },
    ),
}


def validate_artifact(payload: Any, family: str | None = None) -> str:
    """Validate one artifact document; returns its family tag.

    ``family`` pins the expected family; when ``None`` the document's
    own ``bench`` field picks the schema.  Unknown families and shape
    violations raise :class:`~repro.exceptions.ArtifactError`.
    """
    if not isinstance(payload, dict):
        raise ArtifactError(
            f"artifact must be a JSON object, got {type(payload).__name__}"
        )
    tag = family if family is not None else payload.get("bench")
    if tag not in ARTIFACT_SCHEMAS:
        raise ArtifactError(
            f"unknown artifact family {tag!r}; known: "
            f"{', '.join(sorted(ARTIFACT_SCHEMAS))}"
        )
    validate_schema(payload, ARTIFACT_SCHEMAS[tag])
    return tag
