"""Regeneration of every table in the paper's evaluation section.

Absolute costs are not comparable to the paper's (the paper never
published its TPC-C statistics or random-instance weight distributions;
see DESIGN.md), so each table also carries the paper's reported numbers
as reference columns and, where meaningful, relative quantities
(reduction percentages, replication ratios) that *are* comparable.

Every solve is served through one per-table
:class:`~repro.api.Advisor`, so rows of the same instance share
coefficient products and re-priced MIP skeletons (bitwise identical to
the direct solver calls the tables used before the unified API).
"""

from __future__ import annotations

from dataclasses import asdict

from repro.api import Advisor, SolveRequest
from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable
from repro.costmodel.config import CostParameters
from repro.exceptions import SolverLimitError
from repro.instances.library import TABLE1_DEFAULTS, TABLE2_INSTANCES, named_instance
from repro.instances.random_gen import generate_instance
from repro.instances.tpcc import tpcc_instance
from repro.model.statistics import describe_instance
from repro.partition.assignment import single_site_partitioning
from repro.partition.layout import layout_summary, render_layout

#: The paper's defaults (Section 5): p = 8, lambda = 0.1.
PAPER_PARAMETERS = CostParameters()


def _qp_request(
    instance,
    num_sites: int,
    profile: BenchProfile,
    parameters: CostParameters = PAPER_PARAMETERS,
    allow_replication: bool = True,
) -> SolveRequest:
    """The tables' QP solve as a request (scipy backend, profile budget)."""
    return SolveRequest(
        instance=instance,
        num_sites=num_sites,
        parameters=parameters,
        allow_replication=allow_replication,
        strategy="qp",
        options={"backend": "scipy", "gap": profile.qp_gap},
        time_limit=profile.qp_time_limit,
    )


def _sa_request(
    instance,
    num_sites: int,
    profile: BenchProfile,
    parameters: CostParameters = PAPER_PARAMETERS,
) -> SolveRequest:
    """The tables' SA solve as a request (profile-tuned options)."""
    option_fields = asdict(profile.sa_for(instance.num_attributes))
    disjoint = option_fields.pop("disjoint")
    return SolveRequest(
        instance=instance,
        num_sites=num_sites,
        parameters=parameters,
        allow_replication=not disjoint,
        strategy="sa",
        options=option_fields,
    )


# ----------------------------------------------------------------------
# Table 1 — parameter influence on the SA solver
# ----------------------------------------------------------------------
#: (label, parameter field, three tested values); bold defaults are the
#: middle entries, matching the paper.
TABLE1_SWEEP: list[tuple[str, str, list]] = [
    ("A max queries/txn", "max_queries_per_transaction", [1, 3, 5]),
    ("B percent updates", "update_percent", [0.0, 10.0, 30.0]),
    ("C max attrs/table", "max_attributes_per_table", [5, 15, 35]),
    ("D max table refs", "max_table_refs_per_query", [2, 5, 10]),
    ("E max attr refs", "max_attribute_refs_per_query", [5, 15, 25]),
    ("F widths", "attribute_widths", [(2.0, 4.0, 8.0), (4.0, 8.0), (4.0, 8.0, 16.0)]),
]


def table1(profile: BenchProfile | None = None) -> BenchTable:
    """Table 1: one-at-a-time parameter sweep, SA solver, S in {1,2,3}."""
    profile = profile or get_profile()
    table = BenchTable(
        title="Table 1 — parameter influence (SA solver, p=8, "
        "load-balance priority 0.1)",
        columns=["class", "parameter", "value", "S=1", "S=2", "S=3",
                 "red% S=3"],
        notes=[
            "costs are objective (4); red% = reduction of S=3 vs S=1",
            "expected shape: largest reductions for few queries/txn, few "
            "updates, many attrs/table, moderate attr refs",
        ],
    )
    advisor = Advisor()
    for size in profile.table1_sizes:
        base = TABLE1_DEFAULTS.with_(
            num_transactions=size, num_tables=size, name=f"table1-{size}"
        )
        for label, field_name, values in TABLE1_SWEEP:
            for value in values:
                parameters = base.with_(**{field_name: value})
                instance = generate_instance(parameters, seed=profile.seed)
                coefficients = advisor.coefficient_cache(instance).coefficients(
                    PAPER_PARAMETERS
                )
                costs: dict[int, float] = {
                    1: single_site_partitioning(coefficients).objective
                }
                for num_sites in (2, 3):
                    costs[num_sites] = advisor.advise(
                        _sa_request(instance, num_sites, profile)
                    ).objective
                table.add_row(
                    **{
                        "class": f"{size}x{size}",
                        "parameter": label,
                        "value": str(value),
                        "S=1": round(costs[1]),
                        "S=2": round(costs[2]),
                        "S=3": round(costs[3]),
                        "red% S=3": round(100.0 * (1 - costs[3] / costs[1]), 1),
                    }
                )
    return table


# ----------------------------------------------------------------------
# Table 2 — the named random instances
# ----------------------------------------------------------------------
def table2(profile: BenchProfile | None = None) -> BenchTable:
    """Table 2: definition and measured sizes of the named instances."""
    profile = profile or get_profile()
    table = BenchTable(
        title="Table 2 — named random instances (rndA = high, rndB = low "
        "cost-reduction potential)",
        columns=["name", "A", "B", "C", "D", "E", "F", "|T|", "#tables",
                 "|A| measured", "queries"],
    )
    for name, parameters in TABLE2_INSTANCES.items():
        instance = generate_instance(parameters, seed=profile.seed)
        stats = describe_instance(instance)
        table.add_row(
            name=name,
            A=parameters.max_queries_per_transaction,
            B=int(parameters.update_percent),
            C=parameters.max_attributes_per_table,
            D=parameters.max_table_refs_per_query,
            E=parameters.max_attribute_refs_per_query,
            F="{" + ",".join(str(int(w)) for w in parameters.attribute_widths) + "}",
            **{"|T|": parameters.num_transactions,
               "#tables": parameters.num_tables,
               "|A| measured": stats.num_attributes,
               "queries": stats.num_queries},
        )
    return table


# ----------------------------------------------------------------------
# Table 3 — QP vs SA
# ----------------------------------------------------------------------
#: The paper's Table 3 (costs in 1e6 units; parentheses = not proven
#: optimal; None = t/o without any solution).
PAPER_TABLE3: dict[tuple[str, int], tuple[float | None, float, float]] = {
    ("tpcc", 2): (0.133, 0.138, 0.208),
    ("tpcc", 3): (0.132, 0.132, 0.208),
    ("tpcc", 4): (0.132, 0.132, 0.208),
    ("rndAt4x15", 4): (0.332, 0.396, 0.933),
    ("rndAt8x15", 4): (0.324, 0.327, 0.808),
    ("rndAt16x15", 4): (0.267, 0.309, 1.180),
    ("rndAt32x15", 4): (0.315, 0.217, 1.491),
    ("rndAt64x15", 4): (0.269, 0.268, 1.452),
    ("rndAt4x100", 4): (8.001, 8.246, 7.946),
    ("rndAt8x100", 4): (7.681, 8.018, 7.454),
    ("rndAt16x100", 4): (None, 6.525, 8.741),
    ("rndAt32x100", 4): (None, 4.501, 8.916),
    ("rndAt64x100", 4): (None, 4.119, 9.591),
    ("rndBt4x15", 4): (0.303, 0.303, 0.303),
    ("rndBt8x15", 4): (0.448, 0.424, 0.440),
    ("rndBt16x15", 4): (0.333, 0.334, 0.385),
    ("rndBt32x15", 4): (0.319, 0.319, 0.361),
    ("rndBt64x15", 4): (0.221, 0.221, 0.229),
    ("rndBt4x100", 4): (4.484, 2.251, 2.251),
    ("rndBt8x100", 4): (4.323, 2.419, 2.419),
    ("rndBt16x100", 4): (2.001, 1.774, 1.774),
    ("rndBt32x100", 4): (2.419, 1.999, 1.999),
    ("rndBt64x100", 4): (None, 2.473, 2.473),
}

_TABLE3_SMALL = [
    "rndAt4x15", "rndAt8x15", "rndAt16x15",
    "rndBt4x15", "rndBt8x15", "rndBt16x15",
]
_TABLE3_LARGE = [
    "rndAt32x15", "rndAt64x15",
    "rndAt4x100", "rndAt8x100", "rndAt16x100", "rndAt32x100", "rndAt64x100",
    "rndBt32x15", "rndBt64x15",
    "rndBt4x100", "rndBt8x100", "rndBt16x100", "rndBt32x100", "rndBt64x100",
]


def _solve_qp_guarded(advisor, instance, num_sites, profile):
    """QP with limits; returns (cost_str, cost, seconds) with the paper's
    parenthesis convention for non-proven solutions and 't/o'."""
    try:
        result = advisor.advise(_qp_request(instance, num_sites, profile)).result
    except SolverLimitError:
        return "t/o", None, profile.qp_time_limit
    cost_str = (
        f"{round(result.objective)}"
        if result.proven_optimal
        else f"({round(result.objective)})"
    )
    return cost_str, result.objective, result.wall_time


def table3(profile: BenchProfile | None = None) -> BenchTable:
    """Table 3: QP vs SA on TPC-C and the named random instances."""
    profile = profile or get_profile()
    table = BenchTable(
        title="Table 3 — QP vs SA (replication allowed, remote placement, "
        "p=8, load-balance priority 0.1)",
        columns=["instance", "|A|", "|T|", "|S|", "QP cost", "QP s",
                 "SA cost", "SA s", "S=1", "paper QP(1e6)", "paper SA(1e6)",
                 "paper S=1(1e6)"],
        notes=[
            "(...) = best incumbent when the QP limit was hit; t/o = no "
            "integer solution in time",
            "expected shape: SA scales far better; rndA gains 25-85%, rndB "
            "little; TPC-C ~25-40%",
        ],
    )

    advisor = Advisor()

    def add_rows(instance, sites_list):
        coefficients = advisor.coefficient_cache(instance).coefficients(
            PAPER_PARAMETERS
        )
        base = single_site_partitioning(coefficients).objective
        key_name = "tpcc" if instance.name.startswith("TPC-C") else instance.name
        for num_sites in sites_list:
            qp_str, _, qp_seconds = _solve_qp_guarded(
                advisor, instance, num_sites, profile
            )
            sa_result = advisor.advise(
                _sa_request(instance, num_sites, profile)
            ).result
            paper = PAPER_TABLE3.get((key_name, num_sites), (None, None, None))
            table.add_row(
                instance=instance.name,
                **{"|A|": instance.num_attributes,
                   "|T|": instance.num_transactions,
                   "|S|": num_sites,
                   "QP cost": qp_str,
                   "QP s": round(qp_seconds, 1),
                   "SA cost": round(sa_result.objective),
                   "SA s": round(sa_result.wall_time, 1),
                   "S=1": round(base),
                   "paper QP(1e6)": paper[0],
                   "paper SA(1e6)": paper[1],
                   "paper S=1(1e6)": paper[2]},
            )

    add_rows(tpcc_instance(), [2, 3, 4])
    names = list(_TABLE3_SMALL)
    if profile.include_large:
        names.extend(_TABLE3_LARGE)
    for name in names:
        add_rows(named_instance(name, seed=profile.seed), [4])
    return table


# ----------------------------------------------------------------------
# Table 4 — the TPC-C three-site layout
# ----------------------------------------------------------------------
def table4(profile: BenchProfile | None = None) -> BenchTable:
    """Table 4: a concrete QP partitioning of TPC-C over three sites."""
    profile = profile or get_profile()
    instance = tpcc_instance()
    result = Advisor().advise(_qp_request(instance, 3, profile)).result
    table = BenchTable(
        title="Table 4 — TPC-C partitioned over three sites (QP solver)",
        columns=["site", "transactions", "#attributes", "replicated attrs"],
    )
    from repro.partition.layout import build_layout

    layouts = build_layout(result)
    replica_counts = result.y.sum(axis=1)
    for layout in layouts:
        replicated = sum(
            1
            for qualified in layout.attributes
            if replica_counts[instance.attribute_index[qualified]] > 1
        )
        table.add_row(
            site=layout.site + 1,
            transactions=", ".join(sorted(layout.transactions)) or "-",
            **{"#attributes": len(layout.attributes),
               "replicated attrs": replicated},
        )
    table.notes.append(f"objective (4) = {result.objective:.0f}")
    table.notes.append("full layout:")
    table.notes.extend(render_layout(result).splitlines())
    table.notes.append(layout_summary(result))
    return table


# ----------------------------------------------------------------------
# Table 5 — replication vs disjoint
# ----------------------------------------------------------------------
#: Paper Table 5 (costs 1e5): (with replication, without, ratio %).
PAPER_TABLE5: dict[tuple[str, int], tuple[float, float, int | None]] = {
    ("tpcc", 1): (0.208, 0.208, None),
    ("tpcc", 2): (0.133, 0.207, 64),
    ("tpcc", 3): (0.132, 0.207, 64),
    ("tpcc", 4): (0.132, 0.207, 64),
    ("rndAt4x15", 2): (4.855, 6.799, 71),
    ("rndAt8x15", 2): (4.710, 5.809, 81),
    ("rndBt8x15", 2): (4.244, 4.402, 96),
    ("rndBt16x15", 2): (3.410, 3.852, 89),
}


def table5(profile: BenchProfile | None = None) -> BenchTable:
    """Table 5: the value of allowing attribute replication (QP solver)."""
    profile = profile or get_profile()
    table = BenchTable(
        title="Table 5 — disjoint vs non-disjoint partitioning (QP solver)",
        columns=["instance", "|A|", "|T|", "|S|", "with repl", "w/o repl",
                 "ratio %", "paper ratio %"],
        notes=[
            "ratio = replicated cost / disjoint cost (lower = replication "
            "helps more); expected: replication never hurts",
        ],
    )

    advisor = Advisor()

    def add_row(instance, num_sites, key_name):
        if num_sites == 1:
            coefficients = advisor.coefficient_cache(instance).coefficients(
                PAPER_PARAMETERS
            )
            base = single_site_partitioning(coefficients).objective
            with_repl = without_repl = base
        else:
            with_repl = advisor.advise(
                _qp_request(instance, num_sites, profile)
            ).objective
            without_repl = advisor.advise(
                _qp_request(instance, num_sites, profile, allow_replication=False)
            ).objective
        ratio = (
            round(100.0 * with_repl / without_repl) if num_sites > 1 else None
        )
        paper = PAPER_TABLE5.get((key_name, num_sites))
        table.add_row(
            instance=instance.name,
            **{"|A|": instance.num_attributes,
               "|T|": instance.num_transactions,
               "|S|": num_sites,
               "with repl": round(with_repl),
               "w/o repl": round(without_repl),
               "ratio %": ratio,
               "paper ratio %": paper[2] if paper else None},
        )

    tpcc = tpcc_instance()
    for num_sites in (1, 2, 3, 4):
        add_row(tpcc, num_sites, "tpcc")
    for name in ("rndAt4x15", "rndAt8x15", "rndBt8x15", "rndBt16x15"):
        add_row(named_instance(name, seed=profile.seed), 2, name)
    return table


# ----------------------------------------------------------------------
# Table 6 — local vs remote placement
# ----------------------------------------------------------------------
#: Paper Table 6 (costs 1e5): (local QP, local SA, remote QP, remote SA).
PAPER_TABLE6: dict[tuple[str, int], tuple[float, float, float, float]] = {
    ("tpcc", 1): (1.916, 1.916, 1.916, 1.916),
    ("tpcc", 2): (1.210, 1.208, 1.221, 1.273),
    ("tpcc", 3): (1.208, 1.208, 1.220, 1.220),
    ("rndAt4x15", 2): (4.709, 4.742, 4.855, 4.888),
    ("rndAt8x15", 2): (4.424, 4.808, 4.710, 5.187),
    ("rndAt8x15u50", 2): (3.189, 3.313, 4.778, 4.873),
    ("rndBt8x15", 2): (4.365, 4.332, 4.244, 4.730),
    ("rndBt16x15", 2): (3.335, 3.387, 3.410, 3.404),
    ("rndBt16x15u50", 2): (5.066, 5.220, 5.438, 5.438),
}


def table6(profile: BenchProfile | None = None) -> BenchTable:
    """Table 6: local (p = 0) vs remote (p = 8) partition placement."""
    profile = profile or get_profile()
    table = BenchTable(
        title="Table 6 — local (p=0) vs remote (p=8) placement, "
        "replication allowed",
        columns=["instance", "|A|", "|T|", "|S|", "local QP", "local SA",
                 "remote QP", "remote SA", "local/remote %",
                 "paper loc/rem %"],
        notes=[
            "only updates cause inter-site transfer: high-update instances "
            "benefit most from local placement",
        ],
    )
    local_parameters = PAPER_PARAMETERS.with_local_placement()
    advisor = Advisor()

    def solve_pair(instance, num_sites, parameters):
        if num_sites == 1:
            coefficients = advisor.coefficient_cache(instance).coefficients(
                parameters
            )
            cost = single_site_partitioning(coefficients).objective
            return cost, cost
        qp = advisor.advise(
            _qp_request(instance, num_sites, profile, parameters=parameters)
        ).objective
        sa = advisor.advise(
            _sa_request(instance, num_sites, profile, parameters=parameters)
        ).objective
        return qp, sa

    def add_row(instance, num_sites, key_name):
        local_qp, local_sa = solve_pair(instance, num_sites, local_parameters)
        remote_qp, remote_sa = solve_pair(instance, num_sites, PAPER_PARAMETERS)
        paper = PAPER_TABLE6.get((key_name, num_sites))
        paper_pct = (
            round(100.0 * paper[0] / paper[2]) if paper and paper[2] else None
        )
        table.add_row(
            instance=instance.name,
            **{"|A|": instance.num_attributes,
               "|T|": instance.num_transactions,
               "|S|": num_sites,
               "local QP": round(local_qp),
               "local SA": round(local_sa),
               "remote QP": round(remote_qp),
               "remote SA": round(remote_sa),
               "local/remote %": round(100.0 * local_qp / remote_qp)
               if remote_qp else None,
               "paper loc/rem %": paper_pct},
        )

    tpcc = tpcc_instance()
    for num_sites in (1, 2, 3):
        add_row(tpcc, num_sites, "tpcc")
    for name in (
        "rndAt4x15", "rndAt8x15", "rndAt8x15u50",
        "rndBt8x15", "rndBt16x15", "rndBt16x15u50",
    ):
        add_row(named_instance(name, seed=profile.seed), 2, name)
    return table
