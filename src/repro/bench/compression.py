"""Bench target: compression-ratio vs. objective-gap curves.

For each duplicate-heavy instance class the bench solves directly and
through the compression pipeline (lossless, then the lossy tier over a
tolerance curve) with the same strategy and seed, and reports the
transaction-count reduction, the coefficient-array memory saved
(:attr:`~repro.costmodel.coefficients.CostCoefficients.nbytes`) and the
measured objective gap next to the tier's reported error bound.

Runs use pure cost minimisation (``lambda = 1``), where the lossless
tier is provably objective-preserving — its gap column is exactly 0.

Besides the rendered table the run emits a ``BENCH_compression.json``
artifact (into ``REPRO_BENCH_ARTIFACT_DIR``, default: the working
directory) so successive runs leave a machine-readable perf trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.api import Advisor, SolveRequest
from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable
from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.instances.library import named_instance
from repro.reduction.compress import compress_instance

#: Where the JSON artifact lands (default: the working directory).
ARTIFACT_ENV_VAR = "REPRO_BENCH_ARTIFACT_DIR"
ARTIFACT_NAME = "BENCH_compression.json"

#: Instance classes of the curve: exact duplicates (lossless-mergeable)
#: and jittered near-duplicates (lossy-tier material).
CURVE_INSTANCES = ("rndDupAt8x120", "rndDupAt8x120j")

#: Lossy-tier tolerance sweep (fractions of the single-site cost).
TOLERANCE_CURVE = (0.02, 0.1)

#: The solve every point uses: deterministic, fast, and pinned
#: merge-equivariant by the lifting property tests.
CURVE_STRATEGY = "greedy"


def _request(
    instance, compression: str = "off", tolerance: float = 0.0
) -> SolveRequest:
    return SolveRequest(
        instance=instance,
        num_sites=3,
        parameters=CostParameters(load_balance_lambda=1.0),
        strategy=CURVE_STRATEGY,
        compression=compression,
        compression_tolerance=tolerance,
    )


def artifact_path() -> Path:
    """Where :func:`compression` writes its JSON artifact."""
    return Path(os.environ.get(ARTIFACT_ENV_VAR, ".")) / ARTIFACT_NAME


def compression(profile: BenchProfile | None = None) -> BenchTable:
    """The runner-facing table; also writes the JSON artifact."""
    profile = profile or get_profile()
    advisor = Advisor()
    table = BenchTable(
        title="Workload compression — ratio vs. objective gap "
        f"({CURVE_STRATEGY}, |S|=3, lambda=1)",
        columns=["instance", "tier", "tol", "|T|", "|T_c|", "ratio",
                 "coeff MB", "objective", "gap %", "bound %"],
        notes=[],
    )
    records = []
    for name in CURVE_INSTANCES:
        instance = named_instance(name, seed=profile.seed)
        direct = advisor.advise(_request(instance))
        direct_nbytes = advisor.coefficients_for(
            _request(instance)
        ).nbytes
        points = [("off", 0.0), ("lossless", 0.0)] + [
            ("lossy", tolerance) for tolerance in TOLERANCE_CURVE
        ]
        for tier, tolerance in points:
            if tier == "off":
                report, ratio, bound = direct, 1.0, 0.0
                compressed_transactions = instance.num_transactions
                nbytes = direct_nbytes
            else:
                report = advisor.advise(
                    _request(instance, compression=tier, tolerance=tolerance)
                )
                ratio = report.metadata.get("compression_ratio", 1.0)
                bound = report.metadata.get("objective_error_bound", 0.0)
                compressed_transactions = report.metadata.get(
                    "compressed_transactions", instance.num_transactions
                )
                # The real compressed-view coefficient footprint (the
                # arrays the solver actually touched).
                compressed_view = compress_instance(
                    instance, tier=tier, tolerance=tolerance,
                    parameters=_request(instance).parameters,
                ).compressed
                nbytes = build_coefficients(
                    compressed_view, _request(instance).parameters
                ).nbytes
            gap = report.objective - direct.objective
            row = {
                "instance": name,
                "tier": tier,
                "tol": tolerance,
                "|T|": instance.num_transactions,
                "|T_c|": compressed_transactions,
                "ratio": round(ratio, 2),
                "coeff MB": round(nbytes / 1e6, 2),
                "objective": round(report.objective),
                "gap %": round(100.0 * gap / direct.objective, 4),
                "bound %": round(100.0 * bound / direct.objective, 4),
            }
            table.add_row(**row)
            records.append(
                {**row,
                 "objective": report.objective,
                 "direct_objective": direct.objective,
                 "gap": gap,
                 "bound": bound,
                 "coeff_nbytes": int(nbytes),
                 "wall_time": report.wall_time}
            )
    table.notes.append(
        "lossless gap is exactly 0 under lambda=1 (provably "
        "objective-preserving merges); lossy gap is bounded by the "
        "reported bound"
    )
    path = artifact_path()
    payload = {
        "bench": "compression",
        "profile": profile.name,
        "seed": profile.seed,
        "strategy": CURVE_STRATEGY,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "rows": records,
    }
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n")
        table.notes.append(f"artifact written to {path}")
    except OSError as error:  # read-only CI checkouts keep the table
        table.notes.append(f"artifact not written ({error})")
    return table


def run_curve(profile: BenchProfile | None = None) -> list[dict]:
    """The artifact rows alone (used by the bench-smoke test)."""
    table = compression(profile)
    return table.rows
