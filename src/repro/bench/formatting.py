"""Plain-text rendering of benchmark tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class BenchTable:
    """One regenerated paper table."""

    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column_values(self, column: str) -> list[Any]:
        return [row.get(column) for row in self.rows]


def format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e6:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


def render_table(table: BenchTable) -> str:
    """Render with aligned columns, title and footnotes."""
    header = table.columns
    body = [[format_cell(row.get(column)) for column in header] for row in table.rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [table.title, "=" * len(table.title)]
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    for note in table.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
