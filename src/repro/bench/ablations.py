"""Ablation benchmarks beyond the paper's tables.

Each probes one design decision the paper discusses but does not
quantify in a table:

* write-accounting modes (Section 2.1's three choices),
* the reasonable-cuts reduction (Section 4),
* the 20/80 heavy-first refinement (Section 4),
* the Appendix-A latency extension,
* the from-scratch MIP solver vs HiGHS,
* the QP/SA solvers vs classic baselines.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines import (
    affinity_partitioning,
    greedy_binpack_partitioning,
    hill_climb_partitioning,
    round_robin_partitioning,
)
from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable
from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters, WriteAccounting
from repro.costmodel.evaluator import SolutionEvaluator
from repro.instances.library import named_instance
from repro.partition.assignment import single_site_partitioning
from repro.qp.solver import QpPartitioner
from repro.reduction.cuts import group_instance
from repro.reduction.heavy import IterativeRefinement
from repro.sa.solver import SaPartitioner

PAPER_PARAMETERS = CostParameters()


def ablation_write_accounting(profile: BenchProfile | None = None) -> BenchTable:
    """Cost of the same layout under the three write accountings."""
    profile = profile or get_profile()
    table = BenchTable(
        title="Ablation — Section 2.1 write-accounting modes",
        columns=["instance", "|S|", "accounting", "objective (4)",
                 "write access AW", "vs paper mode %"],
        notes=[
            "the same QP layout re-evaluated: ALL overestimates AW, "
            "RELEVANT is exact, NONE drops it",
        ],
    )
    for name in ("tpcc", "rndAt8x15"):
        instance = named_instance(name, seed=profile.seed)
        coefficients = build_coefficients(instance, PAPER_PARAMETERS)
        result = QpPartitioner(coefficients, 2).solve(
            time_limit=profile.qp_time_limit, backend="scipy"
        )
        reference = None
        for accounting in (
            WriteAccounting.ALL_ATTRIBUTES,
            WriteAccounting.RELEVANT_ATTRIBUTES,
            WriteAccounting.NO_ATTRIBUTES,
        ):
            parameters = replace(PAPER_PARAMETERS, write_accounting=accounting)
            mode_coefficients = build_coefficients(instance, parameters)
            evaluator = SolutionEvaluator(mode_coefficients)
            breakdown = evaluator.breakdown(result.x, result.y)
            if reference is None:
                reference = breakdown.objective4
            table.add_row(
                instance=instance.name,
                **{"|S|": 2,
                   "accounting": accounting.value,
                   "objective (4)": round(breakdown.objective4),
                   "write access AW": round(breakdown.write_access),
                   "vs paper mode %": round(
                       100.0 * breakdown.objective4 / reference, 1
                   )},
            )
    return table


def ablation_reduction(profile: BenchProfile | None = None) -> BenchTable:
    """Reasonable cuts: model size and solve time, identical optimum."""
    profile = profile or get_profile()
    table = BenchTable(
        title="Ablation — Section 4 reasonable-cuts reduction",
        columns=["instance", "|A|", "groups", "QP vars full", "QP vars grouped",
                 "cost full", "cost grouped", "time full s", "time grouped s"],
        notes=["grouping is lossless: costs must match exactly"],
    )
    for name in ("tpcc", "rndAt8x15", "rndAt16x15"):
        instance = named_instance(name, seed=profile.seed)
        coefficients = build_coefficients(instance, PAPER_PARAMETERS)
        full_partitioner = QpPartitioner(coefficients, 2)
        full = full_partitioner.solve(
            time_limit=profile.qp_time_limit, backend="scipy"
        )
        grouped_problem = group_instance(instance)
        grouped_partitioner = QpPartitioner(
            grouped_problem.grouped, 2, parameters=PAPER_PARAMETERS
        )
        grouped_raw = grouped_partitioner.solve(
            time_limit=profile.qp_time_limit, backend="scipy"
        )
        expanded = grouped_problem.expand(grouped_raw, coefficients)
        table.add_row(
            instance=instance.name,
            **{"|A|": instance.num_attributes,
               "groups": len(grouped_problem.groups),
               "QP vars full": full_partitioner.model_size["variables"],
               "QP vars grouped": grouped_partitioner.model_size["variables"],
               "cost full": round(full.objective),
               "cost grouped": round(expanded.objective),
               "time full s": round(full.wall_time, 2),
               "time grouped s": round(grouped_raw.wall_time, 2)},
        )
    return table


def ablation_heavy(profile: BenchProfile | None = None) -> BenchTable:
    """The 20/80 heavy-first strategy vs direct solves."""
    profile = profile or get_profile()
    table = BenchTable(
        title="Ablation — Section 4 heavy-first (20/80) refinement",
        columns=["instance", "|T|", "heavy txns", "heavy-first cost",
                 "SA cost", "QP cost", "heavy-first s", "QP s"],
    )
    for name in ("rndAt8x15", "rndBt16x15"):
        instance = named_instance(name, seed=profile.seed)
        coefficients = build_coefficients(instance, PAPER_PARAMETERS)
        refinement = IterativeRefinement(instance, 2, PAPER_PARAMETERS)
        heavy_result = refinement.solve(
            time_limit=profile.qp_time_limit, backend="scipy"
        )
        sa_result = SaPartitioner(
            coefficients, 2, options=profile.sa_for(instance.num_attributes)
        ).solve()
        qp_result = QpPartitioner(coefficients, 2).solve(
            time_limit=profile.qp_time_limit, backend="scipy"
        )
        table.add_row(
            instance=instance.name,
            **{"|T|": instance.num_transactions,
               "heavy txns": len(heavy_result.metadata["heavy_transactions"]),
               "heavy-first cost": round(heavy_result.objective),
               "SA cost": round(sa_result.objective),
               "QP cost": round(qp_result.objective),
               "heavy-first s": round(heavy_result.wall_time, 2),
               "QP s": round(qp_result.wall_time, 2)},
        )
    return table


def ablation_latency(profile: BenchProfile | None = None) -> BenchTable:
    """Appendix A: adding the latency term to the objective."""
    profile = profile or get_profile()
    table = BenchTable(
        title="Ablation — Appendix A latency extension",
        columns=["instance", "p_l", "objective (4)", "latency estimate",
                 "remote-writing queries"],
        notes=["higher p_l pushes replicas of updated attributes home"],
    )
    instance = named_instance("rndAt8x15u50", seed=profile.seed)
    for latency_penalty in (0.0, 50.0, 500.0):
        parameters = replace(PAPER_PARAMETERS, latency_penalty=latency_penalty)
        coefficients = build_coefficients(instance, parameters)
        partitioner = QpPartitioner(
            coefficients, 2, latency=latency_penalty > 0
        )
        result = partitioner.solve(
            time_limit=profile.qp_time_limit, backend="scipy"
        )
        evaluator = SolutionEvaluator(coefficients)
        latency = evaluator.latency(result.x, result.y)
        remote_writers = (
            round(latency / latency_penalty) if latency_penalty else 0
        )
        table.add_row(
            instance=instance.name,
            p_l=latency_penalty,
            **{"objective (4)": round(result.objective),
               "latency estimate": round(latency),
               "remote-writing queries": remote_writers},
        )
    return table


def ablation_backend(profile: BenchProfile | None = None) -> BenchTable:
    """From-scratch branch & bound vs HiGHS on small instances."""
    profile = profile or get_profile()
    table = BenchTable(
        title="Ablation — from-scratch MIP solver vs HiGHS",
        columns=["instance", "|S|", "vars", "scratch cost", "scipy cost",
                 "scratch s", "scipy s", "scratch nodes"],
        notes=["both must find the same optimum (gap 0.1%)"],
    )
    from repro.instances.random_gen import InstanceParameters, generate_instance

    small_classes = (
        InstanceParameters(name="backend-small", num_transactions=4,
                           num_tables=3, max_attributes_per_table=5,
                           max_table_refs_per_query=2,
                           max_attribute_refs_per_query=4),
        InstanceParameters(name="backend-wide", num_transactions=3,
                           num_tables=2, max_attributes_per_table=10,
                           max_table_refs_per_query=2,
                           max_attribute_refs_per_query=5),
    )
    for parameters, num_sites in ((small_classes[0], 2), (small_classes[1], 2)):
        instance = generate_instance(parameters, seed=profile.seed)
        grouped = group_instance(instance)  # shrink for the scratch solver
        coefficients = build_coefficients(grouped.grouped, PAPER_PARAMETERS)
        partitioner = QpPartitioner(coefficients, num_sites)
        scratch = partitioner.solve(
            time_limit=profile.qp_time_limit, backend="scratch"
        )
        scipy_result = QpPartitioner(coefficients, num_sites).solve(
            time_limit=profile.qp_time_limit, backend="scipy"
        )
        table.add_row(
            instance=grouped.grouped.name,
            **{"|S|": num_sites,
               "vars": partitioner.model_size["variables"],
               "scratch cost": round(scratch.objective),
               "scipy cost": round(scipy_result.objective),
               "scratch s": round(scratch.wall_time, 2),
               "scipy s": round(scipy_result.wall_time, 2),
               "scratch nodes": scratch.metadata.get("nodes")},
        )
    return table


def ablation_baselines(profile: BenchProfile | None = None) -> BenchTable:
    """QP/SA vs classic vertical-partitioning baselines."""
    profile = profile or get_profile()
    table = BenchTable(
        title="Ablation — QP/SA vs classic baselines (objective (4), "
        "lower is better)",
        columns=["instance", "|S|", "single-site", "round-robin", "affinity",
                 "binpack", "hill-climb", "SA", "QP"],
    )
    for name, num_sites in (("tpcc", 3), ("rndAt8x15", 2), ("rndBt16x15", 2)):
        instance = named_instance(name, seed=profile.seed)
        coefficients = build_coefficients(instance, PAPER_PARAMETERS)
        sa = SaPartitioner(
            coefficients, num_sites,
            options=profile.sa_for(instance.num_attributes),
        ).solve()
        qp = QpPartitioner(coefficients, num_sites).solve(
            time_limit=profile.qp_time_limit, backend="scipy"
        )
        table.add_row(
            instance=instance.name,
            **{"|S|": num_sites,
               "single-site": round(single_site_partitioning(coefficients).objective),
               "round-robin": round(
                   round_robin_partitioning(coefficients, num_sites).objective
               ),
               "affinity": round(
                   affinity_partitioning(coefficients, num_sites).objective
               ),
               "binpack": round(
                   greedy_binpack_partitioning(coefficients, num_sites).objective
               ),
               "hill-climb": round(
                   hill_climb_partitioning(
                       coefficients, num_sites, seed=profile.seed
                   ).objective
               ),
               "SA": round(sa.objective),
               "QP": round(qp.objective)},
        )
    return table
