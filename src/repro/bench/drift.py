"""Bench target: online re-partitioning under workload drift.

Sweeps drift magnitudes over a two-writer workload whose optimal layout
follows whichever writer dominates (the flash-crowd shape of
``examples/trace_driven_advisor.py``), and answers two questions as
ratios:

* **re-solve vs stay** — the migration-augmented objective of
  ``Advisor.readvise``'s re-solve against the deterministic stay-put
  cost of the deployed incumbent.  Near 1.0 at zero drift (nothing to
  gain), falling as the drift grows;
* **warm vs cold iterations** — annealing iterations of the
  incumbent-warm-started SA against a cold start on the same drifted
  instance.  The warm start begins at the stay-put solution instead of
  a random placement; at zero drift that start is already the optimum
  and the anneal freezes immediately, while large drifts make the
  warm run work (and often search longer) to escape the incumbent.

Two contracts are asserted in-bench on every magnitude: the warm
re-solve's total never exceeds the stay-put cost (restart 0 replays the
incumbent), and a layout-carrying request with ``migration_cost=0``
served by a layout-ignoring strategy (greedy) is bitwise identical to
the layout-free request.  Besides the rendered table the run emits
``BENCH_drift.json`` (into ``REPRO_BENCH_ARTIFACT_DIR``, default: the
working directory).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.api import Advisor, SolveRequest
from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable
from repro.costmodel.config import CostParameters
from repro.model.instance import ProblemInstance
from repro.model.schema import SchemaBuilder
from repro.model.workload import Query, Transaction, Workload
from repro.partition.current_layout import CurrentLayout

#: Where the JSON artifact lands (default: the working directory).
ARTIFACT_ENV_VAR = "REPRO_BENCH_ARTIFACT_DIR"
ARTIFACT_NAME = "BENCH_drift.json"

NUM_SITES = 2
DRIFTS = (0.0, 0.25, 0.5, 0.75, 1.0)
MIGRATION_COST = 1.0

#: Per-query frequency at drift 0 (steady) and drift 1 (flash crowd):
#: user writes dominate, then order traffic takes over.
STEADY_FREQ = {
    "UserOps.get": 30.0, "UserOps.update": 45.0,
    "OrderOps.get": 12.0, "OrderOps.update": 3.0,
    "Report.join": 10.0,
}
FLASH_FREQ = {
    "UserOps.get": 12.0, "UserOps.update": 3.0,
    "OrderOps.get": 30.0, "OrderOps.update": 45.0,
    "Report.join": 10.0,
}

SA_OPTIONS = {"inner_loops": 8, "max_outer_loops": 30, "patience": 8}


def _shop_instance(drift: float) -> ProblemInstance:
    """The two-writer workload at ``drift`` in [0, 1] between mixes."""
    schema = (
        SchemaBuilder("drift-shop")
        .table("Users", key=8, name=40, prefs=200)
        .table("Orders", key=8, item=40, status=160)
        .build()
    )

    def freq(name: str) -> float:
        return (1.0 - drift) * STEADY_FREQ[name] + drift * FLASH_FREQ[name]

    workload = Workload(
        [
            Transaction("UserOps", (
                Query.read("UserOps.get", ["Users.key", "Users.name"],
                           frequency=freq("UserOps.get")),
                Query.write("UserOps.update", ["Users.prefs"], rows=2.0,
                            frequency=freq("UserOps.update")),
            )),
            Transaction("OrderOps", (
                Query.read("OrderOps.get", ["Orders.key", "Orders.item"],
                           frequency=freq("OrderOps.get")),
                Query.write("OrderOps.update", ["Orders.status"], rows=2.0,
                            frequency=freq("OrderOps.update")),
            )),
            Transaction("Report", (
                Query.read("Report.join",
                           ["Users.prefs", "Orders.status"], rows=5.0,
                           frequency=freq("Report.join")),
            )),
        ],
        name=f"drift-{drift:g}",
    )
    return ProblemInstance(schema, workload, name=f"drift-shop-{drift:g}")


def drift(profile: BenchProfile | None = None) -> BenchTable:
    """The runner-facing table; also writes the JSON artifact."""
    profile = profile or get_profile()
    parameters = CostParameters(load_balance_lambda=0.5)
    advisor = Advisor()

    # Deploy once under the steady mix; every drifted readvise measures
    # against this incumbent.
    deployed = advisor.advise(SolveRequest(
        _shop_instance(0.0), num_sites=NUM_SITES, parameters=parameters,
        strategy="sa", options=dict(SA_OPTIONS), seed=profile.seed,
    )).result
    incumbent = CurrentLayout.from_result(deployed)

    rows = []
    for magnitude in DRIFTS:
        instance = _shop_instance(magnitude)
        warm = advisor.readvise(SolveRequest(
            instance, num_sites=NUM_SITES, parameters=parameters,
            strategy="sa", options=dict(SA_OPTIONS), seed=profile.seed,
            current_layout=incumbent, migration_cost=MIGRATION_COST,
        ))
        verdict = warm.migration
        # Contract: restart 0 replays the incumbent, so the migrated
        # best can never lose to staying put.
        assert verdict.total_cost <= verdict.stay_cost + 1e-9 * max(
            1.0, verdict.stay_cost
        ), (verdict.total_cost, verdict.stay_cost)

        cold = advisor.advise(SolveRequest(
            instance, num_sites=NUM_SITES, parameters=parameters,
            strategy="sa", options=dict(SA_OPTIONS), seed=profile.seed,
        ))
        warm_iters = int(warm.result.metadata["iterations"])
        cold_iters = int(cold.result.metadata["iterations"])

        # Contract: with migration_cost=0 a layout-ignoring strategy is
        # bitwise unaffected by the layout riding the request.
        plain = advisor.advise(SolveRequest(
            instance, num_sites=NUM_SITES, parameters=parameters,
            strategy="greedy",
        ))
        carried = advisor.advise(SolveRequest(
            instance, num_sites=NUM_SITES, parameters=parameters,
            strategy="greedy", current_layout=incumbent, migration_cost=0.0,
        ))
        assert np.array_equal(plain.result.x, carried.result.x)
        assert np.array_equal(plain.result.y, carried.result.y)
        assert plain.result.objective == carried.result.objective

        rows.append({
            "drift": magnitude,
            "resolve_vs_stay": round(
                verdict.total_cost / verdict.stay_cost, 4
            ),
            "warm_vs_cold_iters": round(
                warm_iters / cold_iters if cold_iters else 1.0, 3
            ),
            "verdict": verdict.recommendation,
            "detail": (
                f"stay {verdict.stay_cost:.0f}, re-solve total "
                f"{verdict.total_cost:.0f} (move {verdict.move_cost:.0f}); "
                f"{warm_iters} warm vs {cold_iters} cold iterations"
            ),
        })

    table = BenchTable(
        title="Online re-partitioning — re-solve vs stay-put across "
        "drift magnitudes (warm-started SA)",
        columns=["drift", "resolve_vs_stay", "warm_vs_cold_iters",
                 "verdict", "detail"],
        notes=[
            "asserted in-bench: warm total <= stay-put on every "
            "magnitude; layout + migration_cost=0 leaves layout-"
            "ignoring strategies bitwise unchanged",
        ],
    )
    for row in rows:
        table.add_row(**row)

    path = artifact_path()
    payload = {
        "bench": "drift",
        "profile": profile.name,
        "seed": profile.seed,
        "migration_cost": MIGRATION_COST,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "rows": rows,
    }
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n")
        table.notes.append(f"artifact written to {path}")
    except OSError as error:  # read-only CI checkouts keep the table
        table.notes.append(f"artifact not written ({error})")
    return table


def artifact_path() -> Path:
    """Where :func:`drift` writes its JSON artifact."""
    return Path(os.environ.get(ARTIFACT_ENV_VAR, ".")) / ARTIFACT_NAME
