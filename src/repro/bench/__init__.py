"""Benchmark harness regenerating every table of the paper.

Each ``table*`` function in :mod:`repro.bench.tables` reproduces one
table of the evaluation section and returns a :class:`BenchTable` whose
rows mirror the paper's rows (with the paper's reported numbers shown
alongside ours where applicable). ``python -m repro.bench table3``
renders any of them from the command line; the pytest-benchmark files
under ``benchmarks/`` wrap the same functions.

Budgets come from :class:`~repro.bench.config.BenchProfile` — ``quick``
(default, minutes) or ``paper`` (closer to the paper's 30-minute QP
budgets), selectable via ``REPRO_BENCH_PROFILE``.
"""

from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable, render_table
from repro.bench.runner import run_table, TABLE_FUNCTIONS

__all__ = [
    "BenchProfile",
    "get_profile",
    "BenchTable",
    "render_table",
    "run_table",
    "TABLE_FUNCTIONS",
]
