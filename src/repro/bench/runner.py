"""Dispatch and CLI entry point for the benchmark harness."""

from __future__ import annotations

import sys
import time
from typing import Callable

from repro.bench import (
    ablations,
    advisor_batch,
    calibrate,
    compression,
    drift,
    service,
    tables,
    transport,
)
from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable, render_table
from repro.exceptions import ReproError

TABLE_FUNCTIONS: dict[str, Callable[[BenchProfile | None], BenchTable]] = {
    "table1": tables.table1,
    "table2": tables.table2,
    "table3": tables.table3,
    "table4": tables.table4,
    "table5": tables.table5,
    "table6": tables.table6,
    "ablation_write_accounting": ablations.ablation_write_accounting,
    "ablation_reduction": ablations.ablation_reduction,
    "ablation_heavy": ablations.ablation_heavy,
    "ablation_latency": ablations.ablation_latency,
    "ablation_backend": ablations.ablation_backend,
    "ablation_baselines": ablations.ablation_baselines,
    "advisor_batch": advisor_batch.advisor_batch,
    "calibrate": calibrate.calibrate,
    "compression": compression.compression,
    "drift": drift.drift,
    "service": service.service,
    "transport": transport.transport,
}


def run_table(name: str, profile: BenchProfile | None = None) -> BenchTable:
    """Regenerate one paper table / ablation by name."""
    try:
        function = TABLE_FUNCTIONS[name]
    except KeyError:
        known = ", ".join(TABLE_FUNCTIONS)
        raise ReproError(f"unknown bench target {name!r}; known: {known}") from None
    return function(profile)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.bench <target> [<target> ...|all]")
        print("targets:", ", ".join(TABLE_FUNCTIONS))
        return 0
    targets = list(TABLE_FUNCTIONS) if argv == ["all"] else argv
    profile = get_profile()
    sa_options = profile.sa_options
    portfolio = ""
    if sa_options.restarts > 1:
        portfolio = (
            f" (SA portfolio: best-of-{sa_options.restarts}, "
            f"jobs={sa_options.jobs})"
        )
    elif sa_options.jobs > 1:
        # jobs without restarts is a no-op; say so instead of implying
        # a portfolio ran.
        portfolio = (
            f" (REPRO_BENCH_JOBS={sa_options.jobs} ignored: "
            f"set REPRO_BENCH_RESTARTS > 1 for a portfolio)"
        )
    print(f"# bench profile: {profile.name}{portfolio}")
    for target in targets:
        started = time.perf_counter()
        table = run_table(target, profile)
        elapsed = time.perf_counter() - started
        print()
        print(render_table(table))
        print(f"[{target} regenerated in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
