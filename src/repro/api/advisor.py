"""The advisor facade: ``advise(request)`` and batched serving.

One :class:`Advisor` is a long-lived serving object: it owns a
per-instance :class:`~repro.costmodel.coefficients.CoefficientCache`
(indicators/weights built once per instance, coefficient arrays memoised
per cost parameters) and a shared
:class:`~repro.qp.linearize.LinearizationCache` (MIP constraint
skeletons re-priced instead of rebuilt), so a batch of requests — a
parameter sweep, a bench table, a service queue — pays the expensive
model-building work once.  Cached serving is bitwise identical to
uncached: the caches only share intermediate products, never change the
arithmetic.

``advise_many`` serves a list of requests in deterministic order and
derives per-request seeds from one master seed; SA-family stages can fan
their restart portfolios out over the existing process pool via
``jobs`` without changing any result (the portfolio incumbent does not
depend on completion order).

Threading model
---------------

One :class:`Advisor` may be shared across threads — the asyncio service
front end (:mod:`repro.service`) does exactly that, admitting requests
on the event loop while solves run on a worker thread.  The shared
caches (:class:`~repro.costmodel.coefficients.CoefficientCache`,
:class:`~repro.qp.linearize.LinearizationCache`, and the advisor's own
per-instance LRU) are plain Python structures with no concurrency story
of their own, so the advisor serialises: every :meth:`advise` call runs
under one internal re-entrant lock, as do :meth:`coefficient_cache` and
:meth:`cache_stats`.  Concurrent callers therefore never corrupt a
cache — they queue.  Serialisation is also what keeps the per-request
``cache_stats`` deltas in :class:`~repro.api.report.SolveReport`
attributable: the counters move only for the request holding the lock.
(The lock is re-entrant because the compression pipeline and the
``qp-heavy`` strategy re-enter ``advise`` from inside a serve.)
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

from repro.api.registry import SolverRegistry, StrategyContext, default_registry
from repro.api.report import MigrationReport, SolveReport
from repro.api.request import SolveRequest
from repro.costmodel.coefficients import (
    CoefficientCache,
    CostCoefficients,
    attach_migration,
)
from repro.costmodel.evaluator import SolutionEvaluator
from repro.exceptions import OptionsError
from repro.model.instance import ProblemInstance
from repro.partition.assignment import PartitioningResult
from repro.qp.linearize import DEFAULT_CACHE_CAPACITY, LinearizationCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.calibration import CalibrationTable

#: Stages that understand the SA ``jobs`` option (portfolio fan-out).
_POOLED_STAGES = frozenset({"sa", "sa-portfolio", "auto"})


def derive_request_seeds(master_seed: int, count: int) -> list[int]:
    """``count`` deterministic, pairwise-independent request seeds."""
    children = np.random.SeedSequence(master_seed).spawn(count)
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]


class Advisor:
    """Serve :class:`SolveRequest` objects through the solver registry.

    Parameters
    ----------
    registry:
        The strategy registry to resolve names against (default: the
        process-wide registry with all built-ins).
    linearization_capacity:
        LRU size of the shared MIP-skeleton cache; ``0`` disables
        skeleton reuse (each QP request builds from scratch).
    instance_cache_capacity:
        Number of distinct instances whose coefficient caches the
        advisor retains (LRU eviction beyond it), bounding memory for
        long-lived advisors that see many instances.
    coefficient_capacity:
        Per-instance bound on memoised coefficient *parameter points*
        (each :class:`~repro.costmodel.coefficients.CoefficientCache`
        gets this LRU capacity; ``None`` keeps them unbounded).  Set it
        for week-long deployments sweeping many parameter settings.
    calibration:
        An optional :class:`~repro.calibration.CalibrationTable`.  When
        set, every top-level :meth:`advise` records one observation
        (resolved strategy, execution backend, instance class, model
        size, wall time, objective quality) into it, and the ``"auto"``
        strategy consults it to pick strategy *and* budget
        (:meth:`~repro.calibration.CalibrationTable.recommend`).  Off by
        default — requests are never touched, so canonical request JSON
        and every cache key stay byte-stable — and with an empty table
        ``"auto"`` falls back bitwise-identically to the model-size
        cutoff.
    """

    #: Default number of per-instance coefficient caches retained.
    DEFAULT_INSTANCE_CAPACITY = 32

    def __init__(
        self,
        registry: SolverRegistry | None = None,
        *,
        linearization_capacity: int = DEFAULT_CACHE_CAPACITY,
        instance_cache_capacity: int = DEFAULT_INSTANCE_CAPACITY,
        coefficient_capacity: int | None = None,
        calibration: "CalibrationTable | None" = None,
    ):
        if instance_cache_capacity < 1:
            raise OptionsError(
                f"instance_cache_capacity must be >= 1, got "
                f"{instance_cache_capacity}"
            )
        self.registry = registry or default_registry()
        self.linearization_cache = LinearizationCache(
            capacity=linearization_capacity
        )
        self.instance_cache_capacity = instance_cache_capacity
        self.coefficient_capacity = coefficient_capacity
        # Keyed by instance identity; the instance reference is kept so
        # a garbage-collected id() can never alias a live entry.
        self._coefficient_caches: OrderedDict[
            int, tuple[ProblemInstance, CoefficientCache]
        ] = OrderedDict()
        # Counter totals of evicted caches, so cache_stats (and the
        # per-request deltas derived from it) never run backwards.
        self._evicted_hits = 0
        self._evicted_misses = 0
        self._evicted_evictions = 0
        self.requests_served = 0
        self.calibration = calibration
        # Depth of advise() re-entry (compression and "qp-heavy" issue
        # sub-requests through the same advisor): the calibration hook
        # records top-level serves only, so sub-instance solves never
        # pollute the table with observations no caller asked for.
        self._advise_depth = 0
        # Serialises concurrent use — see "Threading model" above.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # caches
    # ------------------------------------------------------------------
    def coefficient_cache(self, instance: ProblemInstance) -> CoefficientCache:
        """The advisor's (memoised) coefficient cache for ``instance``."""
        with self._lock:
            entry = self._coefficient_caches.get(id(instance))
            if entry is None or entry[0] is not instance:
                entry = (
                    instance,
                    CoefficientCache(
                        instance, capacity=self.coefficient_capacity
                    ),
                )
                self._coefficient_caches[id(instance)] = entry
                while (
                    len(self._coefficient_caches)
                    > self.instance_cache_capacity
                ):
                    _, (_, evicted) = self._coefficient_caches.popitem(
                        last=False
                    )
                    self._evicted_hits += evicted.hits
                    self._evicted_misses += evicted.misses
                    self._evicted_evictions += evicted.evictions
            else:
                self._coefficient_caches.move_to_end(id(instance))
            return entry[1]

    def coefficients_for(self, request: SolveRequest) -> CostCoefficients:
        """Coefficients for a request (shared across equal parameters).

        Requests carrying a :attr:`~repro.api.request.SolveRequest.
        current_layout` get the migration block attached per-request
        (a cheap ``dataclasses.replace`` over the cached arrays) — the
        shared cache itself only ever holds layout-free coefficients,
        so layout-carrying requests can never leak a move term into
        unrelated requests over the same instance and parameters.
        """
        coefficients = self.coefficient_cache(request.instance).coefficients(
            request.parameters
        )
        if request.current_layout is not None:
            coefficients = attach_migration(
                coefficients,
                request.current_layout,
                request.migration_cost,
                request.num_sites,
            )
        return coefficients

    def cache_stats(self) -> dict[str, int]:
        """Cumulative cache counters across every request served."""
        with self._lock:
            caches = [
                cache for _, cache in self._coefficient_caches.values()
            ]
            return {
                "coefficient_hits": self._evicted_hits
                + sum(cache.hits for cache in caches),
                "coefficient_misses": self._evicted_misses
                + sum(cache.misses for cache in caches),
                "coefficient_evictions": self._evicted_evictions
                + sum(cache.evictions for cache in caches),
                "linearization_hits": self.linearization_cache.hits,
                "linearization_misses": self.linearization_cache.misses,
                "linearization_evictions": self.linearization_cache.evictions,
            }

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def advise(
        self,
        request: SolveRequest,
        *,
        warm_start: PartitioningResult | None = None,
    ) -> SolveReport:
        """Serve one request and return its :class:`SolveReport`.

        ``warm_start`` optionally seeds the first stage with a known
        incumbent (stages of a chained strategy warm-start each other
        automatically; only strategies that understand warm starts — the
        QP — consume it).

        Requests with ``compression != "off"`` take the
        compress→solve→lift pipeline
        (:func:`~repro.api.strategies.solve_with_compression`): the
        strategy chain runs on the compressed view and the report holds
        the lifted partitioning with its objective re-evaluated on the
        original instance.

        Thread-safe: concurrent calls serialise on the advisor's
        internal lock (see the module's "Threading model" section).
        """
        with self._lock:
            self._advise_depth += 1
            try:
                report = self._advise_locked(request, warm_start=warm_start)
            finally:
                self._advise_depth -= 1
            if self._advise_depth == 0 and self.calibration is not None:
                from repro.calibration import record as record_observation

                record_observation(self.calibration, report)
            return report

    def _advise_locked(
        self,
        request: SolveRequest,
        *,
        warm_start: PartitioningResult | None = None,
    ) -> SolveReport:
        if request.compression != "off":
            from repro.api.strategies import solve_with_compression

            return solve_with_compression(self, request, warm_start=warm_start)
        started = time.perf_counter()
        before = self.cache_stats()
        stages = request.stages
        chained = len(stages) > 1
        if chained:
            unknown = set(request.options) - set(stages)
            if unknown:
                raise OptionsError(
                    f"chained strategy {request.strategy!r} takes per-stage "
                    f"option groups keyed by stage name; unknown keys "
                    f"{sorted(unknown)} (stages: {list(stages)})"
                )

        results: list[PartitioningResult] = []
        resolved: list[str] = []
        incumbent = warm_start
        deadline = None
        if chained and request.time_limit is not None:
            # One budget bounds the whole chain: each stage gets what is
            # left of it, not a fresh full allowance.
            deadline = started + request.time_limit
        for position, stage_name in enumerate(stages):
            strategy = self.registry.get(stage_name)
            if chained:
                stage_options: Any = request.options.get(stage_name, {})
                stage_time = request.time_limit
                if deadline is not None:
                    stage_time = max(0.0, deadline - time.perf_counter())
                    if stage_time <= 0.0 and results:
                        # Budget exhausted: keep the incumbent the
                        # earlier stages already produced instead of
                        # failing the whole request.
                        results[-1].metadata.setdefault(
                            "chain_stages_skipped", list(stages[position:])
                        )
                        break
                stage_request = request.with_(
                    strategy=stage_name,
                    options=stage_options,
                    time_limit=stage_time,
                )
            else:
                stage_request = request
            context = StrategyContext(
                coefficients=self.coefficients_for(request),
                linearization_cache=self.linearization_cache,
                warm_start=incumbent,
                advisor=self,
            )
            # Strategies that consume the incumbent (the QP family)
            # record "warm_start_objective" themselves; stages that
            # ignore warm starts must not claim one.
            result = strategy(stage_request, context)
            resolved.append(context.notes.get("auto_pick", stage_name))
            results.append(result)
            incumbent = result

        after = self.cache_stats()
        self.requests_served += 1
        return SolveReport(
            request=request,
            result=results[-1],
            strategy="->".join(resolved),
            wall_time=time.perf_counter() - started,
            cache_stats={key: after[key] - before[key] for key in after},
            stage_results=results[:-1],
        )

    def readvise(
        self,
        request: SolveRequest,
        trace: Any = None,
        *,
        keep_missing: bool = True,
    ) -> SolveReport:
        """Re-partition against an incumbent layout: solve, then verdict.

        The online entry point for a system that *already has* a layout
        deployed (``request.current_layout``; required).  Optionally
        re-estimates the instance's workload statistics from ``trace``
        first — a :class:`~repro.stats.streaming.DecayedTraceCollector`
        (its decayed snapshot), a
        :class:`~repro.stats.estimator.TraceCollector`, a mapping of
        query name to
        :class:`~repro.stats.estimator.QueryStatistics`, or a plain
        iterable of :class:`~repro.stats.estimator.QueryEvent` — then
        serves the request normally (the solver minimises the
        migration-augmented objective and SA warm-starts from the
        incumbent) and attaches a
        :class:`~repro.api.report.MigrationReport` comparing the
        re-solve against the deterministic stay-put solution.

        The stay-put solution is
        :func:`~repro.sa.annealer.warm_start_solution` on the same
        coefficients — exactly what SA's restart 0 replays — so for
        SA-family strategies the migrated total can never exceed
        staying put.  ``keep_missing`` is forwarded to the
        re-estimator: queries absent from the trace keep their old
        statistics when true, are dropped when false.
        """
        with self._lock:
            if request.current_layout is None:
                raise OptionsError(
                    "readvise needs request.current_layout: the stay-vs-"
                    "move verdict is measured against an incumbent layout"
                )
            if trace is not None:
                from repro.stats.estimator import reestimate_from_statistics

                statistics = self._trace_statistics(trace)
                traced = reestimate_from_statistics(
                    request.instance, statistics, keep_missing=keep_missing
                )
                request = request.with_(instance=traced)

            coefficients = self.coefficients_for(request)  # migration-attached
            block = coefficients.migration
            assert block is not None  # guaranteed by the layout guard above
            from repro.sa.annealer import warm_start_solution
            from repro.sa.subsolve import SubproblemSolver

            subsolver = SubproblemSolver(coefficients, request.num_sites)
            stay_x, stay_y, _ = warm_start_solution(
                subsolver, block.y0, disjoint=not request.allow_replication
            )
            evaluator = SolutionEvaluator(coefficients)
            stay_cost = evaluator.objective6(stay_x, stay_y)

            report = self._advise_locked(request)
            result = report.result
            total_cost = evaluator.objective6(result.x, result.y)
            move_cost = evaluator.migration_cost(result.y)
            base = self.coefficient_cache(request.instance).coefficients(
                request.parameters
            )
            solve_cost = SolutionEvaluator(base).objective6(
                result.x, result.y
            )
            moved = not np.array_equal(result.y > 0.5, stay_y > 0.5)
            report.migration = MigrationReport(
                stay_cost=stay_cost,
                solve_cost=solve_cost,
                move_cost=move_cost,
                total_cost=total_cost,
                recommendation=(
                    "migrate" if moved and total_cost < stay_cost else "stay"
                ),
                migration_cost=request.migration_cost,
            )
            return report

    @staticmethod
    def _trace_statistics(trace: Any) -> Mapping[str, Any]:
        """Normalise the ``trace`` argument of :meth:`readvise`."""
        from repro.stats.estimator import TraceCollector, estimate_statistics
        from repro.stats.streaming import DecayedTraceCollector

        if isinstance(trace, DecayedTraceCollector):
            return trace.statistics()
        if isinstance(trace, TraceCollector):
            return trace.aggregate()
        if isinstance(trace, Mapping):
            return trace
        return estimate_statistics(trace)

    def advise_many(
        self,
        requests: Iterable[SolveRequest],
        *,
        master_seed: int | None = None,
        jobs: int | None = None,
    ) -> list[SolveReport]:
        """Serve a batch of requests through the shared caches.

        ``master_seed`` fills the seed of every request that does not
        pin one, via deterministic per-request ``SeedSequence`` children
        — the batch reproduces exactly for a fixed master seed.
        ``jobs`` fans SA-family restart portfolios out over the process
        pool; results are identical for any value (the portfolio
        incumbent is completion-order independent), only wall-clock
        changes.
        """
        batch = list(requests)
        if master_seed is not None:
            seeds = derive_request_seeds(master_seed, len(batch))
            batch = [
                request if request.seed is not None
                else request.with_(seed=seed)
                for request, seed in zip(batch, seeds)
            ]
        if jobs is not None:
            batch = [self._with_jobs(request, jobs) for request in batch]
        return [self.advise(request) for request in batch]

    @staticmethod
    def _with_jobs(request: SolveRequest, jobs: int) -> SolveRequest:
        """Inject the pool size into every stage that can use it."""
        stages = request.stages
        if len(stages) == 1:
            if stages[0] in _POOLED_STAGES and "jobs" not in request.options:
                return request.with_options(jobs=jobs)
            return request
        options = dict(request.options)
        changed = False
        for stage in stages:
            if stage in _POOLED_STAGES:
                group = dict(options.get(stage, {}))
                if "jobs" not in group:
                    group["jobs"] = jobs
                    options[stage] = group
                    changed = True
        return request.with_(options=options) if changed else request


def advise(
    request: SolveRequest,
    *,
    warm_start: PartitioningResult | None = None,
    registry: SolverRegistry | None = None,
) -> SolveReport:
    """Serve one request through a fresh, throwaway :class:`Advisor`.

    Results are identical to ``Advisor().advise(request)``; use a
    long-lived :class:`Advisor` when serving several related requests so
    they share coefficient products and MIP skeletons.
    """
    return Advisor(registry).advise(request, warm_start=warm_start)


def advise_many(
    requests: Sequence[SolveRequest],
    *,
    master_seed: int | None = None,
    jobs: int | None = None,
    registry: SolverRegistry | None = None,
) -> list[SolveReport]:
    """Serve a batch through a fresh :class:`Advisor` (shared caches)."""
    return Advisor(registry).advise_many(
        requests, master_seed=master_seed, jobs=jobs
    )
