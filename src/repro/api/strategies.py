"""Built-in strategies: registry adapters over the existing solvers.

Each adapter normalises one solver family behind the uniform
``(request, context) -> PartitioningResult`` shape and is pinned by test
to return results bitwise identical to the solver's direct entry point
at the same seeds.  ``"auto"`` implements the paper's Section VI
scalability cutoff: requests whose linearised model stays small go to
the exact QP solver, everything larger goes to simulated annealing.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING

from repro.api.registry import SolverRegistry, StrategyContext
from repro.api.report import SolveReport
from repro.api.request import SolveRequest
from repro.costmodel.config import WriteAccounting
from repro.exceptions import OptionsError
from repro.partition.assignment import PartitioningResult, single_site_partitioning
from repro.qp.solver import PAPER_GAP, QpPartitioner
from repro.reduction.compress import (
    compress_instance,
    compress_result,
    lift_result,
)
from repro.sa.options import SaOptions
from repro.sa.solver import SaPartitioner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.advisor import Advisor

#: "auto" sends a request to the QP solver only while the linearised
#: model stays below this many variables; beyond it, solve times blow up
#: (the paper's Table 3 t/o rows) and SA is the sensible default.
AUTO_QP_VARIABLE_CUTOFF = 20_000

#: Default portfolio size for the "sa-portfolio" strategy.
DEFAULT_PORTFOLIO_RESTARTS = 4

#: The MIP backend spellings of ``QpPartitioner.solve`` (see
#: ``repro/solver/model.py``) — used by "auto" to disambiguate the
#: shared "backend" option key from the portfolio execution backends.
_QP_MIP_BACKENDS = frozenset({"auto", "scratch", "scipy"})

_QP_OPTION_KEYS = frozenset(
    {"gap", "backend", "latency", "symmetry_breaking", "time_limit"}
)
_SA_OPTION_KEYS = frozenset(
    field.name for field in dataclasses.fields(SaOptions)
)
_HILLCLIMB_OPTION_KEYS = frozenset({"restarts", "max_rounds"})


def _check_options(request: SolveRequest, allowed: frozenset[str], name: str) -> None:
    unknown = set(request.options) - allowed
    if unknown:
        raise OptionsError(
            f"strategy {name!r} got unknown options {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def _require_replication(request: SolveRequest, name: str) -> None:
    if not request.allow_replication:
        raise OptionsError(
            f"strategy {name!r} cannot produce disjoint partitionings; "
            f"use 'qp' or 'sa' with allow_replication=False"
        )


def qp_strategy(request: SolveRequest, context: StrategyContext) -> PartitioningResult:
    """The exact solver: linearised model (7) via a MIP backend."""
    _check_options(request, _QP_OPTION_KEYS, "qp")
    options = request.options
    partitioner = QpPartitioner(
        context.coefficients,
        request.num_sites,
        allow_replication=request.allow_replication,
        latency=bool(options.get("latency", False)),
        symmetry_breaking=bool(options.get("symmetry_breaking", True)),
        linearization_cache=context.linearization_cache,
    )
    result = partitioner.solve(
        # A stage-scoped options["time_limit"] overrides the request's
        # (chain-wide) budget — e.g. the CLI's implicit 60s MIP cap.
        time_limit=options.get("time_limit", request.time_limit),
        gap=float(options.get("gap", PAPER_GAP)),
        backend=options.get("backend", "auto"),
        warm_start=context.warm_start,
    )
    if context.warm_start is not None:
        result.metadata.setdefault(
            "warm_start_objective", context.warm_start.objective
        )
    return result


def _sa_options_from(request: SolveRequest, restarts_default: int) -> SaOptions:
    kwargs = dict(request.options)
    disjoint = not request.allow_replication
    if "disjoint" in kwargs and bool(kwargs["disjoint"]) != disjoint:
        raise OptionsError(
            f"options disjoint={kwargs['disjoint']!r} contradicts "
            f"allow_replication={request.allow_replication!r}; set one only"
        )
    kwargs["disjoint"] = disjoint
    if request.seed is not None and kwargs.get("seed") is None:
        kwargs["seed"] = request.seed
    kwargs.setdefault("restarts", restarts_default)
    if request.current_layout is not None and kwargs.get("warm_start") is None:
        # An incumbent layout warm-starts every restart (warm_start is a
        # per-run option, not a portfolio-level one, so best-of-N stays
        # <= the stay-put cost by construction).
        kwargs["warm_start"] = request.current_layout.to_dict()
    if (
        request.time_limit is not None
        and "time_limit" not in request.options
        and "portfolio_time_limit" not in request.options
    ):
        if request.time_limit > 0:
            # The request's budget bounds the whole solve; SaPartitioner
            # routes any portfolio_time_limit through the portfolio
            # deadline even for a single restart.
            kwargs["portfolio_time_limit"] = request.time_limit
        else:
            # A zero budget is legal on SaOptions.time_limit only (the
            # run exits straight through the collapsed-layout guard).
            kwargs["time_limit"] = request.time_limit
    return SaOptions(**kwargs)


def sa_strategy(request: SolveRequest, context: StrategyContext) -> PartitioningResult:
    """Simulated annealing (Algorithm 1); options mirror ``SaOptions``."""
    _check_options(request, _SA_OPTION_KEYS, "sa")
    options = _sa_options_from(request, restarts_default=1)
    return SaPartitioner(
        context.coefficients, request.num_sites, options=options
    ).solve()


def sa_portfolio_strategy(
    request: SolveRequest, context: StrategyContext
) -> PartitioningResult:
    """Best-of-N multi-start annealing (``restarts`` defaults to 4; set
    ``restarts``/``jobs`` in the options, plus ``backend`` to pick an
    execution backend from :mod:`repro.sa.backends` — "serial",
    "process", "thread", "queue", "socket" (the fault-tolerant
    multi-box transport; tune it with ``workers``, ``max_retries`` and
    the heartbeat/backoff options) — and ``prune`` to early-skip
    restarts the shared incumbent proves unable to win; results are
    identical whatever the backend, fault history or prune setting)."""
    _check_options(request, _SA_OPTION_KEYS, "sa-portfolio")
    options = _sa_options_from(request, restarts_default=DEFAULT_PORTFOLIO_RESTARTS)
    return SaPartitioner(
        context.coefficients, request.num_sites, options=options
    ).solve()


def greedy_strategy(request: SolveRequest, context: StrategyContext) -> PartitioningResult:
    """First-fit-decreasing bin packing of co-access fragments."""
    from repro.baselines.greedy import greedy_binpack_partitioning

    _check_options(request, frozenset(), "greedy")
    _require_replication(request, "greedy")
    return greedy_binpack_partitioning(context.coefficients, request.num_sites)


def affinity_strategy(request: SolveRequest, context: StrategyContext) -> PartitioningResult:
    """Bond-energy attribute clustering (Navathe-style)."""
    from repro.baselines.affinity import affinity_partitioning

    _check_options(request, frozenset(), "affinity")
    _require_replication(request, "affinity")
    return affinity_partitioning(context.coefficients, request.num_sites)


def hillclimb_strategy(request: SolveRequest, context: StrategyContext) -> PartitioningResult:
    """Alternating greedy descent from random starts."""
    from repro.baselines.hillclimb import hill_climb_partitioning

    _check_options(request, _HILLCLIMB_OPTION_KEYS, "hillclimb")
    _require_replication(request, "hillclimb")
    options = request.options
    return hill_climb_partitioning(
        context.coefficients,
        request.num_sites,
        seed=request.seed,
        restarts=int(options.get("restarts", 4)),
        max_rounds=int(options.get("max_rounds", 25)),
    )


def round_robin_strategy(
    request: SolveRequest, context: StrategyContext
) -> PartitioningResult:
    """Naive round-robin transaction spread with greedy attributes."""
    from repro.baselines.round_robin import round_robin_partitioning

    _check_options(request, frozenset(), "round-robin")
    _require_replication(request, "round-robin")
    return round_robin_partitioning(context.coefficients, request.num_sites)


_QP_HEAVY_OPTION_KEYS = frozenset(
    {"heavy_fraction", "final_qp", "gap", "backend", "time_limit"}
)


def qp_heavy_strategy(
    request: SolveRequest, context: StrategyContext
) -> PartitioningResult:
    """Section 4's 20/80 heavy-first refinement (QP on the heavy core,
    greedy lift, optional warm-started full QP via ``final_qp``)."""
    from repro.reduction.heavy import IterativeRefinement

    _check_options(request, _QP_HEAVY_OPTION_KEYS, "qp-heavy")
    _require_replication(request, "qp-heavy")
    options = request.options
    refinement = IterativeRefinement(
        request.instance,
        request.num_sites,
        parameters=context.coefficients.parameters,
        heavy_fraction=float(options.get("heavy_fraction", 0.2)),
        advisor=context.advisor,
    )
    return refinement.solve(
        time_limit=options.get("time_limit", request.time_limit),
        gap=float(options.get("gap", 1e-3)),
        backend=options.get("backend", "auto"),
        final_qp=bool(options.get("final_qp", False)),
    )


def single_site_strategy(
    request: SolveRequest, context: StrategyContext
) -> PartitioningResult:
    """The paper's trivial ``|S| = 1`` baseline."""
    _check_options(request, frozenset(), "single-site")
    if request.num_sites != 1:
        raise OptionsError(
            f"strategy 'single-site' requires num_sites=1, got "
            f"{request.num_sites}"
        )
    return single_site_partitioning(context.coefficients)


def auto_strategy(request: SolveRequest, context: StrategyContext) -> PartitioningResult:
    """QP when the linearised model is small, SA otherwise.

    The cutoff compares :meth:`QpPartitioner.estimate_model_size` (no
    model is built) against ``options["auto_cutoff"]`` (default
    ``AUTO_QP_VARIABLE_CUTOFF`` variables) — the paper's Section VI
    observation that the exact solver stops being practical beyond a
    model-size threshold while SA keeps scaling.

    When the serving advisor carries a
    :class:`~repro.calibration.CalibrationTable` with evidence for this
    instance-size class (``Advisor(calibration=...)``), the measured
    recommendation overrides the cutoff: the pick — and a budget, QP
    time limits or SA restart counts — comes from
    :meth:`~repro.calibration.CalibrationTable.recommend`, and the
    result metadata says so (``auto_source="calibration"``).  An empty
    or absent table recommends nothing, so the cutoff path runs
    unchanged — bitwise-identical placements per seed.
    """
    if request.num_sites == 1:
        context.notes["auto_pick"] = "single-site"
        return single_site_strategy(request.with_(options={}), context)
    _check_options(
        request,
        _QP_OPTION_KEYS | _SA_OPTION_KEYS | frozenset({"auto_cutoff"}),
        "auto",
    )
    options = dict(request.options)
    cutoff = int(options.pop("auto_cutoff", AUTO_QP_VARIABLE_CUTOFF))
    parameters = context.coefficients.parameters
    calibrated = None
    if parameters.write_accounting is WriteAccounting.RELEVANT_ATTRIBUTES:
        # The linearised QP cannot express this accounting (Section
        # 2.1); only SA can serve the request, whatever the model size
        # or calibration evidence.
        size = {"variables": None}
        picked, allowed = "sa", _SA_OPTION_KEYS
    else:
        size = QpPartitioner.estimate_model_size(
            context.coefficients,
            request.num_sites,
            allow_replication=request.allow_replication,
            latency=bool(options.get("latency", False)),
            symmetry_breaking=bool(options.get("symmetry_breaking", True)),
        )
        calibration = getattr(context.advisor, "calibration", None)
        if calibration is not None:
            from repro.calibration import instance_class

            calibrated = calibration.recommend(
                instance_class(
                    request.instance.num_attributes,
                    request.instance.num_transactions,
                ),
                num_sites=request.num_sites,
            )
        if calibrated is not None:
            picked = calibrated.strategy
            allowed = _QP_OPTION_KEYS if picked == "qp" else _SA_OPTION_KEYS
        elif size["variables"] <= cutoff:
            picked, allowed = "qp", _QP_OPTION_KEYS
        else:
            picked, allowed = "sa", _SA_OPTION_KEYS
    context.notes["auto_pick"] = picked
    context.notes["auto_cutoff"] = cutoff
    context.notes["auto_source"] = (
        "calibration" if calibrated is not None else "cutoff"
    )
    narrowed_options = {k: v for k, v in options.items() if k in allowed}
    if "backend" in narrowed_options:
        # "backend" names two different things: the MIP backend for
        # "qp" ("auto"/"scratch"/"scipy") and the portfolio execution
        # backend for "sa" ("serial"/"process"/...).  Route the key by
        # its value and drop it when it belongs to the road not taken —
        # e.g. --backend queue with an auto->qp pick must not reach the
        # MIP solver, and a qp-meant "scipy" must not reach SaOptions.
        # A value belonging to *neither* registry is a misconfiguration:
        # raise here (like every non-auto path would) instead of
        # silently dropping it.
        from repro.sa.backends import backend_names

        value = narrowed_options["backend"]
        if picked == "sa":
            if value in _QP_MIP_BACKENDS:
                del narrowed_options["backend"]
            elif value not in backend_names():
                raise OptionsError(
                    f"unknown backend {value!r}: neither a portfolio "
                    f"execution backend ({', '.join(backend_names())}) "
                    f"nor a MIP backend ({', '.join(sorted(_QP_MIP_BACKENDS))})"
                )
        elif value in backend_names():
            del narrowed_options["backend"]
    if calibrated is not None:
        # The measured budget fills gaps only — explicit options and
        # request-level time limits always win over calibration.
        if (
            calibrated.time_limit is not None
            and "time_limit" not in narrowed_options
            and request.time_limit is None
        ):
            narrowed_options["time_limit"] = calibrated.time_limit
        if (
            calibrated.restarts is not None
            and "restarts" not in narrowed_options
        ):
            narrowed_options["restarts"] = calibrated.restarts
    narrowed = request.with_(strategy=picked, options=narrowed_options)
    strategy = qp_strategy if picked == "qp" else sa_strategy
    result = strategy(narrowed, context)
    result.metadata.setdefault("auto_pick", picked)
    result.metadata.setdefault("auto_source", context.notes["auto_source"])
    if calibrated is not None:
        result.metadata.setdefault(
            "auto_calibration_observations", calibrated.observations
        )
    if size["variables"] is not None:
        context.notes["auto_model_variables"] = size["variables"]
        result.metadata.setdefault("auto_model_variables", size["variables"])
    return result


def register_builtin_strategies(registry: SolverRegistry) -> None:
    """Register every built-in strategy on ``registry``."""
    registry.register("qp", qp_strategy)
    registry.register("sa", sa_strategy)
    registry.register("sa-portfolio", sa_portfolio_strategy)
    registry.register("greedy", greedy_strategy)
    registry.register("affinity", affinity_strategy)
    registry.register("hillclimb", hillclimb_strategy)
    registry.register("round-robin", round_robin_strategy)
    registry.register("single-site", single_site_strategy)
    registry.register("qp-heavy", qp_heavy_strategy)
    registry.register("auto", auto_strategy)


# ----------------------------------------------------------------------
# Workload-compression pipeline stage
# ----------------------------------------------------------------------
#: Strategies whose output depends on raw transaction *positions*, not
#: signatures — "round-robin" places transaction ``t`` on site
#: ``t mod |S|``, so changing the transaction count changes the answer.
#: The compression pipeline serves these on the original instance to
#: keep its objective-identity contract.
_POSITION_BASED_STAGES = frozenset({"round-robin"})


def solve_with_compression(
    advisor: "Advisor",
    request: SolveRequest,
    *,
    warm_start: PartitioningResult | None = None,
) -> "SolveReport":
    """Serve a request with ``compression != "off"``: compress → solve →
    lift → re-evaluate.

    The workload is compressed once (reusing the advisor's cached
    coefficients for the error bounds), the strategy chain runs
    unchanged on the compressed view, and the winning placement is
    lifted back and re-evaluated on the *original* instance — the
    report's objective is always a true original-instance cost.  Works
    for every registry strategy and chain, because the compressed view
    is just another :class:`~repro.model.instance.ProblemInstance`.

    When nothing merges (no duplicate signatures) the original request
    is served directly, so enabling compression is safe by default; the
    same applies to position-based strategies (round-robin), whose
    placements are defined over raw transaction indices and therefore
    never see a compressed view.
    """
    if any(stage in _POSITION_BASED_STAGES for stage in request.stages):
        report = advisor.advise(
            request.with_(compression="off", compression_tolerance=0.0),
            warm_start=warm_start,
        )
        report.result.metadata.setdefault(
            "compression_skipped", "position-based strategy"
        )
        report.result.metadata.setdefault("compression_ratio", 1.0)
        return SolveReport(
            request=request,
            result=report.result,
            strategy=report.strategy,
            wall_time=report.wall_time,
            cache_stats=report.cache_stats,
            stage_results=report.stage_results,
        )
    started = time.perf_counter()
    before = advisor.cache_stats()
    original_coefficients = advisor.coefficients_for(request)
    compressed = compress_instance(
        request.instance,
        tier=request.compression,
        tolerance=request.compression_tolerance,
        coefficients=original_coefficients,
    )
    if compressed.is_identity:
        inner_request = request.with_(
            compression="off", compression_tolerance=0.0
        )
        inner_warm = warm_start
    else:
        inner_request = request.with_(
            instance=compressed.compressed,
            compression="off",
            compression_tolerance=0.0,
        )
        inner_warm = None
        if warm_start is not None:
            inner_warm = compress_result(
                compressed,
                warm_start,
                advisor.coefficient_cache(
                    compressed.compressed
                ).coefficients(request.parameters),
            )
    report = advisor.advise(inner_request, warm_start=inner_warm)
    if compressed.is_identity:
        result = report.result
        result.metadata.setdefault("compression_tier", compressed.tier)
        result.metadata.setdefault("compression_ratio", 1.0)
        result.metadata.setdefault("objective_error_bound", 0.0)
    else:
        result = lift_result(
            compressed, report.result, coefficients=original_coefficients
        )
    after = advisor.cache_stats()
    return SolveReport(
        request=request,
        result=result,
        strategy=report.strategy,
        wall_time=time.perf_counter() - started,
        cache_stats={key: after[key] - before[key] for key in after},
        stage_results=report.stage_results,
    )
