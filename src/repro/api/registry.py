"""Strategy registry: one lookup table from names to partitioners.

The paper treats the QP/MIP solver and simulated annealing as
interchangeable solvers of the same problem; the registry makes that
interchangeability concrete.  Every strategy — the built-ins and any
user-registered one — is a :class:`Partitioner`: a callable taking a
:class:`~repro.api.SolveRequest` plus a :class:`StrategyContext` and
returning a :class:`~repro.partition.PartitioningResult`.

>>> from repro.api import SolverRegistry
>>> registry = SolverRegistry()
>>> @registry.register("my-strategy")
... def my_strategy(request, context):
...     ...  # build and return a PartitioningResult
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.costmodel.coefficients import CostCoefficients
from repro.exceptions import SolverError, UnknownStrategyError
from repro.partition.assignment import PartitioningResult
from repro.qp.linearize import LinearizationCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.request import SolveRequest


@dataclass
class StrategyContext:
    """Shared serving state a strategy may use.

    ``coefficients`` are prebuilt by the advisor's per-instance
    :class:`~repro.costmodel.coefficients.CoefficientCache` (bitwise
    identical to an uncached build).  ``linearization_cache`` lets
    QP-based strategies re-price cached MIP skeletons.  ``warm_start``
    carries the previous stage's incumbent in a chained strategy (or a
    caller-provided one); strategies that cannot use it simply ignore
    it.
    """

    coefficients: CostCoefficients
    linearization_cache: LinearizationCache | None = None
    warm_start: PartitioningResult | None = None
    #: The serving advisor (when one is serving), for strategies that
    #: issue sub-requests — e.g. "qp-heavy" solves a restricted
    #: sub-instance through the same caches.
    advisor: object | None = None
    #: Resolution trace, e.g. the "auto" strategy records its pick here.
    notes: dict = field(default_factory=dict)


@runtime_checkable
class Partitioner(Protocol):
    """What a registered strategy must look like."""

    def __call__(
        self, request: "SolveRequest", context: StrategyContext
    ) -> PartitioningResult:
        ...  # pragma: no cover - protocol


class SolverRegistry:
    """Register/lookup partitioning strategies by name."""

    def __init__(self) -> None:
        self._strategies: dict[str, Partitioner] = {}

    def register(
        self,
        name: str,
        strategy: Partitioner | None = None,
        *,
        replace: bool = False,
    ) -> Callable[[Partitioner], Partitioner] | Partitioner:
        """Register ``strategy`` under ``name`` (usable as a decorator).

        Raises :class:`~repro.exceptions.SolverError` when ``name`` is
        already taken, unless ``replace=True``.
        """
        if not isinstance(name, str) or not name.strip():
            raise SolverError(f"strategy name must be a non-empty string, "
                              f"got {name!r}")

        def _register(callable_strategy: Partitioner) -> Partitioner:
            if not callable(callable_strategy):
                raise SolverError(
                    f"strategy {name!r} must be callable, got "
                    f"{type(callable_strategy).__name__}"
                )
            if not replace and name in self._strategies:
                raise SolverError(
                    f"strategy {name!r} is already registered; pass "
                    f"replace=True to override it"
                )
            self._strategies[name] = callable_strategy
            return callable_strategy

        if strategy is None:
            return _register
        return _register(strategy)

    def unregister(self, name: str) -> None:
        if name not in self._strategies:
            raise UnknownStrategyError(
                f"cannot unregister unknown strategy {name!r}"
            )
        del self._strategies[name]

    def get(self, name: str) -> Partitioner:
        try:
            return self._strategies[name]
        except KeyError:
            known = ", ".join(sorted(self._strategies))
            raise UnknownStrategyError(
                f"unknown strategy {name!r}; registered: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._strategies))

    def __contains__(self, name: str) -> bool:
        return name in self._strategies

    def __len__(self) -> int:
        return len(self._strategies)

    def copy(self) -> "SolverRegistry":
        """An independent registry with the same strategies (handy for
        registering experiment-local strategies without touching the
        global default)."""
        duplicate = SolverRegistry()
        duplicate._strategies = dict(self._strategies)
        return duplicate


_default_registry: SolverRegistry | None = None


def default_registry() -> SolverRegistry:
    """The process-wide registry, with the built-ins pre-registered."""
    global _default_registry
    if _default_registry is None:
        from repro.api.strategies import register_builtin_strategies

        _default_registry = SolverRegistry()
        register_builtin_strategies(_default_registry)
    return _default_registry


def register_solver(
    name: str,
    strategy: Partitioner | None = None,
    *,
    replace: bool = False,
):
    """Register a strategy in the default registry (decorator-friendly)."""
    return default_registry().register(name, strategy, replace=replace)
