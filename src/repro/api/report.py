"""The uniform report returned for every :class:`~repro.api.SolveRequest`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.api.request import SolveRequest
from repro.partition.assignment import PartitioningResult


@dataclass(frozen=True)
class MigrationReport:
    """Stay-vs-move verdict of a :meth:`~repro.api.advisor.Advisor.readvise`.

    All costs are blended objective (6) values on the (possibly
    re-estimated) instance.  ``stay_cost`` prices the deterministic
    stay-put solution (the incumbent repaired to feasibility, its
    transactions placed greedily); ``solve_cost`` is the re-solve's
    objective *without* the move term, ``move_cost`` the one-time move
    bytes its layout incurs, and ``total_cost`` the migration-augmented
    objective the solver actually minimised
    (``solve_cost + lambda * move_cost``).  ``recommendation`` is
    ``"migrate"`` iff the re-solve's total undercuts staying put
    strictly and the layouts actually differ, else ``"stay"``.
    """

    stay_cost: float
    solve_cost: float
    move_cost: float
    total_cost: float
    recommendation: str
    migration_cost: float  # the request's per-byte knob, echoed back

    @property
    def net_benefit(self) -> float:
        """``stay_cost - total_cost``: what migrating saves (can be < 0)."""
        return self.stay_cost - self.total_cost


@dataclass
class SolveReport:
    """A solved request: the partitioning plus serving metadata.

    Attributes
    ----------
    request:
        The request that produced this report.
    result:
        The underlying :class:`~repro.partition.PartitioningResult`
        (bitwise identical to what the strategy's direct entry point
        would have returned for the same inputs and seeds).
    strategy:
        The resolved strategy chain actually executed — e.g. ``"qp"``
        when the request asked for ``"auto"`` and the model-size cutoff
        picked the exact solver.
    wall_time:
        Seconds the advisor spent serving the request end to end
        (all chained stages included).
    cache_stats:
        Advisor cache activity attributable to this request:
        ``coefficient_hits`` / ``coefficient_misses`` /
        ``coefficient_evictions`` (shared indicator/weight products)
        and ``linearization_hits`` / ``linearization_misses`` /
        ``linearization_evictions`` (re-priced MIP skeletons).
    stage_results:
        Results of earlier stages of a chained strategy (empty when the
        chain has one stage); ``result`` is always the final stage's.
    migration:
        The stay-vs-move :class:`MigrationReport` when the report came
        from :meth:`~repro.api.advisor.Advisor.readvise`; ``None`` for
        plain advises.
    """

    request: SolveRequest
    result: PartitioningResult
    strategy: str
    wall_time: float
    cache_stats: dict[str, int] = field(default_factory=dict)
    stage_results: list[PartitioningResult] = field(default_factory=list)
    migration: "MigrationReport | None" = None

    @property
    def requested_strategy(self) -> str:
        return self.request.strategy

    @property
    def objective(self) -> float:
        return self.result.objective

    @property
    def x(self) -> np.ndarray:
        return self.result.x

    @property
    def y(self) -> np.ndarray:
        return self.result.y

    @property
    def proven_optimal(self) -> bool:
        return self.result.proven_optimal

    @property
    def metadata(self) -> dict[str, Any]:
        return self.result.metadata

    @property
    def degraded_from(self) -> str | None:
        """The strategy the request *asked* for, when the advisor
        service's load-shedding policy served a cheaper one instead
        (``None`` for an undegraded solve).  A degraded report is still
        a fully valid answer — ``strategy`` names what actually ran and
        ``result`` is that strategy's exact output — the shed only
        shows up as this provenance marker.
        """
        value = self.result.metadata.get("degraded_from")
        return None if value is None else str(value)

    @property
    def resilience(self) -> dict[str, int]:
        """Fault/skip telemetry of the solve's restart portfolio.

        ``pruned_restarts`` (skipped by the shared-incumbent proof),
        ``retried_restarts`` (distinct restarts that needed a retry),
        ``requeue_count`` (total failed/lost attempts re-dispatched) and
        ``worker_failures`` (faulted runs, dead connections, stalled
        heartbeats).  All zero for single-run strategies and for
        backends without fault tolerance (serial/process).
        """
        metadata = self.result.metadata
        return {
            key: int(metadata.get(key, 0))
            for key in (
                "pruned_restarts",
                "retried_restarts",
                "requeue_count",
                "worker_failures",
            )
        }

    def __repr__(self) -> str:
        return (
            f"SolveReport(strategy={self.strategy!r}, "
            f"objective={self.objective:.6g}, "
            f"sites={self.result.num_sites}, "
            f"wall_time={self.wall_time:.3f}s)"
        )
