"""Unified advisor API: one ``advise()`` entry point for every solver.

The paper frames the exact QP/MIP solver and simulated annealing as
interchangeable solvers of one partitioning problem; this package makes
that interchangeability an API:

* :class:`SolveRequest` — a frozen, JSON-round-trippable description of
  one partitioning request (instance, sites, cost parameters,
  replication mode, strategy + options, seed, time budget),
* :class:`SolverRegistry` / :func:`register_solver` — strategies by name
  (``"qp"``, ``"sa"``, ``"sa-portfolio"``, ``"greedy"``, ``"affinity"``,
  ``"hillclimb"``, ``"round-robin"``, ``"single-site"``, ``"auto"``,
  plus user-registered ones),
* :func:`advise` / :class:`Advisor` — serve one request, or batches that
  share coefficient products and MIP skeletons across requests.

>>> from repro.api import SolveRequest, advise
>>> from repro.instances import tpcc_instance
>>> report = advise(SolveRequest(tpcc_instance(), num_sites=2,
...                              strategy="sa", seed=0))  # doctest: +SKIP
>>> report.objective, report.strategy  # doctest: +SKIP
"""

from repro.api.advisor import Advisor, advise, advise_many, derive_request_seeds
from repro.api.registry import (
    Partitioner,
    SolverRegistry,
    StrategyContext,
    default_registry,
    register_solver,
)
from repro.api.report import SolveReport
from repro.api.request import SolveRequest
from repro.api.strategies import AUTO_QP_VARIABLE_CUTOFF

__all__ = [
    "Advisor",
    "advise",
    "advise_many",
    "derive_request_seeds",
    "Partitioner",
    "SolverRegistry",
    "StrategyContext",
    "default_registry",
    "register_solver",
    "SolveReport",
    "SolveRequest",
    "AUTO_QP_VARIABLE_CUTOFF",
]
