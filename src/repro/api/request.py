"""The uniform partitioning request served by :func:`repro.api.advise`.

A :class:`SolveRequest` captures everything a solve needs — instance,
number of sites, cost parameters, replication mode, strategy and its
options, seed and time budget — as one frozen value with an exact JSON
round-trip (:meth:`SolveRequest.to_json` / :meth:`SolveRequest.from_json`),
so requests can be queued, shipped to a service and replayed.  The
portfolio's task envelopes (:mod:`repro.sa.backends.queue`) embed this
exact document, which is what makes a restart shipped to a remote
``repro.sa.worker`` over the socket transport replay byte-identically:
retries, duplicate deliveries and requeues after worker crashes all
re-encode to the same request.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Any, Mapping

from repro.costmodel.config import (
    DEFAULT_LAMBDA,
    DEFAULT_NETWORK_PENALTY,
    CostParameters,
    WriteAccounting,
)
from repro.exceptions import OptionsError
from repro.model.compressed import COMPRESSION_TIERS
from repro.model.instance import ProblemInstance
from repro.model.serialize import instance_from_dict, instance_to_dict
from repro.partition.current_layout import CurrentLayout

#: Version stamp of the request JSON document.
REQUEST_FORMAT_VERSION = 1

#: Separator for chained strategies ("sa-portfolio->qp" runs the
#: portfolio first and warm-starts the QP from its incumbent).
CHAIN_SEPARATOR = "->"

#: Recognised values of :attr:`SolveRequest.compression` — ``"off"``
#: plus the tiers of :mod:`repro.reduction.compress`.
COMPRESSION_MODES = ("off", *COMPRESSION_TIERS)


@dataclass(frozen=True)
class SolveRequest:
    """One partitioning request, strategy-agnostic.

    Parameters
    ----------
    instance:
        The schema + workload to partition.
    num_sites:
        Number of sites ``|S| >= 1``.
    parameters:
        Cost-model parameters (default: the paper's ``p=8``, cost-dominant
        blending).
    allow_replication:
        ``False`` requests a disjoint partitioning (Table 5's variant);
        strategies map this to their own spelling (QP's ``==1`` placement
        row, SA's ``disjoint`` option).
    strategy:
        A registry name (``"qp"``, ``"sa"``, ``"sa-portfolio"``,
        ``"greedy"``, ``"affinity"``, ``"hillclimb"``, ``"round-robin"``,
        ``"auto"``, or a user-registered name), or a ``"->"`` chain such
        as ``"sa-portfolio->qp"`` where each stage warm-starts the next.
    options:
        Per-strategy options (JSON-compatible values only). For ``"sa"``
        / ``"sa-portfolio"`` these mirror
        :class:`~repro.sa.options.SaOptions` fields (including the
        portfolio's execution ``backend`` and incumbent ``prune``
        knobs); for ``"qp"`` they are ``gap``, ``backend``,
        ``latency``, ``symmetry_breaking``; ``"auto"`` additionally
        honours ``auto_cutoff``.
    seed:
        Master seed; fills the strategy's own seed option when that is
        not pinned in ``options``.
    time_limit:
        Wall-clock budget in seconds (QP solve limit, SA portfolio
        budget).  For a chained strategy one budget spans all stages:
        each stage receives only what is left of it.
    compression:
        Workload compression applied before solving: ``"off"`` (the
        default), ``"lossless"`` (merge bit-identical transaction
        signatures; the returned objective is provably unchanged under
        pure cost minimisation) or ``"lossy"`` (also merge
        near-duplicates within ``compression_tolerance``).  The solve
        runs on the compressed view; the report's partitioning and
        objective are lifted back and re-evaluated on the original
        instance.
    compression_tolerance:
        Lossy-tier budget, relative to the instance's single-site cost
        (ignored unless ``compression == "lossy"``).
    current_layout:
        The incumbent :class:`~repro.partition.current_layout.CurrentLayout`
        already deployed (or its plain-dict form), or ``None`` for the
        paper's from-scratch problem.  With a layout set, the objective
        gains the one-time ``migration_cost``-weighted move term for
        every replica the new solution creates that the incumbent lacks,
        and SA strategies warm-start from the incumbent.  The layout's
        attributes must match the instance; it may span *fewer* sites
        than ``num_sites`` (the cluster grew), never more.
    migration_cost:
        Per-byte weight of moving attribute data to a new replica
        (``>= 0``; requires ``current_layout``).  ``0`` makes migration
        free: the layout then only seeds the SA warm start.
    """

    instance: ProblemInstance
    num_sites: int
    parameters: CostParameters = field(default_factory=CostParameters)
    allow_replication: bool = True
    strategy: str = "auto"
    options: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None
    time_limit: float | None = None
    compression: str = "off"
    compression_tolerance: float = 0.0
    current_layout: CurrentLayout | None = None
    migration_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.num_sites < 1:
            raise OptionsError(f"need at least one site, got {self.num_sites}")
        if self.compression not in COMPRESSION_MODES:
            raise OptionsError(
                f"unknown compression mode {self.compression!r}; "
                f"known: {', '.join(COMPRESSION_MODES)}"
            )
        if self.compression_tolerance < 0:
            raise OptionsError(
                f"compression_tolerance must be >= 0, got "
                f"{self.compression_tolerance}"
            )
        if not isinstance(self.strategy, str) or not self.strategy.strip():
            raise OptionsError(f"strategy must be a non-empty string, got "
                               f"{self.strategy!r}")
        for stage in self.stages:
            if not stage:
                raise OptionsError(
                    f"empty stage in chained strategy {self.strategy!r}"
                )
        if self.time_limit is not None and self.time_limit < 0:
            raise OptionsError(
                f"time_limit must be >= 0 seconds, got {self.time_limit}"
            )
        if self.migration_cost < 0:
            raise OptionsError(
                f"migration_cost must be >= 0, got {self.migration_cost}"
            )
        if self.current_layout is None:
            if self.migration_cost != 0.0:
                raise OptionsError(
                    "migration_cost without current_layout is meaningless: "
                    "set the incumbent layout the cost is measured against"
                )
        else:
            layout = self.current_layout
            if isinstance(layout, Mapping):
                layout = CurrentLayout.from_dict(layout)
                object.__setattr__(self, "current_layout", layout)
            elif not isinstance(layout, CurrentLayout):
                raise OptionsError(
                    f"current_layout must be a CurrentLayout (or its dict "
                    f"form) or None, got {type(layout).__name__}"
                )
            expected = {a.qualified_name for a in self.instance.attributes}
            if expected != set(layout.placements):
                missing = sorted(expected - set(layout.placements))[:3]
                extra = sorted(set(layout.placements) - expected)[:3]
                raise OptionsError(
                    f"current_layout attributes do not match the instance "
                    f"(missing e.g. {missing}, unknown e.g. {extra})"
                )
            if layout.num_sites > self.num_sites:
                raise OptionsError(
                    f"current_layout spans {layout.num_sites} sites but "
                    f"the request asks for {self.num_sites}"
                )
        # Freeze the options mapping so the request is a true value.
        object.__setattr__(self, "options", MappingProxyType(dict(self.options)))

    @property
    def stages(self) -> tuple[str, ...]:
        """The strategy chain, outermost first (length 1 when unchained)."""
        return tuple(part.strip() for part in self.strategy.split(CHAIN_SEPARATOR))

    def with_(self, **changes: Any) -> "SolveRequest":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def with_options(self, **extra: Any) -> "SolveRequest":
        """A copy with ``extra`` merged into :attr:`options`."""
        merged = dict(self.options)
        merged.update(extra)
        return replace(self, options=merged)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary (exact inverse of
        :meth:`from_dict`).

        The layout fields are emitted only when set: a layout-free
        request serialises exactly as it did before they existed, so
        canonical JSON (and with it the service's coalescing/cache
        keys and the queue envelopes) stays byte-stable for legacy
        payloads.
        """
        payload = {
            "format_version": REQUEST_FORMAT_VERSION,
            "instance": instance_to_dict(self.instance),
            "num_sites": self.num_sites,
            "parameters": {
                "network_penalty": self.parameters.network_penalty,
                "load_balance_lambda": self.parameters.load_balance_lambda,
                "write_accounting": self.parameters.write_accounting.value,
                "latency_penalty": self.parameters.latency_penalty,
            },
            "allow_replication": self.allow_replication,
            "strategy": self.strategy,
            "options": dict(self.options),
            "seed": self.seed,
            "time_limit": self.time_limit,
            "compression": self.compression,
            "compression_tolerance": self.compression_tolerance,
        }
        if self.current_layout is not None:
            payload["current_layout"] = self.current_layout.to_dict()
            payload["migration_cost"] = self.migration_cost
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolveRequest":
        version = payload.get("format_version", REQUEST_FORMAT_VERSION)
        if version != REQUEST_FORMAT_VERSION:
            raise OptionsError(
                f"unsupported request format_version {version!r} "
                f"(this build reads version {REQUEST_FORMAT_VERSION})"
            )
        parameters = payload.get("parameters") or {}
        return cls(
            instance=instance_from_dict(payload["instance"]),
            num_sites=int(payload["num_sites"]),
            parameters=CostParameters(
                network_penalty=parameters.get(
                    "network_penalty", DEFAULT_NETWORK_PENALTY
                ),
                load_balance_lambda=parameters.get(
                    "load_balance_lambda", DEFAULT_LAMBDA
                ),
                write_accounting=WriteAccounting(
                    parameters.get("write_accounting", "all")
                ),
                latency_penalty=parameters.get("latency_penalty", 0.0),
            ),
            allow_replication=bool(payload.get("allow_replication", True)),
            strategy=payload.get("strategy", "auto"),
            options=dict(payload.get("options") or {}),
            seed=payload.get("seed"),
            time_limit=payload.get("time_limit"),
            compression=payload.get("compression", "off"),
            compression_tolerance=float(
                payload.get("compression_tolerance", 0.0)
            ),
            current_layout=(
                None
                if payload.get("current_layout") is None
                else CurrentLayout.from_dict(payload["current_layout"])
            ),
            migration_cost=float(payload.get("migration_cost", 0.0)),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        """Serialise to a JSON string (options must be JSON values)."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SolveRequest":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Canonical form (the service's coalescing / result-cache key)
    # ------------------------------------------------------------------
    def canonical_json(self) -> str:
        """The canonical JSON spelling of this request.

        Sorted keys and compact separators make equal requests equal
        *strings* regardless of construction order — two requests with
        the same canonical JSON describe the same solve bit for bit
        (same instance, parameters, strategy, options, seed and
        budget).  This is what the advisor service coalesces and caches
        on.  Options must hold JSON-compatible values (already required
        by :meth:`to_json`).
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def canonical_key(self) -> str:
        """A compact digest of :meth:`canonical_json` (hex SHA-256).

        Collision-safe for use as a dictionary key: requests over large
        instances serialise to megabytes, and the service keeps one key
        per in-flight and per cached solve.
        """
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()
