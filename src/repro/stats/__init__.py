"""Workload statistics estimation from execution traces.

The paper assumes "transactions used in the workload together with some
run-time statistics are ... known when applying the algorithms". This
package builds those statistics: feed it the raw query events a DBMS
(or our simulator) logs — which template ran, how many rows it touched
per table — and it produces the frequencies ``f_q`` and row counts
``n_{a,q}`` the cost model needs, or re-estimates an existing
instance's statistics in place.  For online serving,
:class:`DecayedTraceCollector` keeps exponentially-decayed counts so
the snapshot tracks the recent workload mix rather than all of history.
"""

from repro.stats.estimator import (
    QueryEvent,
    QueryStatistics,
    TraceCollector,
    estimate_statistics,
    reestimate_from_statistics,
    reestimate_instance,
)
from repro.stats.streaming import DecayedTraceCollector

__all__ = [
    "DecayedTraceCollector",
    "QueryEvent",
    "QueryStatistics",
    "TraceCollector",
    "estimate_statistics",
    "reestimate_from_statistics",
    "reestimate_instance",
]
