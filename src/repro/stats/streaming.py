"""Streaming workload statistics with exponential decay.

The batch :class:`~repro.stats.estimator.TraceCollector` weighs every
event equally, which is right for a bounded trace but wrong for an
online advisor: a workload that *drifted* three hours ago should not be
outvoted by three weeks of stale history.  The
:class:`DecayedTraceCollector` keeps exponentially-decayed counts — an
event observed ``t`` time units ago carries weight ``2**(-t /
half_life)`` — so its :meth:`~DecayedTraceCollector.statistics`
snapshot tracks the *recent* mix and feeds straight into
:func:`~repro.stats.estimator.reestimate_from_statistics` (and from
there into :meth:`~repro.api.advisor.Advisor.readvise`).

Time is explicit: every :meth:`~DecayedTraceCollector.observe` carries
an ``at`` timestamp supplied by the caller (seconds, ticks, any
monotone unit consistent with ``half_life``).  Nothing here reads a
wall clock, so replaying the same event sequence reproduces the same
statistics bit for bit.
"""

from __future__ import annotations

from typing import Mapping

from repro.exceptions import WorkloadError
from repro.stats.estimator import QueryStatistics


class DecayedTraceCollector:
    """Exponentially-decayed query-event counts.

    Parameters
    ----------
    half_life:
        Decay half-life in the caller's time unit (``> 0``): an event
        this old counts half as much as one observed just now.
    start:
        Timestamp the collector considers "now" before any event.

    >>> collector = DecayedTraceCollector(half_life=10.0)
    >>> collector.observe("getUser", {"Users": 2}, at=0.0)
    >>> collector.observe("getUser", {"Users": 4}, at=10.0)
    >>> stats = collector.statistics()["getUser"]
    >>> round(stats.frequency, 3)  # 1.0 decayed one half-life, plus 1.0
    1.5
    >>> round(stats.mean_rows["Users"], 3)  # recent rows weigh double
    3.333
    """

    def __init__(self, half_life: float, *, start: float = 0.0) -> None:
        if half_life <= 0:
            raise WorkloadError(
                f"half_life must be > 0, got {half_life}"
            )
        self.half_life = float(half_life)
        self._now = float(start)
        self._counts: dict[str, float] = {}
        self._row_sums: dict[str, dict[str, float]] = {}
        self._row_weights: dict[str, dict[str, float]] = {}
        self.total_events = 0

    @property
    def now(self) -> float:
        """Timestamp of the most recent observation (or ``start``)."""
        return self._now

    def _decay_to(self, at: float) -> None:
        if at < self._now:
            raise WorkloadError(
                f"time went backwards: observed at {at} after {self._now}"
            )
        if at == self._now:
            return
        factor = 2.0 ** (-(at - self._now) / self.half_life)
        for name in self._counts:
            self._counts[name] *= factor
        for sums in self._row_sums.values():
            for table in sums:
                sums[table] *= factor
        for weights in self._row_weights.values():
            for table in weights:
                weights[table] *= factor
        self._now = at

    def observe(
        self,
        query_name: str,
        rows: Mapping[str, float] | None = None,
        *,
        at: float,
    ) -> None:
        """Log one execution of ``query_name`` at timestamp ``at``.

        ``at`` must be monotone non-decreasing across calls; a
        timestamp earlier than the last one raises
        :class:`~repro.exceptions.WorkloadError`.
        """
        self._decay_to(at)
        self._counts[query_name] = self._counts.get(query_name, 0.0) + 1.0
        self.total_events += 1
        if rows:
            sums = self._row_sums.setdefault(query_name, {})
            weights = self._row_weights.setdefault(query_name, {})
            for table, count in rows.items():
                if count < 0:
                    raise WorkloadError(
                        f"event for {query_name!r}: negative row count "
                        f"for table {table!r}"
                    )
                sums[table] = sums.get(table, 0.0) + float(count)
                weights[table] = weights.get(table, 0.0) + 1.0

    def statistics(
        self, now: float | None = None
    ) -> dict[str, QueryStatistics]:
        """The decayed statistics snapshot as of ``now``.

        ``now`` defaults to the last observation time; a later ``now``
        decays everything further first (and advances the collector's
        clock).  Frequencies are the decayed counts — the cost model
        only needs relative magnitudes, so no window normalisation is
        applied.  Row means are decay-weighted averages.
        """
        if now is not None:
            self._decay_to(now)
        result: dict[str, QueryStatistics] = {}
        for name, count in self._counts.items():
            sums = self._row_sums.get(name, {})
            weights = self._row_weights.get(name, {})
            mean_rows = {
                table: sums[table] / weights[table]
                for table in sums
                if weights.get(table, 0.0) > 0.0
            }
            result[name] = QueryStatistics(
                query_name=name,
                executions=int(round(count)),
                frequency=count,
                mean_rows=mean_rows,
            )
        return result
