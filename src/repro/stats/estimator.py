"""Estimate ``f_q`` / ``n_{a,q}`` from logged query executions."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.exceptions import WorkloadError
from repro.model.instance import ProblemInstance
from repro.model.workload import Query, Transaction, Workload


@dataclass(frozen=True)
class QueryEvent:
    """One logged execution of a query template.

    ``rows`` maps table name to the number of rows this execution
    retrieved from / wrote to that table.
    """

    query_name: str
    rows: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for table, count in self.rows.items():
            if count < 0:
                raise WorkloadError(
                    f"event for {self.query_name!r}: negative row count "
                    f"for table {table!r}"
                )


@dataclass(frozen=True)
class QueryStatistics:
    """Aggregated statistics of one query template."""

    query_name: str
    executions: int
    frequency: float  # executions normalised by the trace window
    mean_rows: dict[str, float]


class TraceCollector:
    """Accumulates query events and aggregates them into statistics.

    >>> collector = TraceCollector()
    >>> collector.record("getUser", {"Users": 1})
    >>> collector.record("getUser", {"Users": 3})
    >>> stats = collector.aggregate()["getUser"]
    >>> stats.executions, stats.mean_rows["Users"]
    (2, 2.0)
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)
        self._row_sums: dict[str, dict[str, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        self._row_counts: dict[str, dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self.total_events = 0

    def record(self, query_name: str, rows: Mapping[str, float] | None = None) -> None:
        """Log one execution of ``query_name``."""
        self.add(QueryEvent(query_name, dict(rows or {})))

    def add(self, event: QueryEvent) -> None:
        self._counts[event.query_name] += 1
        self.total_events += 1
        for table, count in event.rows.items():
            self._row_sums[event.query_name][table] += float(count)
            self._row_counts[event.query_name][table] += 1

    def extend(self, events: Iterable[QueryEvent]) -> None:
        for event in events:
            self.add(event)

    def merge(self, other: "TraceCollector") -> None:
        """Fold another collector's events into this one.

        Equivalent to having recorded the other collector's events here
        directly — the service uses this to aggregate per-client traces
        into one workload-wide view.
        """
        for name, count in other._counts.items():
            self._counts[name] += count
        for name, sums in other._row_sums.items():
            for table, total in sums.items():
                self._row_sums[name][table] += total
        for name, counts in other._row_counts.items():
            for table, count in counts.items():
                self._row_counts[name][table] += count
        self.total_events += other.total_events

    def aggregate(self, frequency_scale: float | None = None) -> dict[str, QueryStatistics]:
        """Aggregate into per-template statistics.

        ``frequency_scale`` divides the execution counts (e.g. the trace
        duration in seconds to get executions/second); by default the
        raw execution count is the frequency, which is what the cost
        model needs (only relative frequencies matter).
        """
        if frequency_scale is not None and frequency_scale <= 0:
            raise WorkloadError(
                f"frequency_scale must be > 0, got {frequency_scale} "
                f"(a zero-length trace window cannot normalise counts)"
            )
        scale = 1.0 if frequency_scale is None else frequency_scale
        result: dict[str, QueryStatistics] = {}
        for name, count in self._counts.items():
            mean_rows = {
                table: self._row_sums[name][table] / self._row_counts[name][table]
                for table in self._row_sums[name]
            }
            result[name] = QueryStatistics(
                query_name=name,
                executions=count,
                frequency=count / scale,
                mean_rows=mean_rows,
            )
        return result


def estimate_statistics(
    events: Iterable[QueryEvent], frequency_scale: float | None = None
) -> dict[str, QueryStatistics]:
    """One-shot aggregation of an event iterable."""
    collector = TraceCollector()
    collector.extend(events)
    return collector.aggregate(frequency_scale)


def reestimate_instance(
    instance: ProblemInstance,
    events: Iterable[QueryEvent],
    frequency_scale: float | None = None,
    keep_missing: bool = True,
) -> ProblemInstance:
    """Replace an instance's statistics with trace-derived ones.

    The structural workload (which queries exist, what they access) is
    kept; ``f_q`` and ``n_{a,q}`` come from the trace. Queries that
    never appear in the trace keep their old statistics when
    ``keep_missing`` is true, otherwise they are dropped (a transaction
    whose queries all vanish is dropped with them).
    """
    statistics = estimate_statistics(events, frequency_scale)
    return reestimate_from_statistics(
        instance, statistics, keep_missing=keep_missing
    )


def reestimate_from_statistics(
    instance: ProblemInstance,
    statistics: Mapping[str, QueryStatistics],
    *,
    keep_missing: bool = True,
) -> ProblemInstance:
    """Rebuild an instance's workload numbers from aggregated statistics.

    The statistics-consuming half of :func:`reestimate_instance`,
    callable directly with the output of
    :meth:`TraceCollector.aggregate` or a decayed
    :meth:`~repro.stats.streaming.DecayedTraceCollector.statistics`
    snapshot.  Raises :class:`~repro.exceptions.WorkloadError` for an
    empty statistics mapping (an empty trace estimates nothing) and for
    query names the instance does not know.
    """
    if not statistics:
        raise WorkloadError(
            "empty trace: no query statistics to re-estimate from"
        )
    known_names = {query.name for query in instance.queries}
    for name in statistics:
        if name not in known_names:
            raise WorkloadError(
                f"trace contains unknown query template {name!r}"
            )

    transactions: list[Transaction] = []
    for transaction in instance.workload:
        queries: list[Query] = []
        for query in transaction:
            stats = statistics.get(query.name)
            if stats is None:
                if keep_missing:
                    queries.append(query)
                continue
            rows = dict(query.rows)
            for table, mean in stats.mean_rows.items():
                if table not in query.tables:
                    raise WorkloadError(
                        f"trace rows for {query.name!r} mention table "
                        f"{table!r} the query does not touch"
                    )
                if mean > 0:
                    rows[table] = mean
            queries.append(
                Query(
                    name=query.name,
                    kind=query.kind,
                    attributes=query.attributes,
                    rows=rows,
                    frequency=max(stats.frequency, 1e-9),
                    extra_tables=query.extra_tables,
                )
            )
        if queries:
            transactions.append(Transaction(transaction.name, tuple(queries)))
    if not transactions:
        raise WorkloadError("re-estimation dropped every transaction")
    workload = Workload(
        transactions, name=f"{instance.workload.name}/traced"
    )
    return ProblemInstance(
        instance.schema, workload, name=f"{instance.name} (traced)"
    )
