"""The incumbent layout: which sites already hold which attributes.

Re-partitioning needs "what is deployed today" as an input, not just as
an output: the migration term of the objective charges every replica
the new layout creates that the incumbent does not already have, and SA
warm-starts from it. ``CurrentLayout`` is the frozen,
JSON-round-trippable carrier for that input, independent of any
in-memory :class:`~repro.partition.assignment.PartitioningResult` — a
layout deployed last week can be loaded from a file and weighed against
a re-solve on this week's statistics.

Placements are keyed by qualified attribute name (``"Table.attr"``) so
a layout survives attribute reordering; ``to_matrix`` rebuilds the
``(|A|, |S|)`` indicator against a concrete instance, zero-padding when
the target cluster has grown more sites than the layout knew about.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np

from repro.exceptions import OptionsError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.instance import ProblemInstance
    from repro.partition.assignment import PartitioningResult

LAYOUT_FORMAT_VERSION = 1


def _normalize_sites(name: str, sites: Iterable[int], num_sites: int) -> tuple[int, ...]:
    normalized: list[int] = []
    for site in sites:
        index = int(site)
        if index != site:
            raise OptionsError(
                f"layout places {name!r} on non-integer site {site!r}"
            )
        if not 0 <= index < num_sites:
            raise OptionsError(
                f"layout places {name!r} on site {index}, outside "
                f"0..{num_sites - 1}"
            )
        normalized.append(index)
    if not normalized:
        raise OptionsError(
            f"layout leaves attribute {name!r} unplaced (every attribute "
            f"needs at least one replica)"
        )
    return tuple(sorted(set(normalized)))


@dataclass(frozen=True)
class CurrentLayout:
    """Incumbent attribute placement: qualified name -> replica sites.

    Frozen and hashable-by-identity only (placements are a mapping);
    validation happens at construction following the ``OptionsError``
    pattern of :class:`~repro.api.request.SolveRequest`.
    """

    num_sites: int
    placements: Mapping[str, tuple[int, ...]]

    def __post_init__(self) -> None:
        if self.num_sites < 1:
            raise OptionsError(
                f"layout num_sites must be >= 1, got {self.num_sites}"
            )
        if not self.placements:
            raise OptionsError("layout has no attribute placements")
        normalized = {
            str(name): _normalize_sites(str(name), sites, self.num_sites)
            for name, sites in self.placements.items()
        }
        object.__setattr__(self, "placements", MappingProxyType(normalized))

    # -- constructors -------------------------------------------------

    @classmethod
    def from_result(cls, result: "PartitioningResult") -> "CurrentLayout":
        """Freeze a solver result's ``y`` into a deployable layout."""
        instance = result.coefficients.instance
        placements = {
            attribute.qualified_name: tuple(
                int(site) for site in np.flatnonzero(result.y[index])
            )
            for index, attribute in enumerate(instance.attributes)
        }
        return cls(num_sites=result.num_sites, placements=placements)

    @classmethod
    def from_matrix(
        cls, instance: "ProblemInstance", y: np.ndarray
    ) -> "CurrentLayout":
        """Build a layout from an ``(|A|, |S|)`` replica indicator."""
        y = np.asarray(y)
        placements = {
            attribute.qualified_name: tuple(
                int(site) for site in np.flatnonzero(y[index])
            )
            for index, attribute in enumerate(instance.attributes)
        }
        return cls(num_sites=int(y.shape[1]), placements=placements)

    # -- conversion ---------------------------------------------------

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset(self.placements)

    def to_matrix(self, instance: "ProblemInstance", num_sites: int) -> np.ndarray:
        """Rebuild the ``(|A|, num_sites)`` float indicator.

        The layout may know fewer sites than the target (the cluster
        grew): extra columns stay empty. More sites than the target is
        an error — shrink scenarios need an explicit re-layout first.
        """
        if num_sites < self.num_sites:
            raise OptionsError(
                f"layout spans {self.num_sites} sites but the target has "
                f"only {num_sites}"
            )
        expected = {a.qualified_name for a in instance.attributes}
        if expected != set(self.placements):
            missing = sorted(expected - set(self.placements))[:3]
            extra = sorted(set(self.placements) - expected)[:3]
            raise OptionsError(
                f"layout attributes do not match instance "
                f"{instance.name!r} (missing e.g. {missing}, "
                f"unknown e.g. {extra})"
            )
        y = np.zeros((len(instance.attributes), num_sites))
        for index, attribute in enumerate(instance.attributes):
            y[index, list(self.placements[attribute.qualified_name])] = 1.0
        return y

    # -- serialisation ------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format_version": LAYOUT_FORMAT_VERSION,
            "num_sites": self.num_sites,
            "placements": {
                name: list(sites) for name, sites in sorted(self.placements.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CurrentLayout":
        version = payload.get("format_version", LAYOUT_FORMAT_VERSION)
        if version != LAYOUT_FORMAT_VERSION:
            raise OptionsError(
                f"unsupported layout format_version {version!r} "
                f"(this build reads {LAYOUT_FORMAT_VERSION})"
            )
        try:
            num_sites = int(payload["num_sites"])
            placements = payload["placements"]
        except KeyError as missing:
            raise OptionsError(f"layout payload misses key {missing}") from None
        return cls(
            num_sites=num_sites,
            placements={
                str(name): tuple(int(s) for s in sites)
                for name, sites in placements.items()
            },
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CurrentLayout":
        return cls.from_dict(json.loads(text))

    # MappingProxyType does not pickle; round-trip through the plain
    # dict form so layouts survive the process-pool backend.
    def __reduce__(self):
        return (CurrentLayout.from_dict, (self.to_dict(),))
