"""Per-site layouts and Table-4-style rendering.

The paper's Table 4 shows, per site, the transactions assigned there and
the attributes (table fractions) stored there. :func:`render_layout`
reproduces that presentation as text.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.assignment import PartitioningResult


@dataclass(frozen=True)
class SiteLayout:
    """What one site hosts."""

    site: int
    transactions: tuple[str, ...]
    attributes: tuple[str, ...]
    #: Table name -> attribute names of the local fraction.
    fractions: dict[str, tuple[str, ...]]

    @property
    def fraction_widths(self) -> dict[str, float]:
        """Bytes per row of each local table fraction (filled by build_layout)."""
        return dict(self._fraction_widths)  # type: ignore[attr-defined]


def build_layout(result: PartitioningResult) -> list[SiteLayout]:
    """Decompose a partitioning into per-site :class:`SiteLayout` objects."""
    instance = result.instance
    layouts: list[SiteLayout] = []
    for site in range(result.num_sites):
        transactions = tuple(
            instance.transactions[t].name for t in np.flatnonzero(result.x[:, site])
        )
        attribute_indices = np.flatnonzero(result.y[:, site])
        attributes = tuple(
            instance.attributes[a].qualified_name for a in attribute_indices
        )
        fractions: dict[str, list[str]] = {}
        widths: dict[str, float] = {}
        for a_index in attribute_indices:
            attribute = instance.attributes[a_index]
            fractions.setdefault(attribute.table, []).append(attribute.name)
            widths[attribute.table] = widths.get(attribute.table, 0.0) + attribute.width
        layout = SiteLayout(
            site=site,
            transactions=transactions,
            attributes=attributes,
            fractions={table: tuple(names) for table, names in sorted(fractions.items())},
        )
        object.__setattr__(layout, "_fraction_widths", widths)
        layouts.append(layout)
    return layouts


def render_layout(result: PartitioningResult, max_rows: int | None = None) -> str:
    """Render a partitioning in the style of the paper's Table 4.

    One column per site; a transactions section followed by the
    attribute list. Columns are padded to equal height.
    """
    layouts = build_layout(result)
    columns: list[list[str]] = []
    for layout in layouts:
        lines = [f"Site {layout.site + 1}", "-" * 24]
        lines.extend(f"Transaction {name}" for name in sorted(layout.transactions))
        lines.append("")
        lines.extend(sorted(layout.attributes))
        columns.append(lines)

    height = max(len(column) for column in columns)
    if max_rows is not None:
        height = min(height, max_rows)
    width = max((len(line) for column in columns for line in column), default=10) + 2
    rendered_rows: list[str] = []
    for row in range(height):
        cells = [
            (column[row] if row < len(column) else "").ljust(width)
            for column in columns
        ]
        rendered_rows.append("".join(cells).rstrip())
    truncated = any(len(column) > height for column in columns)
    if truncated:
        rendered_rows.append("... (truncated)")
    return "\n".join(rendered_rows)


def layout_summary(result: PartitioningResult) -> str:
    """One line per site: transaction count, attribute count, load share."""
    layouts = build_layout(result)
    loads = result.evaluator().site_loads(result.x, result.y)
    total = float(loads.sum()) or 1.0
    lines = []
    for layout in layouts:
        load = float(loads[layout.site])
        lines.append(
            f"site {layout.site + 1}: {len(layout.transactions)} txns, "
            f"{len(layout.attributes)} attrs, load {load:.3g} "
            f"({100.0 * load / total:.1f}%)"
        )
    return "\n".join(lines)
