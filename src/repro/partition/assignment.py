"""The result object returned by every partitioning algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.costmodel.coefficients import CostCoefficients
from repro.costmodel.evaluator import (
    CostBreakdown,
    SolutionEvaluator,
    feasibility_violations,
)
from repro.exceptions import InstanceError


@dataclass
class PartitioningResult:
    """A vertical partitioning: transaction and attribute placements.

    Attributes
    ----------
    coefficients:
        The cost data the solution was produced (and is evaluated) under.
    x:
        Boolean ``(|T|, |S|)`` transaction placement.
    y:
        Boolean ``(|A|, |S|)`` attribute placement (replicas allowed).
    objective:
        Objective (4) — the paper's reported "actual cost".
    solver:
        Human-readable solver name ("qp", "sa", "affinity", ...).
    wall_time:
        Seconds spent producing the solution.
    proven_optimal:
        True when the solver proved optimality within its gap; the
        paper prints non-proven costs in parentheses.
    metadata:
        Free-form extras (model sizes, iteration counts, ...).
    """

    coefficients: CostCoefficients
    x: np.ndarray
    y: np.ndarray
    objective: float
    solver: str
    wall_time: float = 0.0
    proven_optimal: bool = False
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=bool)
        self.y = np.asarray(self.y, dtype=bool)
        violations = feasibility_violations(self.coefficients, self.x, self.y)
        if violations:
            preview = "; ".join(violations[:5])
            raise InstanceError(
                f"infeasible partitioning from solver {self.solver!r}: {preview}"
            )

    @property
    def num_sites(self) -> int:
        return int(self.x.shape[1])

    @property
    def instance(self):
        return self.coefficients.instance

    def evaluator(self) -> SolutionEvaluator:
        return SolutionEvaluator(self.coefficients)

    def breakdown(self) -> CostBreakdown:
        """Full cost decomposition of this solution."""
        return self.evaluator().breakdown(self.x, self.y)

    def transaction_site(self, name: str) -> int:
        """The site index executing transaction ``name``."""
        t_index = self.instance.transaction_index[name]
        return int(np.argmax(self.x[t_index]))

    def attribute_sites(self, qualified_name: str) -> tuple[int, ...]:
        """All sites holding a replica of ``qualified_name``."""
        a_index = self.instance.attribute_index[qualified_name]
        return tuple(int(s) for s in np.flatnonzero(self.y[a_index]))

    @property
    def replication_factor(self) -> float:
        """Mean number of replicas per attribute (1.0 = disjoint)."""
        return float(self.y.sum() / self.y.shape[0])

    @property
    def is_disjoint(self) -> bool:
        return bool((self.y.sum(axis=1) == 1).all())

    def __repr__(self) -> str:
        return (
            f"PartitioningResult(solver={self.solver!r}, sites={self.num_sites}, "
            f"objective={self.objective:.6g}, replication={self.replication_factor:.2f}, "
            f"optimal={self.proven_optimal})"
        )


def single_site_partitioning(coefficients: CostCoefficients) -> PartitioningResult:
    """The trivial |S| = 1 baseline used throughout the paper's tables."""
    num_transactions = coefficients.num_transactions
    num_attributes = coefficients.num_attributes
    x = np.ones((num_transactions, 1), dtype=bool)
    y = np.ones((num_attributes, 1), dtype=bool)
    evaluator = SolutionEvaluator(coefficients)
    return PartitioningResult(
        coefficients=coefficients,
        x=x,
        y=y,
        objective=evaluator.objective4(x, y),
        solver="single-site",
        proven_optimal=True,
    )
