"""Partitioning results and per-site layouts."""

from repro.partition.assignment import PartitioningResult, single_site_partitioning
from repro.partition.current_layout import CurrentLayout
from repro.partition.layout import SiteLayout, build_layout, render_layout

__all__ = [
    "PartitioningResult",
    "single_site_partitioning",
    "CurrentLayout",
    "SiteLayout",
    "build_layout",
    "render_layout",
]
