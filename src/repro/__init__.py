"""repro — vertical partitioning of relational OLTP databases.

A faithful, from-scratch reproduction of

    Rasmus Resen Amossen,
    "Vertical partitioning of relational OLTP databases using integer
    programming", ICDE 2010 (arXiv:0911.1691).

Public API
----------
Model a schema and workload (:class:`SchemaBuilder`, :class:`Query`,
:class:`Transaction`, :class:`Workload`, :class:`ProblemInstance`),
choose cost parameters (:class:`CostParameters`), then describe the
solve as a :class:`SolveRequest` and serve it with :func:`advise` — the
``"auto"`` strategy picks the optimal QP solver or the scalable
simulated-annealing heuristic from the model-size estimate, or name any
registered strategy explicitly (``"qp"``, ``"sa"``, ``"sa-portfolio"``,
the baselines, or your own via :func:`register_solver`).  Batches go
through :class:`Advisor` (``advise_many``), which shares coefficient and
MIP-skeleton caches across requests.  Reports carry the underlying
:class:`PartitioningResult` with full cost breakdowns and Table-4-style
layout rendering (:func:`render_layout`).  The pre-API one-call wrappers
(:func:`solve_qp`, :func:`solve_sa`) remain as thin shims over
:func:`advise`.

>>> from repro import SchemaBuilder, Query, Transaction, Workload
>>> from repro import ProblemInstance, SolveRequest, advise
>>> schema = (SchemaBuilder("shop")
...           .table("Users", id=4, name=16, bio=200)
...           .build())
>>> workload = Workload([Transaction("Login", (
...     Query.read("getUser", ["Users.id", "Users.name"]),))])
>>> instance = ProblemInstance(schema, workload)
>>> report = advise(SolveRequest(instance, num_sites=2, seed=0))
>>> report.objective <= 220.0
True
"""

from repro.model import (
    Attribute,
    Table,
    Schema,
    SchemaBuilder,
    Query,
    QueryKind,
    Transaction,
    Workload,
    split_update,
    ProblemInstance,
    dump_instance,
    load_instance,
    describe_instance,
)
from repro.costmodel import (
    CostParameters,
    WriteAccounting,
    build_coefficients,
    SolutionEvaluator,
    check_solution_feasible,
)
from repro.partition import (
    PartitioningResult,
    single_site_partitioning,
    build_layout,
    render_layout,
)
from repro.qp import QpPartitioner, solve_qp
from repro.sa import SaOptions, SaPartitioner, solve_sa
from repro.instances import (
    tpcc_instance,
    tatp_instance,
    smallbank_instance,
    voter_instance,
    InstanceParameters,
    generate_instance,
    named_instance,
)
from repro.stats import QueryEvent, TraceCollector, reestimate_instance
from repro.analysis import penalty_sweep, sites_sweep, lambda_sweep
from repro.api import (
    Advisor,
    SolveReport,
    SolveRequest,
    SolverRegistry,
    advise,
    advise_many,
    default_registry,
    register_solver,
)

__version__ = "1.1.0"

__all__ = [
    "Attribute",
    "Table",
    "Schema",
    "SchemaBuilder",
    "Query",
    "QueryKind",
    "Transaction",
    "Workload",
    "split_update",
    "ProblemInstance",
    "dump_instance",
    "load_instance",
    "describe_instance",
    "CostParameters",
    "WriteAccounting",
    "build_coefficients",
    "SolutionEvaluator",
    "check_solution_feasible",
    "PartitioningResult",
    "single_site_partitioning",
    "build_layout",
    "render_layout",
    "QpPartitioner",
    "solve_qp",
    "SaOptions",
    "SaPartitioner",
    "solve_sa",
    "tpcc_instance",
    "tatp_instance",
    "smallbank_instance",
    "voter_instance",
    "InstanceParameters",
    "generate_instance",
    "named_instance",
    "QueryEvent",
    "TraceCollector",
    "reestimate_instance",
    "penalty_sweep",
    "sites_sweep",
    "lambda_sweep",
    "Advisor",
    "SolveReport",
    "SolveRequest",
    "SolverRegistry",
    "advise",
    "advise_many",
    "default_registry",
    "register_solver",
    "__version__",
]
