"""repro — vertical partitioning of relational OLTP databases.

A faithful, from-scratch reproduction of

    Rasmus Resen Amossen,
    "Vertical partitioning of relational OLTP databases using integer
    programming", ICDE 2010 (arXiv:0911.1691).

Public API
----------
Model a schema and workload (:class:`SchemaBuilder`, :class:`Query`,
:class:`Transaction`, :class:`Workload`, :class:`ProblemInstance`),
choose cost parameters (:class:`CostParameters`), and partition with
either the optimal QP solver (:func:`solve_qp`) or the scalable
simulated-annealing heuristic (:func:`solve_sa`). Results are
:class:`PartitioningResult` objects with full cost breakdowns and
Table-4-style layout rendering (:func:`render_layout`).

>>> from repro import SchemaBuilder, Query, Transaction, Workload
>>> from repro import ProblemInstance, solve_sa
>>> schema = (SchemaBuilder("shop")
...           .table("Users", id=4, name=16, bio=200)
...           .build())
>>> workload = Workload([Transaction("Login", (
...     Query.read("getUser", ["Users.id", "Users.name"]),))])
>>> instance = ProblemInstance(schema, workload)
>>> result = solve_sa(instance, num_sites=2, seed=0)
>>> result.objective <= 220.0
True
"""

from repro.model import (
    Attribute,
    Table,
    Schema,
    SchemaBuilder,
    Query,
    QueryKind,
    Transaction,
    Workload,
    split_update,
    ProblemInstance,
    dump_instance,
    load_instance,
    describe_instance,
)
from repro.costmodel import (
    CostParameters,
    WriteAccounting,
    build_coefficients,
    SolutionEvaluator,
    check_solution_feasible,
)
from repro.partition import (
    PartitioningResult,
    single_site_partitioning,
    build_layout,
    render_layout,
)
from repro.qp import QpPartitioner, solve_qp
from repro.sa import SaOptions, SaPartitioner, solve_sa
from repro.instances import (
    tpcc_instance,
    tatp_instance,
    smallbank_instance,
    voter_instance,
    InstanceParameters,
    generate_instance,
    named_instance,
)
from repro.stats import QueryEvent, TraceCollector, reestimate_instance
from repro.analysis import penalty_sweep, sites_sweep, lambda_sweep

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "Table",
    "Schema",
    "SchemaBuilder",
    "Query",
    "QueryKind",
    "Transaction",
    "Workload",
    "split_update",
    "ProblemInstance",
    "dump_instance",
    "load_instance",
    "describe_instance",
    "CostParameters",
    "WriteAccounting",
    "build_coefficients",
    "SolutionEvaluator",
    "check_solution_feasible",
    "PartitioningResult",
    "single_site_partitioning",
    "build_layout",
    "render_layout",
    "QpPartitioner",
    "solve_qp",
    "SaOptions",
    "SaPartitioner",
    "solve_sa",
    "tpcc_instance",
    "tatp_instance",
    "smallbank_instance",
    "voter_instance",
    "InstanceParameters",
    "generate_instance",
    "named_instance",
    "QueryEvent",
    "TraceCollector",
    "reestimate_instance",
    "penalty_sweep",
    "sites_sweep",
    "lambda_sweep",
    "__version__",
]
