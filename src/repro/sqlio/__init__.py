"""Mini-SQL front end.

Lets users define schemas (``CREATE TABLE``) and workloads (annotated
``SELECT`` / ``UPDATE`` / ``INSERT`` / ``DELETE`` templates) as SQL text
and turn them into :class:`~repro.model.instance.ProblemInstance`
objects. Statement statistics come from annotation comments::

    -- transaction NewOrder
    -- rows Item=10 freq 1
    SELECT i_price, i_name FROM item WHERE i_id = ?;

UPDATE statements are split per the paper's Section-5.2 convention
(read sub-query + write sub-query); DELETEs write complete rows;
INSERTs write the listed (or all) columns.
"""

from repro.sqlio.lexer import Token, TokenKind, tokenize
from repro.sqlio.parser import SqlParser, parse_statements
from repro.sqlio.workload_loader import (
    load_instance_from_sql,
    parse_schema_sql,
    parse_workload_sql,
)

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "SqlParser",
    "parse_statements",
    "load_instance_from_sql",
    "parse_schema_sql",
    "parse_workload_sql",
]
