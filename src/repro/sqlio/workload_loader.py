"""Turn annotated SQL text into schemas, workloads and instances.

Schema text is a sequence of ``CREATE TABLE`` statements; column types
map to byte widths via :data:`TYPE_WIDTHS` (``char(n)``/``varchar(n)``
use ``n``, ``decimal(p,s)`` uses packed-decimal size).

Workload text is a sequence of DML templates with annotation comments::

    -- transaction Payment
    -- name updateWarehouse freq 1 rows 1
    UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?;

Annotation directives (whitespace-separated, within any ``--`` comment):

* ``transaction <Name>`` — start a new transaction,
* ``name <queryName>`` — name for the next statement,
* ``freq <f>`` — frequency of the next statement,
* ``rows <n>`` or ``rows <table>=<n> [<table>=<n> ...]`` — row counts.
"""

from __future__ import annotations

import math

from repro.exceptions import ParseError, SchemaError
from repro.model.instance import ProblemInstance
from repro.model.schema import Attribute, Schema, Table
from repro.model.workload import Query, Transaction, Workload, split_update
from repro.sqlio.ast_nodes import (
    Annotations,
    ColumnRef,
    CreateTable,
    Delete,
    Insert,
    Select,
    Update,
)
from repro.sqlio.lexer import Token, TokenKind, tokenize
from repro.sqlio.parser import SqlParser

#: Fixed-width SQL types in bytes.
TYPE_WIDTHS: dict[str, float] = {
    "tinyint": 1,
    "smallint": 2,
    "int": 4,
    "integer": 4,
    "serial": 4,
    "bigint": 8,
    "float": 4,
    "real": 4,
    "double": 8,
    "boolean": 1,
    "bool": 1,
    "date": 4,
    "time": 4,
    "timestamp": 8,
    "datetime": 8,
    "text": 100,
}


def type_width(type_name: str, type_args: tuple[int, ...]) -> float:
    """Byte width of a SQL type."""
    lowered = type_name.lower()
    if lowered in ("char", "varchar", "character"):
        return float(type_args[0]) if type_args else 30.0
    if lowered in ("decimal", "numeric"):
        if type_args:
            precision = type_args[0]
            return float(math.floor(precision / 2) + 1)
        return 8.0
    if lowered in TYPE_WIDTHS:
        return float(TYPE_WIDTHS[lowered])
    raise SchemaError(f"unknown SQL type {type_name!r}")


def parse_schema_sql(sql: str, name: str = "schema") -> Schema:
    """Parse CREATE TABLE statements into a :class:`Schema`."""
    statements = SqlParser(tokenize(sql)).parse_all()
    tables = []
    for statement in statements:
        if not isinstance(statement, CreateTable):
            raise ParseError(
                f"schema text may only contain CREATE TABLE statements, "
                f"found {type(statement).__name__}"
            )
        attributes = tuple(
            Attribute(
                table=statement.name,
                name=column.name,
                width=type_width(column.type_name, column.type_args),
            )
            for column in statement.columns
        )
        tables.append(Table(statement.name, attributes))
    return Schema(tables, name=name)


# ----------------------------------------------------------------------
# Annotated workload parsing
# ----------------------------------------------------------------------
def _split_statements_with_comments(
    sql: str,
) -> list[tuple[list[str], list[Token]]]:
    """Group tokens into statements, each with its preceding comments."""
    tokens = tokenize(sql, keep_comments=True)
    groups: list[tuple[list[str], list[Token]]] = []
    pending_comments: list[str] = []
    current: list[Token] = []
    for token in tokens:
        if token.kind is TokenKind.COMMENT:
            if current:
                continue  # comment inside a statement: ignore
            pending_comments.append(token.value)
            continue
        if token.kind is TokenKind.END:
            break
        current.append(token)
        if token.is_punct(";"):
            end = Token(TokenKind.END, "", token.line, token.column)
            groups.append((pending_comments, current + [end]))
            pending_comments = []
            current = []
    if current:
        end = Token(TokenKind.END, "", current[-1].line, current[-1].column)
        groups.append((pending_comments, current + [end]))
    elif pending_comments:
        groups.append((pending_comments, []))
    return groups


def _parse_annotations(comments: list[str], line_hint: int = 0) -> Annotations:
    annotations = Annotations()
    for comment in comments:
        words = comment.replace(",", " ").split()
        index = 0
        while index < len(words):
            word = words[index].lower().rstrip(":")
            if word == "transaction" and index + 1 < len(words):
                annotations.transaction = words[index + 1]
                index += 2
            elif word == "name" and index + 1 < len(words):
                annotations.query_name = words[index + 1]
                index += 2
            elif word in ("freq", "frequency") and index + 1 < len(words):
                try:
                    annotations.frequency = float(words[index + 1])
                except ValueError:
                    raise ParseError(
                        f"bad frequency {words[index + 1]!r}", line_hint
                    ) from None
                index += 2
            elif word == "rows":
                index += 1
                consumed_any = False
                while index < len(words):
                    entry = words[index]
                    if "=" in entry:
                        table, _, value = entry.partition("=")
                        try:
                            annotations.rows[table] = float(value)
                        except ValueError:
                            raise ParseError(
                                f"bad row count {entry!r}", line_hint
                            ) from None
                        index += 1
                        consumed_any = True
                    else:
                        try:
                            annotations.default_rows = float(entry)
                            index += 1
                            consumed_any = True
                        except ValueError:
                            break
                if not consumed_any:
                    raise ParseError("rows annotation needs a value", line_hint)
            else:
                index += 1  # free-form comment text
    return annotations


class _WorkloadBuilder:
    def __init__(self, schema: Schema):
        self.schema = schema
        self.transactions: list[Transaction] = []
        self._current_name: str | None = None
        self._current_queries: list[Query] = []
        self._counter = 0

    def start_transaction(self, name: str) -> None:
        self._flush()
        self._current_name = name

    def _flush(self) -> None:
        if self._current_queries:
            name = self._current_name or f"txn{len(self.transactions)}"
            self.transactions.append(
                Transaction(name, tuple(self._current_queries))
            )
        self._current_queries = []
        self._current_name = None

    def finish(self, workload_name: str) -> Workload:
        self._flush()
        if not self.transactions:
            raise ParseError("workload text contains no statements")
        return Workload(self.transactions, name=workload_name)

    # -- statement -> queries -------------------------------------------
    def add_statement(self, statement, annotations: Annotations) -> None:
        self._counter += 1
        base = annotations.query_name or f"q{self._counter}"
        prefix = self._current_name or f"txn{len(self.transactions)}"
        name = f"{prefix}.{base}"
        rows = self._rows_for(statement, annotations)
        frequency = annotations.frequency
        if isinstance(statement, Select):
            self._current_queries.append(
                self._select_query(statement, name, rows, frequency)
            )
        elif isinstance(statement, Update):
            self._current_queries.extend(
                self._update_queries(statement, name, rows, frequency)
            )
        elif isinstance(statement, Insert):
            self._current_queries.append(
                self._insert_query(statement, name, rows, frequency)
            )
        elif isinstance(statement, Delete):
            self._current_queries.extend(
                self._delete_queries(statement, name, rows, frequency)
            )
        else:
            raise ParseError(
                f"unsupported statement type {type(statement).__name__} in workload"
            )

    def _rows_for(self, statement, annotations: Annotations) -> dict[str, float]:
        tables = self._statement_tables(statement)
        rows: dict[str, float] = {}
        for table in tables:
            if table in annotations.rows:
                rows[table] = annotations.rows[table]
            elif annotations.default_rows is not None:
                rows[table] = annotations.default_rows
        for table in annotations.rows:
            if table not in tables:
                raise ParseError(
                    f"rows annotation references table {table!r} not used by "
                    f"the statement"
                )
        return rows

    @staticmethod
    def _statement_tables(statement) -> tuple[str, ...]:
        if isinstance(statement, Select):
            return statement.tables
        return (statement.table,)

    def _resolve(
        self, ref: ColumnRef, tables: tuple[str, ...], aliases: dict[str, str] | None = None
    ) -> str:
        if ref.table is not None:
            table = (aliases or {}).get(ref.table, ref.table)
            return self.schema.table(table).attribute(ref.name).qualified_name
        return self.schema.resolve(ref.name, tables).qualified_name

    def _select_query(
        self, statement: Select, name: str, rows: dict[str, float], frequency: float
    ) -> Query:
        tables = statement.tables
        for table in tables:
            self.schema.table(table)  # validate
        attributes: set[str] = set()
        if statement.star:
            for table in tables:
                attributes.update(
                    attribute.qualified_name
                    for attribute in self.schema.table(table)
                )
        for ref in statement.columns + statement.where_columns + statement.extra_columns:
            attributes.add(self._resolve(ref, tables, statement.aliases))
        return Query.read(name, attributes, rows=rows, frequency=frequency)

    def _update_queries(
        self, statement: Update, name: str, rows: dict[str, float], frequency: float
    ) -> tuple[Query, ...]:
        tables = (statement.table,)
        written = {
            self._resolve(assignment.column, tables)
            for assignment in statement.assignments
        }
        read: set[str] = {
            self._resolve(ref, tables) for ref in statement.where_columns
        }
        for assignment in statement.assignments:
            target = self._resolve(assignment.column, tables)
            for ref in assignment.rhs_columns:
                qualified = self._resolve(ref, tables)
                if qualified != target:  # self-references are not reads
                    read.add(qualified)
        return split_update(
            name,
            read_attributes=read,
            written_attributes=written,
            rows=rows,
            frequency=frequency,
        )

    def _insert_query(
        self, statement: Insert, name: str, rows: dict[str, float], frequency: float
    ) -> Query:
        table = self.schema.table(statement.table)
        if statement.columns:
            attributes = {
                table.attribute(column).qualified_name
                for column in statement.columns
            }
        else:
            attributes = {attribute.qualified_name for attribute in table}
        return Query.write(name, attributes, rows=rows, frequency=frequency)

    def _delete_queries(
        self, statement: Delete, name: str, rows: dict[str, float], frequency: float
    ) -> tuple[Query, ...]:
        table = self.schema.table(statement.table)
        written = {attribute.qualified_name for attribute in table}
        read = {
            self._resolve(ref, (statement.table,))
            for ref in statement.where_columns
        }
        queries: list[Query] = []
        if read:
            queries.append(
                Query.read(f"{name}:read", read, rows=rows, frequency=frequency)
            )
        queries.append(
            Query.write(f"{name}:write", written, rows=rows, frequency=frequency)
        )
        return tuple(queries)


def parse_workload_sql(
    sql: str, schema: Schema, name: str = "workload"
) -> Workload:
    """Parse annotated DML statements into a :class:`Workload`."""
    builder = _WorkloadBuilder(schema)
    for comments, statement_tokens in _split_statements_with_comments(sql):
        annotations = _parse_annotations(comments)
        if annotations.transaction:
            builder.start_transaction(annotations.transaction)
        if not statement_tokens:
            continue
        statement = SqlParser(statement_tokens).parse_statement()
        builder.add_statement(statement, annotations)
    return builder.finish(name)


def load_instance_from_sql(
    schema_sql: str, workload_sql: str, name: str = "sql-instance"
) -> ProblemInstance:
    """Build a complete problem instance from two SQL texts."""
    schema = parse_schema_sql(schema_sql, name=f"{name}-schema")
    workload = parse_workload_sql(workload_sql, schema, name=f"{name}-workload")
    return ProblemInstance(schema, workload, name=name)
