"""Tokenizer for the mini-SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ParseError

KEYWORDS = {
    "select", "from", "where", "update", "set", "insert", "into", "values",
    "delete", "create", "table", "and", "or", "not", "order", "by", "group",
    "having", "join", "inner", "left", "right", "outer", "on", "as",
    "distinct", "limit", "asc", "desc", "between", "in", "like", "is",
    "null", "count", "sum", "avg", "min", "max",
}

PUNCTUATION = {
    "(", ")", ",", ";", "*", "=", "<", ">", "<=", ">=", "<>", "!=", "+",
    "-", "/", ".", "?",
}


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    PUNCT = "punct"
    COMMENT = "comment"
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value in names

    def is_punct(self, *symbols: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.value in symbols


def tokenize(text: str, keep_comments: bool = False) -> list[Token]:
    """Tokenize SQL text; raises :class:`ParseError` on bad characters."""
    tokens: list[Token] = []
    line, column = 1, 1
    index = 0
    length = len(text)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if text.startswith("--", index):
            start_line, start_column = line, column
            end = text.find("\n", index)
            end = length if end == -1 else end
            comment = text[index + 2 : end].strip()
            advance(end - index)
            if keep_comments:
                tokens.append(
                    Token(TokenKind.COMMENT, comment, start_line, start_column)
                )
            continue
        if text.startswith("/*", index):
            end = text.find("*/", index + 2)
            if end == -1:
                raise ParseError("unterminated block comment", line, column)
            advance(end + 2 - index)
            continue
        if char == "'":
            start_line, start_column = line, column
            end = index + 1
            while end < length and text[end] != "'":
                end += 1
            if end >= length:
                raise ParseError("unterminated string literal", line, column)
            value = text[index + 1 : end]
            advance(end + 1 - index)
            tokens.append(Token(TokenKind.STRING, value, start_line, start_column))
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            start_line, start_column = line, column
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            value = text[index:end]
            advance(end - index)
            tokens.append(Token(TokenKind.NUMBER, value, start_line, start_column))
            continue
        if char.isalpha() or char == "_":
            start_line, start_column = line, column
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            advance(end - index)
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(
                    Token(TokenKind.KEYWORD, lowered, start_line, start_column)
                )
            else:
                tokens.append(
                    Token(TokenKind.IDENTIFIER, word, start_line, start_column)
                )
            continue
        # Two-character operators first.
        two = text[index : index + 2]
        if two in PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCT, two, line, column))
            advance(2)
            continue
        if char in PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCT, char, line, column))
            advance(1)
            continue
        raise ParseError(f"unexpected character {char!r}", line, column)

    tokens.append(Token(TokenKind.END, "", line, column))
    return tokens
