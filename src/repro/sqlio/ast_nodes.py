"""Statement AST for the mini-SQL dialect.

Column references are kept as ``(table_or_alias, name)`` pairs with the
table part optional; resolution against a schema happens in the
workload loader.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ColumnRef:
    """A possibly-qualified column reference."""

    table: str | None
    name: str

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class ColumnDef:
    """One column of a CREATE TABLE statement."""

    name: str
    type_name: str
    type_args: tuple[int, ...] = ()


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True)
class Select:
    tables: tuple[str, ...]
    #: Aliases mapping alias -> table name (includes identity entries).
    aliases: dict[str, str]
    columns: tuple[ColumnRef, ...]  # select list; empty + star=True means *
    star: bool
    where_columns: tuple[ColumnRef, ...]
    extra_columns: tuple[ColumnRef, ...] = ()  # GROUP BY / ORDER BY / ON


@dataclass(frozen=True)
class Assignment:
    column: ColumnRef
    #: Columns referenced by the right-hand side expression.
    rhs_columns: tuple[ColumnRef, ...]


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[Assignment, ...]
    where_columns: tuple[ColumnRef, ...]


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]  # empty means all columns


@dataclass(frozen=True)
class Delete:
    table: str
    where_columns: tuple[ColumnRef, ...]


Statement = CreateTable | Select | Update | Insert | Delete


@dataclass
class Annotations:
    """Statistics annotations attached to the following statement."""

    transaction: str | None = None
    query_name: str | None = None
    frequency: float = 1.0
    rows: dict[str, float] = field(default_factory=dict)
    default_rows: float | None = None
