"""Recursive-descent parser for the mini-SQL dialect.

Expressions (WHERE / SET right-hand sides / ON clauses) are not fully
parsed into trees — the workload model only needs *which columns they
reference* — so they are scanned token-by-token, collecting column
references until the clause ends.
"""

from __future__ import annotations

from repro.exceptions import ParseError
from repro.sqlio.ast_nodes import (
    Assignment,
    ColumnDef,
    ColumnRef,
    CreateTable,
    Delete,
    Insert,
    Select,
    Statement,
    Update,
)
from repro.sqlio.lexer import Token, TokenKind, tokenize

_CLAUSE_KEYWORDS = {
    "where", "group", "order", "having", "limit", "join", "inner", "left",
    "right", "outer", "on", "values", "set",
}
_AGGREGATES = {"count", "sum", "avg", "min", "max"}


class SqlParser:
    """Parses a token stream into statements."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers ---------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.END:
            self._position += 1
        return token

    def _expect_keyword(self, *names: str) -> Token:
        token = self._next()
        if not token.is_keyword(*names):
            raise ParseError(
                f"expected {' or '.join(names).upper()}, got {token.value!r}",
                token.line,
                token.column,
            )
        return token

    def _expect_punct(self, symbol: str) -> Token:
        token = self._next()
        if not token.is_punct(symbol):
            raise ParseError(
                f"expected {symbol!r}, got {token.value!r}", token.line, token.column
            )
        return token

    def _expect_identifier(self) -> Token:
        token = self._next()
        if token.kind is not TokenKind.IDENTIFIER:
            raise ParseError(
                f"expected identifier, got {token.value!r}", token.line, token.column
            )
        return token

    def _at_end(self) -> bool:
        return self._peek().kind is TokenKind.END

    # -- statements --------------------------------------------------------
    def parse_all(self) -> list[Statement]:
        statements: list[Statement] = []
        while not self._at_end():
            if self._peek().is_punct(";"):
                self._next()
                continue
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> Statement:
        token = self._peek()
        if token.is_keyword("create"):
            return self._parse_create()
        if token.is_keyword("select"):
            return self._parse_select()
        if token.is_keyword("update"):
            return self._parse_update()
        if token.is_keyword("insert"):
            return self._parse_insert()
        if token.is_keyword("delete"):
            return self._parse_delete()
        raise ParseError(
            f"unexpected token {token.value!r} at statement start",
            token.line,
            token.column,
        )

    # -- CREATE TABLE -----------------------------------------------------
    def _parse_create(self) -> CreateTable:
        self._expect_keyword("create")
        self._expect_keyword("table")
        name = self._expect_identifier().value
        self._expect_punct("(")
        columns: list[ColumnDef] = []
        while True:
            column_name = self._expect_identifier().value
            type_token = self._next()
            if type_token.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
                raise ParseError(
                    f"expected a type after column {column_name!r}",
                    type_token.line,
                    type_token.column,
                )
            type_args: list[int] = []
            if self._peek().is_punct("("):
                self._next()
                while not self._peek().is_punct(")"):
                    arg = self._next()
                    if arg.kind is TokenKind.NUMBER:
                        type_args.append(int(float(arg.value)))
                    elif not arg.is_punct(","):
                        raise ParseError(
                            f"bad type argument {arg.value!r}", arg.line, arg.column
                        )
                self._expect_punct(")")
            # Skip column constraints until , or ).
            depth = 0
            while True:
                token = self._peek()
                if token.kind is TokenKind.END:
                    raise ParseError("unterminated CREATE TABLE", token.line, token.column)
                if depth == 0 and (token.is_punct(",") or token.is_punct(")")):
                    break
                if token.is_punct("("):
                    depth += 1
                elif token.is_punct(")"):
                    depth -= 1
                self._next()
            columns.append(
                ColumnDef(column_name, type_token.value.lower(), tuple(type_args))
            )
            if self._peek().is_punct(","):
                self._next()
                continue
            self._expect_punct(")")
            break
        self._maybe_semicolon()
        return CreateTable(name, tuple(columns))

    # -- SELECT ------------------------------------------------------------
    def _parse_select(self) -> Select:
        self._expect_keyword("select")
        if self._peek().is_keyword("distinct"):
            self._next()
        columns: list[ColumnRef] = []
        star = False
        while True:
            token = self._peek()
            if token.is_punct("*"):
                self._next()
                star = True
            elif token.is_keyword(*_AGGREGATES):
                self._next()
                self._expect_punct("(")
                depth = 1
                while depth:
                    inner = self._next()
                    if inner.kind is TokenKind.END:
                        raise ParseError("unterminated aggregate", inner.line, inner.column)
                    if inner.is_punct("("):
                        depth += 1
                    elif inner.is_punct(")"):
                        depth -= 1
                    elif inner.kind is TokenKind.IDENTIFIER:
                        columns.append(self._finish_column_ref(inner))
                    elif inner.is_keyword("distinct"):
                        continue
            elif token.kind is TokenKind.IDENTIFIER:
                self._next()
                columns.append(self._finish_column_ref(token))
            else:
                raise ParseError(
                    f"bad select list near {token.value!r}", token.line, token.column
                )
            if self._peek().is_punct(","):
                self._next()
                continue
            break
        self._expect_keyword("from")
        tables, aliases, on_columns = self._parse_from()
        where_columns: list[ColumnRef] = []
        extra_columns: list[ColumnRef] = list(on_columns)
        while not self._at_end() and not self._peek().is_punct(";"):
            token = self._peek()
            if token.is_keyword("where"):
                self._next()
                where_columns.extend(self._scan_expression_columns())
            elif token.is_keyword("group", "order"):
                self._next()
                self._expect_keyword("by")
                extra_columns.extend(self._scan_expression_columns())
            elif token.is_keyword("having"):
                self._next()
                extra_columns.extend(self._scan_expression_columns())
            elif token.is_keyword("limit"):
                self._next()
                self._next()  # the number
            elif token.is_keyword("asc", "desc"):
                self._next()
            else:
                raise ParseError(
                    f"unexpected {token.value!r} in SELECT", token.line, token.column
                )
        self._maybe_semicolon()
        return Select(
            tables=tuple(tables),
            aliases=aliases,
            columns=tuple(columns),
            star=star,
            where_columns=tuple(where_columns),
            extra_columns=tuple(extra_columns),
        )

    def _parse_from(self) -> tuple[list[str], dict[str, str], list[ColumnRef]]:
        tables: list[str] = []
        aliases: dict[str, str] = {}
        on_columns: list[ColumnRef] = []

        def parse_table() -> None:
            table = self._expect_identifier().value
            tables.append(table)
            aliases[table] = table
            token = self._peek()
            if token.kind is TokenKind.IDENTIFIER:
                self._next()
                aliases[token.value] = table
            elif token.is_keyword("as"):
                self._next()
                alias = self._expect_identifier().value
                aliases[alias] = table

        parse_table()
        while True:
            token = self._peek()
            if token.is_punct(","):
                self._next()
                parse_table()
            elif token.is_keyword("join", "inner", "left", "right", "outer"):
                while self._peek().is_keyword("inner", "left", "right", "outer"):
                    self._next()
                self._expect_keyword("join")
                parse_table()
                if self._peek().is_keyword("on"):
                    self._next()
                    on_columns.extend(self._scan_expression_columns())
            else:
                break
        return tables, aliases, on_columns

    # -- UPDATE ------------------------------------------------------------
    def _parse_update(self) -> Update:
        self._expect_keyword("update")
        table = self._expect_identifier().value
        self._expect_keyword("set")
        assignments: list[Assignment] = []
        while True:
            target = self._expect_identifier()
            column = self._finish_column_ref(target)
            self._expect_punct("=")
            rhs_columns = self._scan_expression_columns(stop_at_comma=True)
            assignments.append(Assignment(column, tuple(rhs_columns)))
            if self._peek().is_punct(","):
                self._next()
                continue
            break
        where_columns: list[ColumnRef] = []
        if self._peek().is_keyword("where"):
            self._next()
            where_columns = self._scan_expression_columns()
        self._maybe_semicolon()
        return Update(table, tuple(assignments), tuple(where_columns))

    # -- INSERT ------------------------------------------------------------
    def _parse_insert(self) -> Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_identifier().value
        columns: list[str] = []
        if self._peek().is_punct("("):
            self._next()
            while True:
                columns.append(self._expect_identifier().value)
                if self._peek().is_punct(","):
                    self._next()
                    continue
                self._expect_punct(")")
                break
        self._expect_keyword("values")
        self._expect_punct("(")
        depth = 1
        while depth:
            token = self._next()
            if token.kind is TokenKind.END:
                raise ParseError("unterminated VALUES", token.line, token.column)
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1
        self._maybe_semicolon()
        return Insert(table, tuple(columns))

    # -- DELETE ------------------------------------------------------------
    def _parse_delete(self) -> Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_identifier().value
        where_columns: list[ColumnRef] = []
        if self._peek().is_keyword("where"):
            self._next()
            where_columns = self._scan_expression_columns()
        self._maybe_semicolon()
        return Delete(table, tuple(where_columns))

    # -- shared helpers ------------------------------------------------------
    def _finish_column_ref(self, first: Token) -> ColumnRef:
        """``first`` is an identifier; consume an optional ``.name``."""
        if self._peek().is_punct(".") and self._peek(1).kind is TokenKind.IDENTIFIER:
            self._next()
            name = self._next().value
            return ColumnRef(first.value, name)
        return ColumnRef(None, first.value)

    def _scan_expression_columns(self, stop_at_comma: bool = False) -> list[ColumnRef]:
        """Collect column references until the clause ends."""
        columns: list[ColumnRef] = []
        depth = 0
        while True:
            token = self._peek()
            if token.kind is TokenKind.END or token.is_punct(";"):
                break
            if depth == 0 and token.kind is TokenKind.KEYWORD and token.value in _CLAUSE_KEYWORDS:
                break
            if depth == 0 and stop_at_comma and token.is_punct(","):
                break
            self._next()
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                if depth == 0:
                    # Closing a parenthesis we did not open: end of clause.
                    self._position -= 1
                    break
                depth -= 1
            elif token.kind is TokenKind.IDENTIFIER:
                columns.append(self._finish_column_ref(token))
        return columns

    def _maybe_semicolon(self) -> None:
        if self._peek().is_punct(";"):
            self._next()


def parse_statements(sql: str) -> list[Statement]:
    """Parse SQL text into a list of statements."""
    return SqlParser(tokenize(sql)).parse_all()
