"""Loading and validating ``BENCH_*.json`` artifacts for rendering."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.bench.artifact_schema import validate_artifact
from repro.exceptions import ArtifactError


def load_artifact(
    source: str | Path | Mapping[str, Any], *, family: str | None = None
) -> dict[str, Any]:
    """Read one benchmark artifact and validate it against its schema.

    ``source`` is a path to a ``BENCH_*.json`` file or an already-parsed
    document.  The artifact's ``bench`` field selects the family schema
    unless ``family`` pins one.  Malformed documents raise
    :class:`~repro.exceptions.ArtifactError` — never a silently empty
    report.
    """
    if isinstance(source, Mapping):
        payload: Any = dict(source)
    else:
        path = Path(source)
        try:
            text = path.read_text()
        except OSError as error:
            raise ArtifactError(
                f"cannot read artifact {path}: {error}"
            ) from None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ArtifactError(
                f"artifact {path} is not valid JSON: {error}"
            ) from None
    validate_artifact(payload, family)
    return payload


def column_order(rows: list[Mapping[str, Any]]) -> list[str]:
    """Every key appearing in ``rows``, in first-seen order.

    Rows of one artifact usually share a single shape; rows that carry
    extra metrics simply widen the table, and rows missing a metric
    render an empty cell — the renderers never drop data silently.
    """
    order: list[str] = []
    for row in rows:
        for key in row:
            if key not in order:
                order.append(key)
    return order
