"""Publication-grade tables from persisted ``BENCH_*.json`` artifacts.

The benchmark targets persist machine-readable JSON artifacts (the
repo's perf-trajectory record); this package renders any of them as
markdown and LaTeX tables — the ProjectScylla ``generate_tables``
pattern — from the *same* data the regression gates run on, so the
published numbers and the gated numbers can never drift apart:

* :func:`load_artifact` — read + schema-validate one artifact
  (:mod:`repro.bench.artifact_schema` holds the per-family contracts),
* :func:`render_markdown` / :func:`render_latex` — deterministic,
  escaped, aligned table renderings (byte-identical for the same
  artifact, which CI asserts),
* :func:`write_report` — both renderings to files, the
  ``repro-partition report`` command's backend.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from repro.reporting.latex import escape_latex, render_latex
from repro.reporting.load import column_order, load_artifact
from repro.reporting.markdown import escape_markdown, render_markdown

#: The renderers by format name (the CLI's ``--format`` choices).
RENDERERS = {
    "markdown": render_markdown,
    "latex": render_latex,
}

_SUFFIXES = {"markdown": ".md", "latex": ".tex"}


def write_report(
    artifact: Mapping[str, Any],
    directory: str | Path,
    *,
    stem: str | None = None,
    formats: tuple[str, ...] = ("markdown", "latex"),
) -> list[Path]:
    """Render ``artifact`` into ``directory`` in every requested format.

    Files are named ``<stem><suffix>`` (default stem:
    ``BENCH_<family>``); returns the written paths in format order.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = stem or f"BENCH_{artifact['bench']}"
    written = []
    for name in formats:
        path = directory / f"{stem}{_SUFFIXES[name]}"
        path.write_text(RENDERERS[name](artifact))
        written.append(path)
    return written


__all__ = [
    "RENDERERS",
    "column_order",
    "escape_latex",
    "escape_markdown",
    "load_artifact",
    "render_latex",
    "render_markdown",
    "write_report",
]
