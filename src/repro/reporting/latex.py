"""LaTeX rendering of benchmark artifacts.

Emits a self-contained ``table`` float (booktabs rules) from the same
artifact document the markdown renderer reads: numeric columns
right-aligned, every cell escaped (``%``, ``&``, ``_`` and friends so a
workload named ``UserOps.get_50%`` cannot break the compile), and
missing metrics rendered as ``--`` cells.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.bench.formatting import format_cell
from repro.reporting.load import column_order

#: What a missing metric renders as in LaTeX.
MISSING_CELL = "--"

_ESCAPES = {
    "\\": r"\textbackslash{}",
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
}


def escape_latex(text: str) -> str:
    """Escape LaTeX-active characters inside one table cell."""
    out = []
    for char in text:
        out.append(_ESCAPES.get(char, char))
    return "".join(out).replace("\n", " ")


def _cell(row: Mapping[str, Any], column: str) -> str:
    if column not in row:
        return MISSING_CELL
    return escape_latex(format_cell(row[column]))


def _numeric(rows: list[Mapping[str, Any]], column: str) -> bool:
    values = [row[column] for row in rows if column in row]
    return bool(values) and all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in values if v is not None
    )


def render_latex(artifact: Mapping[str, Any]) -> str:
    """One artifact as a booktabs ``table`` float."""
    rows = list(artifact.get("rows", []))
    columns = column_order(rows)
    spec = "".join("r" if _numeric(rows, column) else "l"
                   for column in columns)
    caption = escape_latex(
        f"{artifact['bench']} (profile {artifact['profile']}, "
        f"seed {artifact['seed']}, generated {artifact['generated_at']})"
    )
    label = f"tab:bench-{artifact['bench']}"
    lines = [
        r"\begin{table}[ht]",
        r"  \centering",
        rf"  \caption{{{caption}}}",
        rf"  \label{{{label}}}",
        rf"  \begin{{tabular}}{{{spec}}}",
        r"    \toprule",
        "    " + " & ".join(
            rf"\textbf{{{escape_latex(str(column))}}}" for column in columns
        ) + r" \\",
        r"    \midrule",
    ]
    for row in rows:
        lines.append(
            "    " + " & ".join(_cell(row, column) for column in columns)
            + r" \\"
        )
    lines += [
        r"    \bottomrule",
        r"  \end{tabular}",
        r"\end{table}",
    ]
    return "\n".join(lines) + "\n"
