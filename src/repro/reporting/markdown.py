"""Markdown rendering of benchmark artifacts.

Publication-grade in the ProjectScylla ``generate_tables`` mould: one
pipe table per artifact, columns aligned by padding so the raw text
reads as cleanly as the rendered output, numeric columns right-aligned,
missing metrics rendered as em-dash cells, and every cell escaped so
workload names with pipes or asterisks cannot corrupt the table.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.bench.formatting import format_cell
from repro.reporting.load import column_order

#: What a missing metric renders as (a row without that column's key).
MISSING_CELL = "—"

_ESCAPES = {"\\": "\\\\", "|": "\\|", "*": "\\*", "_": "\\_", "`": "\\`"}


def escape_markdown(text: str) -> str:
    """Escape markdown-active characters inside one table cell."""
    out = []
    for char in text:
        out.append(_ESCAPES.get(char, char))
    return "".join(out).replace("\n", " ")


def _cell(row: Mapping[str, Any], column: str) -> str:
    if column not in row:
        return MISSING_CELL
    return escape_markdown(format_cell(row[column]))


def _numeric(rows: list[Mapping[str, Any]], column: str) -> bool:
    values = [row[column] for row in rows if column in row]
    return bool(values) and all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in values if v is not None
    )


def render_markdown(artifact: Mapping[str, Any]) -> str:
    """One artifact as a titled, aligned markdown table."""
    rows = list(artifact.get("rows", []))
    columns = column_order(rows)
    header = [escape_markdown(str(column)) for column in columns]
    body = [[_cell(row, column) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body), 3)
        if body else max(len(header[i]), 3)
        for i in range(len(columns))
    ]
    right = [_numeric(rows, column) for column in columns]

    def pad(text: str, i: int) -> str:
        return text.rjust(widths[i]) if right[i] else text.ljust(widths[i])

    lines = [
        f"## {artifact['bench']} — profile {artifact['profile']}, "
        f"seed {artifact['seed']}",
        "",
        f"_generated {artifact['generated_at']}_",
        "",
    ]
    lines.append("| " + " | ".join(pad(header[i], i)
                                   for i in range(len(columns))) + " |")
    lines.append("|" + "|".join(
        ("-" * (widths[i] + 1) + ":") if right[i] else ("-" * (widths[i] + 2))
        for i in range(len(columns))
    ) + "|")
    for line in body:
        lines.append("| " + " | ".join(pad(line[i], i)
                                       for i in range(len(columns))) + " |")
    return "\n".join(lines) + "\n"
