"""Build the linearised MIP (7) from cost coefficients.

The quadratic terms ``x[t,s] * y[a,s]`` are replaced by continuous
variables ``u[t,a,s]`` with the three inequalities of Section 2.3:

* ``u <= x``, ``u <= y`` (binding when the coefficient is negative —
  ``c1`` contains the negative transfer-rebate term), and
* ``u >= x + y - 1`` (binding when the coefficient is positive).

``u`` is created only for ``(a, t)`` pairs whose coefficient in the
objective (``c1``) or the load constraint (``c3``) is non-zero, which
keeps the model far smaller than the dense ``|A| * |T| * |S|`` bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.costmodel.coefficients import CostCoefficients
from repro.costmodel.config import WriteAccounting
from repro.exceptions import SolverError
from repro.solver.expr import LinExpr, Variable
from repro.solver.model import MipModel


@dataclass
class LinearizedModel:
    """The MIP together with the variable handles needed for extraction."""

    model: MipModel
    coefficients: CostCoefficients
    num_sites: int
    x_vars: np.ndarray  # (|T|, |S|) of Variable
    y_vars: np.ndarray  # (|A|, |S|) of Variable
    u_vars: dict[tuple[int, int, int], Variable] = field(default_factory=dict)
    m_var: Variable | None = None
    psi_vars: dict[int, Variable] = field(default_factory=dict)

    def extract(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Recover boolean ``(x, y)`` matrices from a solution vector."""
        num_transactions, num_sites = self.x_vars.shape
        num_attributes = self.y_vars.shape[0]
        x = np.zeros((num_transactions, num_sites), dtype=bool)
        y = np.zeros((num_attributes, num_sites), dtype=bool)
        for t in range(num_transactions):
            for s in range(num_sites):
                x[t, s] = values[self.x_vars[t, s].index] > 0.5
        for a in range(num_attributes):
            for s in range(num_sites):
                y[a, s] = values[self.y_vars[a, s].index] > 0.5
        return x, y

    def incumbent_vector(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Encode a known solution as a warm-start vector for the solver."""
        values = np.zeros(self.model.num_variables)
        for t in range(self.x_vars.shape[0]):
            for s in range(self.num_sites):
                values[self.x_vars[t, s].index] = float(x[t, s])
        for a in range(self.y_vars.shape[0]):
            for s in range(self.num_sites):
                values[self.y_vars[a, s].index] = float(y[a, s])
        for (t, a, s), variable in self.u_vars.items():
            values[variable.index] = float(bool(x[t, s]) and bool(y[a, s]))
        if self.m_var is not None:
            from repro.costmodel.evaluator import SolutionEvaluator

            loads = SolutionEvaluator(self.coefficients).site_loads(x, y)
            values[self.m_var.index] = float(loads.max())
        if self.psi_vars:
            values = self._fill_psi(values, x, y)
        return values

    def _fill_psi(self, values: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        indicators = self.coefficients.indicators
        owner = self.coefficients.instance.query_transaction
        home = np.argmax(x, axis=1)
        for q_index, psi in self.psi_vars.items():
            site = home[owner[q_index]]
            updated = np.flatnonzero(indicators.alpha[:, q_index] > 0)
            remote = int(y[updated].sum() - y[updated, site].sum())
            values[psi.index] = 1.0 if remote > 0 else 0.0
        return values


def build_linearized_model(
    coefficients: CostCoefficients,
    num_sites: int,
    allow_replication: bool = True,
    latency: bool = False,
    symmetry_breaking: bool = True,
) -> LinearizedModel:
    """Construct the linearised model (7).

    Parameters
    ----------
    allow_replication:
        When False, ``sum_s y[a,s] == 1`` (Table 5's disjoint variant)
        instead of ``>= 1``.
    latency:
        Add Appendix A's ``psi_q`` latency variables and constraints
        (requires ``latency_penalty > 0`` in the cost parameters to have
        any effect on the objective).
    symmetry_breaking:
        Sites are homogeneous, so transaction ``t`` may be restricted to
        sites ``0..t`` without losing any solution; prunes the search
        considerably.
    """
    if num_sites < 1:
        raise SolverError(f"need at least one site, got {num_sites}")
    parameters = coefficients.parameters
    if parameters.write_accounting is WriteAccounting.RELEVANT_ATTRIBUTES:
        raise SolverError(
            "the linearised QP only supports the ALL_ATTRIBUTES / "
            "NO_ATTRIBUTES write accounting (Section 2.1 explains why "
            "RELEVANT_ATTRIBUTES needs |A|^2 |S| extra variables)"
        )
    lam = parameters.load_balance_lambda
    num_transactions = coefficients.num_transactions
    num_attributes = coefficients.num_attributes
    instance = coefficients.instance

    model = MipModel(f"qp[{instance.name},S={num_sites}]")

    x_vars = np.empty((num_transactions, num_sites), dtype=object)
    for t in range(num_transactions):
        name = instance.transactions[t].name
        for s in range(num_sites):
            x_vars[t, s] = model.binary_variable(f"x[{name},{s}]")
    y_vars = np.empty((num_attributes, num_sites), dtype=object)
    for a in range(num_attributes):
        name = instance.attributes[a].qualified_name
        for s in range(num_sites):
            y_vars[a, s] = model.binary_variable(f"y[{name},{s}]")

    # --- placement constraints ---------------------------------------
    for t in range(num_transactions):
        model.add_constraint(
            LinExpr.from_terms((x_vars[t, s], 1.0) for s in range(num_sites)) == 1,
            name=f"place_x[{t}]",
        )
    for a in range(num_attributes):
        total = LinExpr.from_terms((y_vars[a, s], 1.0) for s in range(num_sites))
        if allow_replication:
            model.add_constraint(total >= 1, name=f"place_y[{a}]")
        else:
            model.add_constraint(total == 1, name=f"place_y[{a}]")

    # --- read co-location (single-sitedness) --------------------------
    phi = coefficients.phi_bool
    for a, t in zip(*np.nonzero(phi)):
        for s in range(num_sites):
            model.add_constraint(
                y_vars[a, s] - x_vars[t, s] >= 0, name=f"coloc[{a},{t},{s}]"
            )

    # --- linearisation variables --------------------------------------
    need_pair = (coefficients.c1 != 0) | ((lam < 1.0) & (coefficients.c3 != 0))
    if latency:
        indicators = coefficients.indicators
        write_alpha = (
            indicators.alpha * indicators.delta[None, :]
        ) @ indicators.gamma  # (|A|, |T|)
        need_pair = need_pair | (write_alpha > 0)
    u_vars: dict[tuple[int, int, int], Variable] = {}
    for a, t in zip(*np.nonzero(need_pair)):
        for s in range(num_sites):
            u = model.add_variable(f"u[{t},{a},{s}]", lower=0.0, upper=1.0)
            u_vars[(int(t), int(a), int(s))] = u
            model.add_constraint(u - x_vars[t, s] <= 0)
            model.add_constraint(u - y_vars[a, s] <= 0)
            model.add_constraint(u - x_vars[t, s] - y_vars[a, s] >= -1)

    # --- objective -----------------------------------------------------
    objective_terms: list[tuple[Variable, float]] = []
    for (t, a, s), u in u_vars.items():
        coefficient = lam * coefficients.c1[a, t]
        if coefficient != 0.0:
            objective_terms.append((u, coefficient))
    for a in range(num_attributes):
        coefficient = lam * coefficients.c2[a]
        if coefficient != 0.0:
            for s in range(num_sites):
                objective_terms.append((y_vars[a, s], coefficient))

    m_var: Variable | None = None
    if lam < 1.0:
        m_var = model.add_variable("m", lower=0.0)
        objective_terms.append((m_var, 1.0 - lam))
        for s in range(num_sites):
            load_terms: list[tuple[Variable, float]] = []
            for (t, a, s2), u in u_vars.items():
                if s2 == s and coefficients.c3[a, t] != 0.0:
                    load_terms.append((u, coefficients.c3[a, t]))
            for a in range(num_attributes):
                if coefficients.c4[a] != 0.0:
                    load_terms.append((y_vars[a, s], coefficients.c4[a]))
            load_terms.append((m_var, -1.0))
            model.add_constraint(
                LinExpr.from_terms(load_terms) <= 0, name=f"load[{s}]"
            )

    # --- Appendix A latency --------------------------------------------
    psi_vars: dict[int, Variable] = {}
    if latency and parameters.latency_penalty > 0:
        indicators = coefficients.indicators
        owner = instance.query_transaction
        frequencies = [query.frequency for query in instance.queries]
        for q_index in np.flatnonzero(indicators.delta > 0):
            t = owner[q_index]
            updated = np.flatnonzero(indicators.alpha[:, q_index] > 0)
            if updated.size == 0:
                continue
            psi = model.binary_variable(f"psi[{instance.queries[q_index].name}]")
            psi_vars[int(q_index)] = psi
            # n_q = sum_a alpha (sum_s y[a,s] - sum_s u[t,a,s])
            n_terms: list[tuple[Variable, float]] = []
            for a in updated:
                for s in range(num_sites):
                    n_terms.append((y_vars[a, s], 1.0))
                    n_terms.append((u_vars[(int(t), int(a), int(s))], -1.0))
            big_m = float(updated.size * num_sites)
            # psi <= n_q  (n = 0 forces psi = 0)
            model.add_constraint(
                LinExpr.from_terms(n_terms) - psi >= 0, name=f"psi_ub[{q_index}]"
            )
            # n_q <= M * psi  (n > 0 forces psi = 1)
            model.add_constraint(
                LinExpr.from_terms(n_terms) - big_m * psi <= 0,
                name=f"psi_lb[{q_index}]",
            )
            objective_terms.append(
                (psi, lam * parameters.latency_penalty * float(frequencies[q_index]))
            )

    # --- symmetry breaking ----------------------------------------------
    if symmetry_breaking:
        for t in range(min(num_transactions, num_sites - 1)):
            for s in range(t + 1, num_sites):
                model.add_constraint(x_vars[t, s] <= 0, name=f"sym[{t},{s}]")

    model.minimize(LinExpr.from_terms(objective_terms))
    return LinearizedModel(
        model=model,
        coefficients=coefficients,
        num_sites=num_sites,
        x_vars=x_vars,
        y_vars=y_vars,
        u_vars=u_vars,
        m_var=m_var,
        psi_vars=psi_vars,
    )
