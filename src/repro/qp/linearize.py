"""Build the linearised MIP (7) from cost coefficients.

The quadratic terms ``x[t,s] * y[a,s]`` are replaced by continuous
variables ``u[t,a,s]`` with the three inequalities of Section 2.3:

* ``u <= x``, ``u <= y`` (binding when the coefficient is negative —
  ``c1`` contains the negative transfer-rebate term), and
* ``u >= x + y - 1`` (binding when the coefficient is positive).

``u`` is created only for ``(a, t)`` pairs whose coefficient in the
objective (``c1``) or the load constraint (``c3``) is non-zero, which
keeps the model far smaller than the dense ``|A| * |T| * |S|`` bound.

Sweep-level caching
-------------------

Across the points of a parameter sweep (``p``, ``lambda``) only the
objective prices change: the placement / co-location / linearisation /
load constraints depend on the instance, the sparsity pattern of
``c1``/``c3`` and the flags, not on the parameter values.  Passing a
:class:`LinearizationCache` lets :func:`build_linearized_model` detect
this, clone the cached constraint skeleton
(:meth:`~repro.solver.model.MipModel.clone_structure`) and re-price the
objective only — the resulting model converts to exactly the same
standard arrays as a from-scratch build.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.costmodel.coefficients import CostCoefficients
from repro.costmodel.config import WriteAccounting
from repro.exceptions import SolverError
from repro.solver.expr import LinExpr, Variable
from repro.solver.model import MipModel


@dataclass
class LinearizedModel:
    """The MIP together with the variable handles needed for extraction."""

    model: MipModel
    coefficients: CostCoefficients
    num_sites: int
    x_vars: np.ndarray  # (|T|, |S|) of Variable
    y_vars: np.ndarray  # (|A|, |S|) of Variable
    u_vars: dict[tuple[int, int, int], Variable] = field(default_factory=dict)
    m_var: Variable | None = None
    psi_vars: dict[int, Variable] = field(default_factory=dict)

    def extract(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Recover boolean ``(x, y)`` matrices from a solution vector."""
        num_transactions, num_sites = self.x_vars.shape
        num_attributes = self.y_vars.shape[0]
        x = np.zeros((num_transactions, num_sites), dtype=bool)
        y = np.zeros((num_attributes, num_sites), dtype=bool)
        for t in range(num_transactions):
            for s in range(num_sites):
                x[t, s] = values[self.x_vars[t, s].index] > 0.5
        for a in range(num_attributes):
            for s in range(num_sites):
                y[a, s] = values[self.y_vars[a, s].index] > 0.5
        return x, y

    def incumbent_vector(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Encode a known solution as a warm-start vector for the solver."""
        values = np.zeros(self.model.num_variables)
        for t in range(self.x_vars.shape[0]):
            for s in range(self.num_sites):
                values[self.x_vars[t, s].index] = float(x[t, s])
        for a in range(self.y_vars.shape[0]):
            for s in range(self.num_sites):
                values[self.y_vars[a, s].index] = float(y[a, s])
        for (t, a, s), variable in self.u_vars.items():
            values[variable.index] = float(bool(x[t, s]) and bool(y[a, s]))
        if self.m_var is not None:
            from repro.costmodel.evaluator import SolutionEvaluator

            loads = SolutionEvaluator(self.coefficients).site_loads(x, y)
            values[self.m_var.index] = float(loads.max())
        if self.psi_vars:
            values = self._fill_psi(values, x, y)
        return values

    def _fill_psi(self, values: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        indicators = self.coefficients.indicators
        owner = self.coefficients.instance.query_transaction
        home = np.argmax(x, axis=1)
        for q_index, psi in self.psi_vars.items():
            site = home[owner[q_index]]
            updated = np.flatnonzero(indicators.alpha[:, q_index] > 0)
            remote = int(y[updated].sum() - y[updated, site].sum())
            values[psi.index] = 1.0 if remote > 0 else 0.0
        return values


@dataclass
class _SkeletonEntry:
    """One cached constraint skeleton plus the data proving it reusable."""

    instance: object
    indicators: object
    load_side: bool
    latency_active: bool
    need_pair: np.ndarray
    c3: np.ndarray
    c4: np.ndarray
    model: MipModel
    x_vars: np.ndarray
    y_vars: np.ndarray
    u_vars: dict[tuple[int, int, int], Variable]
    m_var: Variable | None
    psi_vars: dict[int, Variable]


#: Default number of skeletons one cache retains (LRU eviction).
DEFAULT_CACHE_CAPACITY = 8


class LinearizationCache:
    """Reuses model-(7) constraint skeletons across sweep points.

    Keyed by ``(num_sites, allow_replication, latency,
    symmetry_breaking)``; a hit additionally requires the same instance
    and indicators (by identity), the same ``lambda < 1`` /
    latency-active regime and identical ``need_pair`` / ``c3`` / ``c4``
    arrays — everything the constraint rows are built from.  A miss
    falls back to a full build and stores a fresh entry.

    Entries live in a small LRU (``capacity`` skeletons, most recently
    used first), so one long-lived cache — e.g. inside an
    :class:`~repro.api.Advisor` serving a whole batch — can hold several
    regimes at once: alternating replicated/disjoint requests, requests
    over different instances, or different ``num_sites``, without each
    regime evicting the others.  ``capacity=0`` disables the cache
    (every build misses and nothing is retained).
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if capacity < 0:
            raise SolverError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: list[tuple[tuple[int, bool, bool, bool], _SkeletonEntry]] = []
        self.hits = 0
        self.misses = 0
        #: Skeletons dropped by the LRU bound (stores beyond capacity).
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self,
        key: tuple[int, bool, bool, bool],
        coefficients: CostCoefficients,
        load_side: bool,
        latency_active: bool,
        need_pair: np.ndarray,
    ) -> _SkeletonEntry | None:
        for position, (entry_key, entry) in enumerate(self._entries):
            if (
                entry_key == key
                and entry.instance is coefficients.instance
                and entry.indicators is coefficients.indicators
                and entry.load_side == load_side
                and entry.latency_active == latency_active
                and np.array_equal(entry.need_pair, need_pair)
                and np.array_equal(entry.c3, coefficients.c3)
                and np.array_equal(entry.c4, coefficients.c4)
            ):
                if position:
                    self._entries.insert(0, self._entries.pop(position))
                self.hits += 1
                return entry
        self.misses += 1
        return None

    def store(self, key: tuple[int, bool, bool, bool], entry: _SkeletonEntry) -> None:
        if self.capacity == 0:
            return
        self._entries.insert(0, (key, entry))
        self.evictions += max(0, len(self._entries) - self.capacity)
        del self._entries[self.capacity:]

    def stats(self) -> dict[str, int]:
        """Hit/miss/evict counters as one dictionary."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


def _objective_terms(
    coefficients: CostCoefficients,
    lam: float,
    u_vars: dict[tuple[int, int, int], Variable],
    y_vars: np.ndarray,
    m_var: Variable | None,
    psi_vars: dict[int, Variable],
) -> list[tuple[Variable, float]]:
    """Objective prices of model (7) for the given variable handles.

    Shared by the from-scratch build and the cached re-pricing path so
    both produce the same expression for the same coefficients.
    """
    objective_terms: list[tuple[Variable, float]] = []
    for (t, a, s), u in u_vars.items():
        coefficient = lam * coefficients.c1[a, t]
        if coefficient != 0.0:
            objective_terms.append((u, coefficient))
    num_attributes, num_sites = y_vars.shape
    for a in range(num_attributes):
        coefficient = lam * coefficients.c2[a]
        if coefficient != 0.0:
            for s in range(num_sites):
                objective_terms.append((y_vars[a, s], coefficient))
    if coefficients.migration is not None:
        # The migration term is linear in y, so it rides on the y
        # prices (LinExpr.from_terms accumulates duplicates with c2).
        # Prices are rebuilt on every (cached or scratch) build, so the
        # skeleton cache needs no migration-aware key.
        c5 = coefficients.migration.c5
        if c5.shape != y_vars.shape:
            from repro.exceptions import SolverError

            raise SolverError(
                f"migration block spans {c5.shape} but the model has "
                f"{y_vars.shape} y variables; rebuild the block for "
                f"this site count"
            )
        for a in range(num_attributes):
            for s in range(num_sites):
                coefficient = lam * c5[a, s]
                if coefficient != 0.0:
                    objective_terms.append((y_vars[a, s], coefficient))
    if m_var is not None:
        objective_terms.append((m_var, 1.0 - lam))
    if psi_vars:
        instance = coefficients.instance
        penalty = coefficients.parameters.latency_penalty
        frequencies = [query.frequency for query in instance.queries]
        for q_index, psi in psi_vars.items():
            objective_terms.append(
                (psi, lam * penalty * float(frequencies[q_index]))
            )
    return objective_terms


def build_linearized_model(
    coefficients: CostCoefficients,
    num_sites: int,
    allow_replication: bool = True,
    latency: bool = False,
    symmetry_breaking: bool = True,
    cache: LinearizationCache | None = None,
) -> LinearizedModel:
    """Construct the linearised model (7).

    Parameters
    ----------
    allow_replication:
        When False, ``sum_s y[a,s] == 1`` (Table 5's disjoint variant)
        instead of ``>= 1``.
    latency:
        Add Appendix A's ``psi_q`` latency variables and constraints
        (requires ``latency_penalty > 0`` in the cost parameters to have
        any effect on the objective).
    symmetry_breaking:
        Sites are homogeneous, so transaction ``t`` may be restricted to
        sites ``0..t`` without losing any solution; prunes the search
        considerably.
    cache:
        Optional :class:`LinearizationCache`: when the constraint
        skeleton matches a cached build (same instance, flags and
        coefficient sparsity — only the objective prices changed, as in
        a ``p`` or ``lambda`` sweep), the skeleton is cloned and only
        the objective is rebuilt.
    """
    if num_sites < 1:
        raise SolverError(f"need at least one site, got {num_sites}")
    parameters = coefficients.parameters
    if parameters.write_accounting is WriteAccounting.RELEVANT_ATTRIBUTES:
        raise SolverError(
            "the linearised QP only supports the ALL_ATTRIBUTES / "
            "NO_ATTRIBUTES write accounting (Section 2.1 explains why "
            "RELEVANT_ATTRIBUTES needs |A|^2 |S| extra variables)"
        )
    lam = parameters.load_balance_lambda
    num_transactions = coefficients.num_transactions
    num_attributes = coefficients.num_attributes
    instance = coefficients.instance

    # --- linearisation pair pattern (also the cache signature) ---------
    need_pair = (coefficients.c1 != 0) | ((lam < 1.0) & (coefficients.c3 != 0))
    if latency:
        indicators = coefficients.indicators
        write_alpha = (
            indicators.alpha * indicators.delta[None, :]
        ) @ indicators.gamma  # (|A|, |T|)
        need_pair = need_pair | (write_alpha > 0)
    load_side = lam < 1.0
    latency_active = latency and parameters.latency_penalty > 0

    cache_key = (num_sites, allow_replication, latency, symmetry_breaking)
    if cache is not None:
        entry = cache.lookup(cache_key, coefficients, load_side, latency_active, need_pair)
        if entry is not None:
            model = entry.model.clone_structure(
                f"qp[{instance.name},S={num_sites}]"
            )
            model.minimize(
                LinExpr.from_terms(
                    _objective_terms(
                        coefficients, lam, entry.u_vars, entry.y_vars,
                        entry.m_var, entry.psi_vars,
                    )
                )
            )
            return LinearizedModel(
                model=model,
                coefficients=coefficients,
                num_sites=num_sites,
                x_vars=entry.x_vars,
                y_vars=entry.y_vars,
                u_vars=entry.u_vars,
                m_var=entry.m_var,
                psi_vars=entry.psi_vars,
            )

    model = MipModel(f"qp[{instance.name},S={num_sites}]")

    x_vars = np.empty((num_transactions, num_sites), dtype=object)
    for t in range(num_transactions):
        name = instance.transactions[t].name
        for s in range(num_sites):
            x_vars[t, s] = model.binary_variable(f"x[{name},{s}]")
    y_vars = np.empty((num_attributes, num_sites), dtype=object)
    for a in range(num_attributes):
        name = instance.attributes[a].qualified_name
        for s in range(num_sites):
            y_vars[a, s] = model.binary_variable(f"y[{name},{s}]")

    # --- placement constraints ---------------------------------------
    for t in range(num_transactions):
        model.add_constraint(
            LinExpr.from_terms((x_vars[t, s], 1.0) for s in range(num_sites)) == 1,
            name=f"place_x[{t}]",
        )
    for a in range(num_attributes):
        total = LinExpr.from_terms((y_vars[a, s], 1.0) for s in range(num_sites))
        if allow_replication:
            model.add_constraint(total >= 1, name=f"place_y[{a}]")
        else:
            model.add_constraint(total == 1, name=f"place_y[{a}]")

    # --- read co-location (single-sitedness) --------------------------
    phi = coefficients.phi_bool
    for a, t in zip(*np.nonzero(phi)):
        for s in range(num_sites):
            model.add_constraint(
                y_vars[a, s] - x_vars[t, s] >= 0, name=f"coloc[{a},{t},{s}]"
            )

    # --- linearisation variables --------------------------------------
    u_vars: dict[tuple[int, int, int], Variable] = {}
    for a, t in zip(*np.nonzero(need_pair)):
        for s in range(num_sites):
            u = model.add_variable(f"u[{t},{a},{s}]", lower=0.0, upper=1.0)
            u_vars[(int(t), int(a), int(s))] = u
            model.add_constraint(u - x_vars[t, s] <= 0)
            model.add_constraint(u - y_vars[a, s] <= 0)
            model.add_constraint(u - x_vars[t, s] - y_vars[a, s] >= -1)

    # --- max-load side ------------------------------------------------
    m_var: Variable | None = None
    if load_side:
        m_var = model.add_variable("m", lower=0.0)
        for s in range(num_sites):
            load_terms: list[tuple[Variable, float]] = []
            for (t, a, s2), u in u_vars.items():
                if s2 == s and coefficients.c3[a, t] != 0.0:
                    load_terms.append((u, coefficients.c3[a, t]))
            for a in range(num_attributes):
                if coefficients.c4[a] != 0.0:
                    load_terms.append((y_vars[a, s], coefficients.c4[a]))
            load_terms.append((m_var, -1.0))
            model.add_constraint(
                LinExpr.from_terms(load_terms) <= 0, name=f"load[{s}]"
            )

    # --- Appendix A latency --------------------------------------------
    psi_vars: dict[int, Variable] = {}
    if latency_active:
        indicators = coefficients.indicators
        for q_index in np.flatnonzero(indicators.delta > 0):
            t = instance.query_transaction[q_index]
            updated = np.flatnonzero(indicators.alpha[:, q_index] > 0)
            if updated.size == 0:
                continue
            psi = model.binary_variable(f"psi[{instance.queries[q_index].name}]")
            psi_vars[int(q_index)] = psi
            # n_q = sum_a alpha (sum_s y[a,s] - sum_s u[t,a,s])
            n_terms: list[tuple[Variable, float]] = []
            for a in updated:
                for s in range(num_sites):
                    n_terms.append((y_vars[a, s], 1.0))
                    n_terms.append((u_vars[(int(t), int(a), int(s))], -1.0))
            big_m = float(updated.size * num_sites)
            # psi <= n_q  (n = 0 forces psi = 0)
            model.add_constraint(
                LinExpr.from_terms(n_terms) - psi >= 0, name=f"psi_ub[{q_index}]"
            )
            # n_q <= M * psi  (n > 0 forces psi = 1)
            model.add_constraint(
                LinExpr.from_terms(n_terms) - big_m * psi <= 0,
                name=f"psi_lb[{q_index}]",
            )

    # --- symmetry breaking ----------------------------------------------
    if symmetry_breaking:
        for t in range(min(num_transactions, num_sites - 1)):
            for s in range(t + 1, num_sites):
                model.add_constraint(x_vars[t, s] <= 0, name=f"sym[{t},{s}]")

    model.minimize(
        LinExpr.from_terms(
            _objective_terms(coefficients, lam, u_vars, y_vars, m_var, psi_vars)
        )
    )
    if cache is not None:
        cache.store(
            cache_key,
            _SkeletonEntry(
                instance=instance,
                indicators=coefficients.indicators,
                load_side=load_side,
                latency_active=latency_active,
                need_pair=need_pair,
                c3=coefficients.c3,
                c4=coefficients.c4,
                model=model,
                x_vars=x_vars,
                y_vars=y_vars,
                u_vars=u_vars,
                m_var=m_var,
                psi_vars=psi_vars,
            ),
        )
    return LinearizedModel(
        model=model,
        coefficients=coefficients,
        num_sites=num_sites,
        x_vars=x_vars,
        y_vars=y_vars,
        u_vars=u_vars,
        m_var=m_var,
        psi_vars=psi_vars,
    )
