"""The QP solver: the paper's linearised quadratic program (Section 2).

:func:`build_linearized_model` constructs model (7) — with optional
disjointness (Table 5), local placement (Table 6, via ``p = 0`` in the
cost parameters) and the Appendix-A latency extension — and
:class:`QpPartitioner` solves it with a MIP backend.
"""

from repro.qp.linearize import LinearizationCache, LinearizedModel, build_linearized_model
from repro.qp.solver import QpPartitioner, solve_qp

__all__ = [
    "LinearizationCache",
    "LinearizedModel",
    "build_linearized_model",
    "QpPartitioner",
    "solve_qp",
]
