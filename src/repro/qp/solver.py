"""The QP partitioner: solve the linearised model with a MIP backend."""

from __future__ import annotations

import time

import numpy as np

from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.exceptions import SolverError, SolverLimitError
from repro.model.instance import ProblemInstance
from repro.partition.assignment import PartitioningResult
from repro.qp.linearize import LinearizationCache, build_linearized_model
from repro.solver.solution import SolutionStatus

#: The paper's MIP tolerance gap (Section 5: 0.1%).
PAPER_GAP = 1e-3


class QpPartitioner:
    """Optimal (to within a MIP gap) vertical partitioning via model (7).

    >>> from repro.instances import tpcc_instance
    >>> partitioner = QpPartitioner(tpcc_instance(), num_sites=2)
    >>> result = partitioner.solve(time_limit=60)   # doctest: +SKIP
    """

    def __init__(
        self,
        instance: ProblemInstance | CostCoefficients,
        num_sites: int,
        parameters: CostParameters | None = None,
        allow_replication: bool = True,
        latency: bool = False,
        symmetry_breaking: bool = True,
        linearization_cache: LinearizationCache | None = None,
    ):
        if isinstance(instance, CostCoefficients):
            self.coefficients = instance
            if parameters is not None and parameters != instance.parameters:
                raise SolverError(
                    "pass either prebuilt coefficients or parameters, not "
                    "conflicting versions of both"
                )
        else:
            self.coefficients = build_coefficients(instance, parameters)
        self.num_sites = num_sites
        self.allow_replication = allow_replication
        self.latency = latency
        self.symmetry_breaking = symmetry_breaking
        self.linearized = build_linearized_model(
            self.coefficients,
            num_sites,
            allow_replication=allow_replication,
            latency=latency,
            symmetry_breaking=symmetry_breaking,
            cache=linearization_cache,
        )

    @property
    def model_size(self) -> dict[str, int]:
        """Variable/constraint counts of the linearised model."""
        model = self.linearized.model
        return {
            "variables": model.num_variables,
            "integer_variables": model.num_integer_variables,
            "constraints": model.num_constraints,
            "u_variables": len(self.linearized.u_vars),
        }

    @staticmethod
    def estimate_model_size(
        coefficients: CostCoefficients,
        num_sites: int,
        allow_replication: bool = True,
        latency: bool = False,
        symmetry_breaking: bool = True,
    ) -> dict[str, int]:
        """:attr:`model_size` computed without building the model.

        Counts the variables and constraint rows
        :func:`~repro.qp.linearize.build_linearized_model` would create,
        from the coefficient sparsity alone — cheap enough to drive the
        ``"auto"`` strategy's QP-vs-SA cutoff (the paper's Section VI
        scalability limit) on every request.
        """
        parameters = coefficients.parameters
        lam = parameters.load_balance_lambda
        num_transactions = coefficients.num_transactions
        num_attributes = coefficients.num_attributes
        indicators = coefficients.indicators

        need_pair = (coefficients.c1 != 0) | ((lam < 1.0) & (coefficients.c3 != 0))
        num_psi = 0
        latency_active = latency and parameters.latency_penalty > 0
        if latency:
            write_alpha = (
                indicators.alpha * indicators.delta[None, :]
            ) @ indicators.gamma
            need_pair = need_pair | (write_alpha > 0)
        if latency_active:
            for q_index in np.flatnonzero(indicators.delta > 0):
                if (indicators.alpha[:, q_index] > 0).any():
                    num_psi += 1
        load_side = lam < 1.0

        num_u = int(need_pair.sum()) * num_sites
        num_binary = (num_transactions + num_attributes) * num_sites + num_psi
        num_variables = num_u + num_binary + (1 if load_side else 0)
        num_symmetry = sum(
            num_sites - (t + 1)
            for t in range(min(num_transactions, num_sites - 1))
        )
        num_constraints = (
            num_transactions  # place_x
            + num_attributes  # place_y (>= or == depending on replication)
            + int(coefficients.phi_bool.sum()) * num_sites  # co-location
            + 3 * num_u  # linearisation triples
            + (num_sites if load_side else 0)  # load rows
            + 2 * num_psi  # psi bounds
            + (num_symmetry if symmetry_breaking else 0)
        )
        return {
            "variables": num_variables,
            "integer_variables": num_binary,
            "constraints": num_constraints,
            "u_variables": num_u,
        }

    def _greedy_warm_start(self) -> PartitioningResult:
        """A feasible starting solution from the SA greedy sub-solvers."""
        import numpy as np

        from repro.costmodel.evaluator import SolutionEvaluator
        from repro.sa.subsolve import SubproblemSolver

        subsolver = SubproblemSolver(self.coefficients, self.num_sites)
        num_transactions = self.coefficients.num_transactions
        x = np.zeros((num_transactions, self.num_sites), dtype=bool)
        if self.allow_replication:
            x[np.arange(num_transactions),
              np.arange(num_transactions) % self.num_sites] = True
        else:
            x[:, 0] = True  # trivially co-locatable without replication
        y = subsolver.optimize_y_greedy(x, disjoint=not self.allow_replication)
        evaluator = SolutionEvaluator(self.coefficients)
        return PartitioningResult(
            coefficients=self.coefficients,
            x=x,
            y=y,
            objective=evaluator.objective4(x, y),
            solver="greedy-warmstart",
        )

    def solve(
        self,
        time_limit: float | None = None,
        gap: float = PAPER_GAP,
        backend: str = "auto",
        warm_start: PartitioningResult | None = None,
    ) -> PartitioningResult:
        """Solve and return the best partitioning found.

        Raises :class:`SolverLimitError` when the time limit passes with
        no feasible solution (the paper's "t/o" cells).
        """
        started = time.perf_counter()
        incumbent = None
        if warm_start is None and backend == "scratch":
            # The from-scratch branch & bound rarely stumbles on an
            # integer-feasible node of the linearised model by itself
            # (rounding x/y breaks co-location), so seed it with a
            # greedy feasible solution.
            warm_start = self._greedy_warm_start()
        if warm_start is not None:
            if warm_start.num_sites != self.num_sites:
                raise SolverError(
                    f"warm start has {warm_start.num_sites} sites, "
                    f"model has {self.num_sites}"
                )
            if self.symmetry_breaking:
                # The symmetry-breaking cuts may exclude the warm start's
                # site labelling; relabel sites into canonical order.
                warm_x, warm_y = _canonical_site_order(warm_start.x, warm_start.y)
            else:
                warm_x, warm_y = warm_start.x, warm_start.y
            incumbent = self.linearized.incumbent_vector(warm_x, warm_y)
        solution = self.linearized.model.solve(
            backend=backend,
            time_limit=time_limit,
            gap=gap,
            incumbent=incumbent,
        )
        wall_time = time.perf_counter() - started
        if not solution.status.has_solution:
            if solution.status is SolutionStatus.NO_SOLUTION:
                raise SolverLimitError(
                    f"QP solver found no integer solution within limits "
                    f"(model {self.linearized.model.name})"
                )
            raise SolverError(
                f"QP solve failed with status {solution.status.value} "
                f"(model {self.linearized.model.name})"
            )
        x, y = self.linearized.extract(solution.values)
        evaluator = SolutionEvaluator(self.coefficients)
        return PartitioningResult(
            coefficients=self.coefficients,
            x=x,
            y=y,
            objective=evaluator.objective4(x, y),
            solver="qp",
            wall_time=wall_time,
            proven_optimal=solution.status is SolutionStatus.OPTIMAL,
            metadata={
                "backend": solution.backend,
                "mip_objective6": solution.objective,
                "mip_bound": solution.bound,
                "mip_gap": solution.gap,
                "nodes": solution.nodes,
                **self.model_size,
            },
        )


def _canonical_site_order(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Permute site columns so transaction 0 is at site 0, etc.

    Matches the symmetry-breaking cuts ``x[t,s] = 0 for s > t``: sites
    are ordered by the smallest transaction index they host (unused
    sites last).
    """
    num_sites = x.shape[1]
    first_transaction = []
    for s in range(num_sites):
        hosted = np.flatnonzero(x[:, s])
        first_transaction.append(int(hosted[0]) if hosted.size else x.shape[0] + s)
    order = np.argsort(first_transaction, kind="stable")
    return x[:, order], y[:, order]


def solve_qp(
    instance: ProblemInstance | CostCoefficients,
    num_sites: int,
    parameters: CostParameters | None = None,
    allow_replication: bool = True,
    latency: bool = False,
    time_limit: float | None = None,
    gap: float = PAPER_GAP,
    backend: str = "auto",
    warm_start: PartitioningResult | None = None,
) -> PartitioningResult:
    """One-call convenience wrapper: a thin shim over the unified
    advisor API (``advise`` with strategy ``"qp"``), kept for
    compatibility and pinned by test to return the same result as the
    direct :class:`QpPartitioner` call.

    Prebuilt :class:`CostCoefficients` skip the advisor (which would
    rebuild them from the instance) and go to the partitioner directly.
    """
    from repro.api.advisor import advise
    from repro.api.request import SolveRequest

    if isinstance(instance, CostCoefficients):
        return QpPartitioner(
            instance,
            num_sites,
            parameters=parameters,
            allow_replication=allow_replication,
            latency=latency,
        ).solve(
            time_limit=time_limit, gap=gap, backend=backend,
            warm_start=warm_start,
        )
    request = SolveRequest(
        instance=instance,
        num_sites=num_sites,
        parameters=parameters or CostParameters(),
        allow_replication=allow_replication,
        strategy="qp",
        options={"latency": latency, "gap": gap, "backend": backend},
        time_limit=time_limit,
    )
    return advise(request, warm_start=warm_start).result
