"""Command-line interface.

Installed as ``repro-partition`` (also ``python -m repro``):

* ``repro-partition info tpcc`` — instance statistics,
* ``repro-partition advise --instance tpcc --sites 3 --solver qp`` —
  compute and print a partitioning (``--solver`` takes any registered
  strategy: ``qp``, ``sa``, ``sa-portfolio``, ``auto``, the baselines,
  or a ``->`` chain such as ``sa-portfolio->qp``),
* ``repro-partition advise --schema schema.sql --workload load.sql ...``
  — partition a user-supplied SQL workload,
* ``repro-partition bench table3`` — regenerate a paper table,
* ``repro-partition report BENCH_calibration.json`` — render any
  persisted ``BENCH_*.json`` benchmark artifact as a publication-grade
  markdown or LaTeX table,
* ``repro-partition worker --connect HOST:PORT`` — serve as a remote
  restart worker for an advisor running ``--backend socket``,
* ``repro-partition serve`` — run the async advisor service
  (coalescing, admission control, load shedding) on loopback TCP,
* ``repro-partition request --connect HOST:PORT ...`` — solve one
  request against a running service (same solve flags as ``advise``).

Every solve is served through :func:`repro.api.advise`, the same
entry point the benchmarks, sweeps and library callers use.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api import Advisor, SolveRequest, default_registry
from repro.bench.config import get_profile
from repro.bench.runner import TABLE_FUNCTIONS, run_table
from repro.bench.formatting import render_table
from repro.costmodel.config import CostParameters
from repro.exceptions import ReproError
from repro.instances.library import instance_catalog, named_instance
from repro.model.statistics import describe_instance
from repro.partition.assignment import single_site_partitioning
from repro.partition.layout import layout_summary, render_layout
from repro.sqlio.workload_loader import load_instance_from_sql

#: Strategies that understand --restarts/--jobs (SA portfolio knobs).
_PORTFOLIO_STRATEGIES = ("sa", "sa-portfolio", "auto")


def _load_instance(args: argparse.Namespace):
    if args.schema or args.workload:
        if not (args.schema and args.workload):
            raise ReproError("--schema and --workload must be given together")
        schema_sql = Path(args.schema).read_text()
        workload_sql = Path(args.workload).read_text()
        return load_instance_from_sql(
            schema_sql, workload_sql, name=Path(args.workload).stem
        )
    return named_instance(args.instance)


def _cmd_info(args: argparse.Namespace) -> int:
    instance = _load_instance(args)
    stats = describe_instance(instance)
    for key, value in stats.as_dict().items():
        print(f"{key:>12}: {value}")
    return 0


def _advise_request(
    args: argparse.Namespace, instance, parameters: CostParameters
) -> SolveRequest:
    """Map the CLI flags onto one :class:`SolveRequest`."""
    strategy = args.solver
    stages = [part.strip() for part in strategy.split("->")]
    registry = default_registry()
    for stage in stages:
        if stage not in registry:
            raise ReproError(
                f"unknown solver {stage!r}; registered: "
                f"{', '.join(registry.names())}"
            )
    time_limit = args.time_limit
    portfolio = {}
    if args.restarts is not None:
        portfolio["restarts"] = args.restarts
    if args.jobs is not None:
        portfolio["jobs"] = args.jobs
    if args.backend is not None:
        portfolio["backend"] = args.backend
    if args.workers is not None:
        portfolio["workers"] = args.workers
    if args.prune:
        portfolio["prune"] = True

    if "restarts" in portfolio and not any(
        stage in _PORTFOLIO_STRATEGIES or stage == "hillclimb"
        for stage in stages
    ):
        raise ReproError(
            "--restarts configures the SA multi-start portfolio (or the "
            "hillclimb baseline); use an SA-family solver with it"
        )
    for flag, key in (
        ("--jobs", "jobs"),
        ("--backend", "backend"),
        ("--workers", "workers"),
        ("--prune", "prune"),
    ):
        if key in portfolio and not any(
            stage in _PORTFOLIO_STRATEGIES for stage in stages
        ):
            raise ReproError(
                f"{flag} configures the SA multi-start portfolio; use an "
                f"SA-family solver with it"
            )

    def stage_options(stage: str) -> dict:
        if stage in _PORTFOLIO_STRATEGIES:
            return dict(portfolio)
        if stage == "hillclimb" and "restarts" in portfolio:
            return {"restarts": args.restarts}
        if stage in ("qp", "qp-heavy") and time_limit is None:
            # The CLI's historical implicit MIP budget, scoped to the
            # stage so SA stages of a chain stay unbudgeted (and hence
            # deterministic per fixed seed).
            return {"time_limit": 60.0}
        return {}

    if len(stages) == 1:
        options = stage_options(stages[0])
    else:
        options = {stage: stage_options(stage) for stage in stages}
    if args.compress_tolerance is not None and args.compress != "lossy":
        raise ReproError(
            "--compress-tolerance only applies to --compress lossy"
        )
    current_layout = None
    if args.current_layout is not None:
        from repro.partition.current_layout import CurrentLayout

        current_layout = CurrentLayout.from_json(
            Path(args.current_layout).read_text()
        )
    elif args.migration_cost:
        raise ReproError(
            "--migration-cost needs --current-layout (the incumbent the "
            "move cost is measured against)"
        )
    return SolveRequest(
        instance=instance,
        num_sites=args.sites,
        parameters=parameters,
        allow_replication=not args.disjoint,
        strategy=strategy,
        options=options,
        seed=args.seed,
        time_limit=time_limit,
        compression=args.compress,
        compression_tolerance=(
            args.compress_tolerance if args.compress_tolerance is not None
            else 0.0
        ),
        current_layout=current_layout,
        migration_cost=args.migration_cost,
    )


def _solve_parameters(args: argparse.Namespace) -> CostParameters:
    return CostParameters(
        network_penalty=args.penalty,
        # The flag is the load-balance *priority*; the model's lambda
        # weights cost (see DESIGN.md on the paper's inverted notation).
        load_balance_lambda=1.0 - args.load_balance,
    )


def _print_report(args: argparse.Namespace, instance, report, baseline) -> None:
    result = report.result
    reduction = 100.0 * (1.0 - result.objective / baseline.objective)
    print(f"instance      : {instance.name}")
    print(f"solver        : {result.solver} ({result.wall_time:.2f}s)")
    if report.degraded_from is not None:
        print(f"shedding      : degraded from {report.degraded_from} "
              f"(service was under queue pressure)")
    if report.strategy != args.solver:
        print(f"strategy      : {args.solver} -> resolved {report.strategy}")
    if result.metadata.get("auto_source") == "calibration":
        print(f"calibrated    : routed by "
              f"{result.metadata.get('auto_calibration_observations', 0)} "
              f"recorded observations")
    if result.metadata.get("restarts", 1) > 1:
        pruned = result.metadata.get("pruned_restarts", 0)
        requeued = result.metadata.get("requeue_count", 0)
        print(
            f"portfolio     : best-of-{result.metadata['restarts']} "
            f"(restart {result.metadata['best_restart']} won, "
            f"jobs={result.metadata['jobs']}, "
            f"{result.metadata['executor']} executor"
            + (f", {pruned} pruned" if pruned else "")
            + (f", {requeued} requeued after faults" if requeued else "")
            + ")"
        )
    if args.compress != "off":
        ratio = result.metadata.get("compression_ratio", 1.0)
        skipped = result.metadata.get("compression_skipped")
        if skipped:
            print(f"compression   : skipped ({skipped})")
        elif ratio > 1.0:
            bound = result.metadata.get("objective_error_bound", 0.0)
            print(
                f"compression   : {args.compress} "
                f"{result.metadata['original_transactions']} -> "
                f"{result.metadata['compressed_transactions']} transactions "
                f"({ratio:.1f}x, error bound {bound:.0f})"
            )
        else:
            print(f"compression   : {args.compress} (nothing to merge)")
    print(f"sites         : {args.sites}")
    print(f"objective (4) : {result.objective:.0f}")
    print(f"single-site   : {baseline.objective:.0f}  (reduction {reduction:.1f}%)")
    print(f"replication   : {result.replication_factor:.2f} replicas/attribute")
    print()
    print(layout_summary(result))
    if args.layout:
        print()
        print(render_layout(result))


def _load_calibration(args: argparse.Namespace):
    """The persisted calibration table named by ``--calibration``.

    A missing file is an empty table (first run of a growing history);
    a corrupt or unknown-version file is a hard error — silently
    starting over would discard the recorded performance history.
    """
    if args.calibration is None:
        return None
    from repro.calibration import CalibrationTable

    path = Path(args.calibration)
    if not path.exists():
        return CalibrationTable()
    return CalibrationTable.load(path)


def _cmd_advise(args: argparse.Namespace) -> int:
    if args.record_calibration and args.calibration is None:
        raise ReproError(
            "--record-calibration needs --calibration (the table file "
            "the observation is appended to)"
        )
    instance = _load_instance(args)
    parameters = _solve_parameters(args)
    calibration = _load_calibration(args)
    advisor = Advisor(calibration=calibration)
    coefficients = advisor.coefficient_cache(instance).coefficients(parameters)
    baseline = single_site_partitioning(coefficients)
    # No implicit SA budget: without an explicit --time-limit every
    # restart runs to completion, keeping fixed-seed runs deterministic;
    # with one, it bounds the whole solve (QP limit defaults to 60s).
    report = advisor.advise(_advise_request(args, instance, parameters))
    _print_report(args, instance, report, baseline)
    if calibration is not None and args.record_calibration:
        calibration.save(args.calibration)
        print(f"calibration   : {len(calibration)} observations -> "
              f"{args.calibration}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a persisted ``BENCH_*.json`` artifact as tables."""
    from repro.reporting import RENDERERS, load_artifact, write_report

    artifact = load_artifact(args.artifact)
    formats = (
        tuple(RENDERERS) if args.format == "both" else (args.format,)
    )
    if args.output is None:
        for name in formats:
            print(RENDERERS[name](artifact))
        return 0
    written = write_report(
        artifact, args.output, stem=Path(args.artifact).stem, formats=formats
    )
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Delegate to ``python -m repro.service`` (same flags)."""
    from repro.service.__main__ import main as service_main

    argv = ["--host", args.host, "--port", str(args.port),
            "--max-pending", str(args.max_pending),
            "--rate", str(args.rate), "--burst", str(args.burst),
            "--result-cache", str(args.result_cache),
            "--shed-threshold", str(args.shed_threshold),
            "--shed-hard-threshold", str(args.shed_hard_threshold)]
    if args.coefficient_cache is not None:
        argv += ["--coefficient-cache", str(args.coefficient_cache)]
    if args.shed_sa_options:
        argv += ["--shed-sa-options", args.shed_sa_options]
    return service_main(argv)


def _cmd_request(args: argparse.Namespace) -> int:
    """Solve one request against a running advisor service."""
    from repro.service.client import ServiceClient

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(
            f"--connect takes HOST:PORT, got {args.connect!r}"
        )
    instance = _load_instance(args)
    parameters = _solve_parameters(args)
    request = _advise_request(args, instance, parameters)
    with ServiceClient(host, int(port), client=args.client) as service:
        report = service.advise(request)
    # The client-side report carries canonically rebuilt coefficients;
    # the baseline comes from those, exactly as advise computes it.
    baseline = single_site_partitioning(report.result.coefficients)
    _print_report(args, instance, report, baseline)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Delegate to ``python -m repro.sa.worker`` (same flags)."""
    from repro.sa.worker import main as worker_main

    argv = ["--connect", args.connect]
    if args.fault_plan:
        argv += ["--fault-plan", args.fault_plan]
    return worker_main(argv)


def _cmd_bench(args: argparse.Namespace) -> int:
    profile = get_profile(args.profile)
    for target in args.targets:
        table = run_table(target, profile)
        print(render_table(table))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-partition",
        description="Vertical partitioning advisor (Amossen, ICDE 2010 "
        "reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_instance_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--instance", default="tpcc",
            help=f"named instance ({', '.join(instance_catalog()[:4])}, ...)",
        )
        sub.add_argument("--schema", help="path to CREATE TABLE SQL")
        sub.add_argument("--workload", help="path to annotated DML SQL")

    info = subparsers.add_parser("info", help="print instance statistics")
    add_instance_args(info)
    info.set_defaults(func=_cmd_info)

    def add_solve_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--sites", type=int, default=2)
        sub.add_argument("--solver", default="sa",
                            help="registered strategy: qp, sa, sa-portfolio, "
                            "auto (model-size cutoff picks qp or sa), greedy, "
                            "affinity, hillclimb, round-robin — or a chain "
                            "like 'sa-portfolio->qp' where each stage "
                            "warm-starts the next (default: sa)")
        sub.add_argument("--penalty", type=float, default=8.0,
                            help="network penalty p (0 = local placement)")
        sub.add_argument("--load-balance", type=float, default=0.1,
                            help="load-balance priority in [0,1]: 0 = pure "
                            "cost minimisation, 1 = pure max-load balancing "
                            "(the paper's Section-5 setting is 0.1)")
        sub.add_argument("--disjoint", action="store_true",
                            help="forbid attribute replication")
        sub.add_argument("--time-limit", type=float, default=None,
                            help="wall-clock budget in seconds: caps the QP "
                            "solve (default 60) or, with --restarts > 1, the "
                            "whole SA portfolio (default: no budget — "
                            "truncation would make fixed-seed runs "
                            "machine-dependent)")
        sub.add_argument("--seed", type=int, default=None)
        sub.add_argument("--restarts", type=int, default=None,
                            help="SA multi-start portfolio size: run N "
                            "independently seeded anneals and keep the best "
                            "(deterministic for a fixed --seed; --time-limit "
                            "bounds the whole portfolio)")
        sub.add_argument("--jobs", type=int, default=None,
                            help="worker processes for --restarts > 1 "
                            "(results are identical for any value, only "
                            "wall-clock changes)")
        sub.add_argument("--backend", default=None,
                            help="portfolio execution backend: serial, "
                            "process, thread, queue or socket (default: "
                            "serial for one worker slot, process otherwise; "
                            "results are identical whatever the backend — "
                            "socket drives spawned "
                            "'python -m repro.sa.worker' processes over "
                            "loopback TCP with heartbeat liveness and "
                            "bounded retries)")
        sub.add_argument("--workers", type=int, default=None,
                            help="worker processes for --backend socket "
                            "(default: the --jobs slots; 0 = degraded "
                            "in-driver mode; results identical either way)")
        sub.add_argument("--prune", action="store_true",
                            help="early-prune portfolio restarts the shared "
                            "incumbent proves unable to beat the best found "
                            "(skips work only — never changes the result)")
        sub.add_argument("--compress", choices=("off", "lossless", "lossy"),
                            default="off",
                            help="compress the workload before solving: "
                            "lossless merges bit-identical transaction "
                            "signatures (objective provably unchanged under "
                            "pure cost minimisation), lossy also merges "
                            "near-duplicates within --compress-tolerance; "
                            "the reported objective is always re-evaluated "
                            "on the original instance")
        sub.add_argument("--compress-tolerance", type=float, default=None,
                            help="lossy-tier error budget as a fraction of "
                            "the single-site cost (requires --compress "
                            "lossy)")
        sub.add_argument("--current-layout", default=None, metavar="JSON",
                            help="path to the incumbent layout (the JSON "
                            "document CurrentLayout.to_json writes): the "
                            "objective gains the one-time --migration-cost "
                            "move term and SA warm-starts from it")
        sub.add_argument("--migration-cost", type=float, default=0.0,
                            help="per-byte weight of moving attribute data "
                            "to a replica the incumbent lacks (requires "
                            "--current-layout; 0 = the layout only seeds "
                            "the warm start)")
        sub.add_argument("--layout", action="store_true",
                            help="print the full Table-4-style layout")
    advise = subparsers.add_parser("advise", help="compute a partitioning")
    add_instance_args(advise)
    add_solve_args(advise)
    advise.add_argument("--calibration", default=None, metavar="JSON",
                        help="persisted calibration table (the document "
                        "CalibrationTable.to_json writes, or the one "
                        "embedded in BENCH_calibration.json's "
                        "'calibration' key after extraction): 'auto' "
                        "routes on its recorded evidence instead of the "
                        "model-size cutoff alone; a missing file is an "
                        "empty table, a corrupt one is an error")
    advise.add_argument("--record-calibration", action="store_true",
                        help="after solving, append this solve's "
                        "observation to --calibration and save it back "
                        "(grows the table run over run)")
    advise.set_defaults(func=_cmd_advise)

    bench = subparsers.add_parser("bench", help="regenerate paper tables")
    bench.add_argument("targets", nargs="+", choices=list(TABLE_FUNCTIONS))
    bench.add_argument("--profile", choices=("quick", "paper"), default=None)
    bench.set_defaults(func=_cmd_bench)

    report = subparsers.add_parser(
        "report",
        help="render a persisted BENCH_*.json artifact as publication "
        "tables (markdown / LaTeX)",
    )
    report.add_argument("artifact", metavar="BENCH_JSON",
                        help="path to a BENCH_*.json benchmark artifact")
    report.add_argument("--format", choices=("markdown", "latex", "both"),
                        default="markdown",
                        help="rendering(s) to produce (default: markdown)")
    report.add_argument("--output", default=None, metavar="DIR",
                        help="write <artifact-stem>.md/.tex files into DIR "
                        "instead of printing to stdout")
    report.set_defaults(func=_cmd_report)

    worker = subparsers.add_parser(
        "worker",
        help="run as a socket-transport restart worker "
        "(one box of a multi-box portfolio)",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="driver address to dial")
    worker.add_argument("--fault-plan", default=None, metavar="JSON",
                        help="JSON FaultPlan for the chaos test suite "
                        "(worker-side actions only)")
    worker.set_defaults(func=_cmd_worker)

    serve = subparsers.add_parser(
        "serve",
        help="run the async advisor service (request coalescing, "
        "admission control, load shedding) on loopback TCP",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="port to bind (default: 0 = pick a free one; "
                       "the bound address is printed once listening)")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="bounded pending-solve queue depth")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="per-client requests/second (0 disables)")
    serve.add_argument("--burst", type=int, default=8,
                       help="per-client token-bucket burst size")
    serve.add_argument("--result-cache", type=int, default=128,
                       help="result-cache capacity (0 disables)")
    serve.add_argument("--coefficient-cache", type=int, default=None,
                       help="advisor coefficient-cache capacity "
                       "(default: unbounded)")
    serve.add_argument("--shed-threshold", type=int, default=0,
                       help="queue depth that starts light shedding "
                       "(qp-family requests served by sa-portfolio; "
                       "0 disables shedding)")
    serve.add_argument("--shed-hard-threshold", type=int, default=0,
                       help="queue depth that starts hard shedding "
                       "(degradable requests served by greedy)")
    serve.add_argument("--shed-sa-options", default=None, metavar="JSON",
                       help="options for shed sa/sa-portfolio runs")
    serve.set_defaults(func=_cmd_serve)

    request = subparsers.add_parser(
        "request",
        help="solve one request against a running advisor service "
        "(same solve flags as advise)",
    )
    request.add_argument("--connect", required=True, metavar="HOST:PORT",
                         help="service address to dial")
    request.add_argument("--client", default=None,
                         help="client id for per-client rate limiting "
                         "(default: one per connection)")
    add_instance_args(request)
    add_solve_args(request)
    request.set_defaults(func=_cmd_request)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
