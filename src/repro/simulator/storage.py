"""Row-store storage layer for the execution simulator.

Each site stores, per table, a *fraction*: the locally resident subset
of the table's attributes. Rows of a fraction are fixed-width byte
records in a contiguous buffer — reading a row touches the whole local
record (that is the row-store behaviour the paper's cost model charges
for), writing rewrites it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.model.schema import Attribute

#: Default number of rows materialised per table fraction.
DEFAULT_CAPACITY = 128


class FractionStore:
    """Fixed-width row storage for one table fraction on one site."""

    def __init__(
        self,
        table: str,
        attributes: tuple[Attribute, ...],
        capacity: int = DEFAULT_CAPACITY,
    ):
        if not attributes:
            raise SimulationError(f"empty fraction for table {table!r}")
        self.table = table
        self.attributes = attributes
        self.capacity = capacity
        # Attribute widths may be fractional averages; the record width
        # used for buffer allocation is rounded up, but byte accounting
        # uses the exact float widths so it matches the cost model.
        self.row_width = float(sum(attribute.width for attribute in attributes))
        self._record_bytes = max(1, int(-(-self.row_width // 1)))
        self._buffer = bytearray(self._record_bytes * capacity)
        self._offsets: dict[str, tuple[int, int]] = {}
        offset = 0
        for attribute in attributes:
            width = max(1, int(-(-attribute.width // 1)))
            self._offsets[attribute.name] = (offset, width)
            offset += width
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.rows_read = 0
        self.rows_written = 0

    def has_attribute(self, name: str) -> bool:
        return name in self._offsets

    def read_rows(self, count: float) -> float:
        """Read ``count`` rows; returns (and accounts) the bytes touched.

        The storage layer physically touches whole local records: the
        buffer slice is materialised to emulate the row-store access
        path; the returned byte count uses the exact fractional widths.
        """
        whole = int(count)
        for row in range(min(whole, self.capacity)):
            start = row * self._record_bytes
            _ = self._buffer[start : start + self._record_bytes]
        touched = self.row_width * count
        self.bytes_read += touched
        self.rows_read += whole
        return touched

    def write_rows(self, count: float, payload: int = 0x5A) -> float:
        """Write ``count`` full records; returns the bytes written."""
        whole = int(count)
        for row in range(min(whole, self.capacity)):
            start = row * self._record_bytes
            self._buffer[start : start + self._record_bytes] = bytes(
                [payload & 0xFF]
            ) * self._record_bytes
        touched = self.row_width * count
        self.bytes_written += touched
        self.rows_written += whole
        return touched

    def attribute_width(self, name: str) -> float:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute.width
        raise SimulationError(
            f"fraction {self.table!r} has no attribute {name!r}"
        )

    def __repr__(self) -> str:
        names = ",".join(attribute.name for attribute in self.attributes[:4])
        suffix = ",..." if len(self.attributes) > 4 else ""
        return f"FractionStore({self.table}[{names}{suffix}], w={self.row_width:g})"


@dataclass
class SiteStorage:
    """All table fractions resident on one site."""

    site: int
    fractions: dict[str, FractionStore] = field(default_factory=dict)

    def fraction(self, table: str) -> FractionStore | None:
        return self.fractions.get(table)

    def add_fraction(self, fraction: FractionStore) -> None:
        if fraction.table in self.fractions:
            raise SimulationError(
                f"site {self.site} already stores a fraction of "
                f"{fraction.table!r}"
            )
        self.fractions[fraction.table] = fraction

    @property
    def bytes_read(self) -> float:
        return sum(fraction.bytes_read for fraction in self.fractions.values())

    @property
    def bytes_written(self) -> float:
        return sum(fraction.bytes_written for fraction in self.fractions.values())

    @property
    def local_bytes(self) -> float:
        return self.bytes_read + self.bytes_written
