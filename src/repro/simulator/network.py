"""Simulated network: per-link byte counters for replica shipping."""

from __future__ import annotations

from collections import defaultdict

from repro.exceptions import SimulationError


class Network:
    """Counts bytes transferred between sites.

    Transfers are attributed to directed ``(source, destination)`` links;
    ``total_bytes`` is the paper's ``B`` (unweighted by the penalty
    ``p``).
    """

    def __init__(self, num_sites: int):
        if num_sites < 1:
            raise SimulationError("network needs at least one site")
        self.num_sites = num_sites
        self._links: dict[tuple[int, int], float] = defaultdict(float)
        self.messages = 0

    def transfer(self, source: int, destination: int, num_bytes: float) -> None:
        if source == destination:
            raise SimulationError("a site never transfers to itself")
        for site in (source, destination):
            if not 0 <= site < self.num_sites:
                raise SimulationError(f"site {site} out of range")
        if num_bytes < 0:
            raise SimulationError("cannot transfer a negative byte count")
        self._links[(source, destination)] += num_bytes
        self.messages += 1

    @property
    def total_bytes(self) -> float:
        return sum(self._links.values())

    def link_bytes(self, source: int, destination: int) -> float:
        return self._links.get((source, destination), 0.0)

    def busiest_link(self) -> tuple[tuple[int, int], float] | None:
        if not self._links:
            return None
        link = max(self._links, key=self._links.get)
        return link, self._links[link]

    def __repr__(self) -> str:
        return (
            f"Network(sites={self.num_sites}, links={len(self._links)}, "
            f"bytes={self.total_bytes:g})"
        )
