"""Replay a workload against a partitioned layout and count bytes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.costmodel.config import WriteAccounting
from repro.exceptions import SimulationError
from repro.model.workload import Query, Transaction
from repro.partition.assignment import PartitioningResult
from repro.simulator.network import Network
from repro.simulator.storage import DEFAULT_CAPACITY, FractionStore, SiteStorage


@dataclass(frozen=True)
class SimulationReport:
    """Byte totals measured by one simulated workload replay."""

    bytes_read: float
    bytes_written: float
    bytes_transferred: float
    network_penalty: float
    per_site_read: tuple[float, ...]
    per_site_written: tuple[float, ...]
    messages: int
    queries_executed: int

    @property
    def local_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    def objective(self) -> float:
        """``A + pB`` — comparable with the evaluator's objective (4)."""
        return self.local_bytes + self.network_penalty * self.bytes_transferred


class WorkloadSimulator:
    """Executes a workload against the layout of a partitioning result.

    ``accounting`` selects how write queries touch local fractions:

    * ``ALL_ATTRIBUTES`` (paper, default): a write touches every local
      fraction of every table it accesses. In this mode the simulated
      byte totals match the analytic cost model exactly.
    * ``RELEVANT_ATTRIBUTES``: a write only touches fractions containing
      at least one updated attribute — the accurate accounting the
      paper deems too expensive to optimise; simulating it quantifies
      the overestimation.
    """

    def __init__(
        self,
        result: PartitioningResult,
        accounting: WriteAccounting = WriteAccounting.ALL_ATTRIBUTES,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if accounting is WriteAccounting.NO_ATTRIBUTES:
            raise SimulationError(
                "the storage layer cannot skip writes entirely; use the "
                "evaluator for the NO_ATTRIBUTES accounting"
            )
        self.result = result
        self.accounting = accounting
        self.instance = result.instance
        self.num_sites = result.num_sites
        self.network = Network(self.num_sites)
        self.sites = [SiteStorage(site) for site in range(self.num_sites)]
        self._build_fractions(capacity)
        self.queries_executed = 0

    def _build_fractions(self, capacity: int) -> None:
        instance = self.instance
        for site in range(self.num_sites):
            resident = np.flatnonzero(self.result.y[:, site])
            per_table: dict[str, list] = {}
            for a_index in resident:
                attribute = instance.attributes[a_index]
                per_table.setdefault(attribute.table, []).append(attribute)
            for table, attributes in per_table.items():
                self.sites[site].add_fraction(
                    FractionStore(table, tuple(attributes), capacity=capacity)
                )

    # ------------------------------------------------------------------
    def run(self) -> SimulationReport:
        """Replay every query of every transaction once per frequency unit."""
        for transaction in self.instance.workload:
            home = self.result.transaction_site(transaction.name)
            for query in transaction:
                self._execute(query, transaction, home)
        per_site_read = tuple(site.bytes_read for site in self.sites)
        per_site_written = tuple(site.bytes_written for site in self.sites)
        return SimulationReport(
            bytes_read=float(sum(per_site_read)),
            bytes_written=float(sum(per_site_written)),
            bytes_transferred=self.network.total_bytes,
            network_penalty=self.result.coefficients.parameters.network_penalty,
            per_site_read=per_site_read,
            per_site_written=per_site_written,
            messages=self.network.messages,
            queries_executed=self.queries_executed,
        )

    # ------------------------------------------------------------------
    def _execute(self, query: Query, transaction: Transaction, home: int) -> None:
        self.queries_executed += 1
        frequency = query.frequency
        if query.is_write:
            self._execute_write(query, home, frequency)
        else:
            self._execute_read(query, home, frequency)

    def _execute_read(self, query: Query, home: int, frequency: float) -> None:
        """Reads run single-sited: whole local fraction rows at ``home``."""
        storage = self.sites[home]
        for table in query.tables:
            fraction = storage.fraction(table)
            if fraction is None:
                # The table has no local fraction; tolerated only when the
                # query reads none of its attributes from this table
                # (possible for extra_tables), otherwise the layout is
                # infeasible and PartitioningResult would have refused it.
                continue
            for qualified in query.attributes:
                attr_table, _, attr_name = qualified.partition(".")
                if attr_table == table and not fraction.has_attribute(attr_name):
                    raise SimulationError(
                        f"read query {query.name!r} needs {qualified!r} at "
                        f"site {home}, but the local fraction lacks it"
                    )
            rows = query.rows_for(table)
            for _ in range(int(frequency)):
                fraction.read_rows(rows)
            remainder = frequency - int(frequency)
            if remainder:
                fraction.bytes_read += fraction.row_width * rows * remainder

    def _execute_write(self, query: Query, home: int, frequency: float) -> None:
        """Writes touch every replica site and ship updates over the net."""
        updated_by_table: dict[str, list[str]] = {}
        for qualified in query.attributes:
            table, _, name = qualified.partition(".")
            updated_by_table.setdefault(table, []).append(name)

        for site_storage in self.sites:
            for table in query.tables:
                fraction = site_storage.fraction(table)
                if fraction is None:
                    continue
                if self.accounting is WriteAccounting.RELEVANT_ATTRIBUTES:
                    hit = any(
                        fraction.has_attribute(name)
                        for name in updated_by_table.get(table, ())
                    )
                    if not hit:
                        continue
                rows = query.rows_for(table)
                for _ in range(int(frequency)):
                    fraction.write_rows(rows)
                remainder = frequency - int(frequency)
                if remainder:
                    fraction.bytes_written += fraction.row_width * rows * remainder

        # Network: ship each updated attribute to every remote replica.
        for table, names in updated_by_table.items():
            rows = query.rows_for(table)
            for name in names:
                a_index = self.instance.attribute_index[f"{table}.{name}"]
                width = self.instance.attributes[a_index].width
                for site in np.flatnonzero(self.result.y[a_index]):
                    if int(site) == home:
                        continue
                    self.network.transfer(
                        home, int(site), width * rows * frequency
                    )
