"""H-store-like execution simulator.

Replays a workload against a concrete partitioned layout: each site is
a row store holding table *fractions* (the attribute subsets assigned to
it), reads and writes move real bytes through the storage layer, and
write queries ship updated attribute values to remote replicas over a
simulated network.

Its purpose is validation: in the paper's accounting mode the simulated
byte counts reproduce the analytic cost model *exactly*
(``SimulationReport.objective() == SolutionEvaluator.objective4``),
which is property-tested. A second, finer accounting mode
(:attr:`~repro.costmodel.config.WriteAccounting.RELEVANT_ATTRIBUTES`)
quantifies the overestimation the paper accepts for tractability.
"""

from repro.simulator.storage import FractionStore, SiteStorage
from repro.simulator.network import Network
from repro.simulator.engine import WorkloadSimulator, SimulationReport

__all__ = [
    "FractionStore",
    "SiteStorage",
    "Network",
    "WorkloadSimulator",
    "SimulationReport",
]
