"""Terminal rendering of sweep series (the repository's "figures").

The paper has no figures; the analysis sweeps produce series that are
worth eyeballing. This module renders them as horizontal ASCII bar
charts so benches and the CLI can show trends without any plotting
dependency.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.sweeps import SweepSeries

DEFAULT_WIDTH = 48


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = DEFAULT_WIDTH,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render one horizontal bar per (label, value) pair.

    Bars are scaled to the maximum value; zero/negative values render
    as empty bars.

    >>> print(bar_chart(["a", "b"], [1.0, 2.0], width=4))
    a  ##    1
    b  ####  2
    """
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values"
        )
    if not labels:
        return "(empty chart)"
    peak = max(max(values), 0.0)
    label_width = max(len(str(label)) for label in labels)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        filled = 0
        if peak > 0 and value > 0:
            filled = max(1, round(width * value / peak))
        bar = "#" * filled
        rendered_value = (
            f"{value:g}{unit}" if value == int(value) else f"{value:.3g}{unit}"
        )
        lines.append(
            f"{str(label).ljust(label_width)}  {bar.ljust(width)}  {rendered_value}"
        )
    return "\n".join(lines)


def render_series(series: SweepSeries, width: int = DEFAULT_WIDTH) -> str:
    """Render a sweep series as an objective bar chart."""
    labels = [f"{series.parameter_name}={point.parameter:g}" for point in series.points]
    return bar_chart(
        labels,
        series.objectives(),
        width=width,
        title=f"{series.instance} — objective (4) vs {series.parameter_name} "
        f"[{series.solver}]",
    )


def render_series_breakdown(series: SweepSeries, width: int = DEFAULT_WIDTH) -> str:
    """Render local-access vs weighted-transfer composition per point."""
    if not series.points:
        return "(empty series)"
    peak = max(point.objective for point in series.points)
    label_width = max(
        len(f"{series.parameter_name}={point.parameter:g}")
        for point in series.points
    )
    lines = [
        f"{series.instance} — cost composition vs {series.parameter_name} "
        f"(#=local access, +=penalised transfer)"
    ]
    for point in series.points:
        label = f"{series.parameter_name}={point.parameter:g}"
        transfer_weighted = point.objective - point.local_access
        local_bar = 0
        transfer_bar = 0
        if peak > 0:
            local_bar = round(width * point.local_access / peak)
            transfer_bar = round(width * transfer_weighted / peak)
        bar = "#" * local_bar + "+" * transfer_bar
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)}  "
            f"{point.objective:.3g}"
        )
    return "\n".join(lines)
