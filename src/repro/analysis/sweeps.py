"""Parameter sweeps over the cost model.

Every sweep serves its points through one sweep-level
:class:`~repro.api.Advisor` (wrapped in :class:`SweepCaches`): the
instance's indicators/weights feed a
:class:`~repro.costmodel.coefficients.CoefficientCache` (coefficients
are assembled with exactly the uncached arithmetic, so results are
bitwise identical), and the QP points share a
:class:`~repro.qp.linearize.LinearizationCache` so
``build_linearized_model`` re-prices the cached constraint skeleton
instead of rebuilding every variable and constraint from scratch.  The
``solver`` argument of each sweep is a registry strategy name, so
user-registered strategies sweep exactly like the built-ins.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Sequence

from repro.api.advisor import Advisor
from repro.api.request import SolveRequest
from repro.costmodel.config import CostParameters
from repro.exceptions import SolverLimitError
from repro.model.instance import ProblemInstance
from repro.partition.assignment import PartitioningResult, single_site_partitioning
from repro.sa.options import SaOptions


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep series."""

    parameter: float
    objective: float
    local_access: float
    transfer: float
    max_load: float
    replication_factor: float
    wall_time: float


@dataclass
class SweepSeries:
    """A labelled series of sweep points (plot-ready)."""

    instance: str
    parameter_name: str
    solver: str
    points: list[SweepPoint] = field(default_factory=list)

    def values(self) -> list[float]:
        return [point.parameter for point in self.points]

    def objectives(self) -> list[float]:
        return [point.objective for point in self.points]

    def as_rows(self) -> list[dict[str, float]]:
        return [
            {
                self.parameter_name: point.parameter,
                "objective": point.objective,
                "local A": point.local_access,
                "transfer B": point.transfer,
                "max load": point.max_load,
                "replicas/attr": round(point.replication_factor, 3),
                "time s": round(point.wall_time, 2),
            }
            for point in self.points
        ]


class SweepCaches:
    """Per-sweep serving bundle: one advisor shared by every point.

    ``skeletons=False`` disables the linearization cache (capacity 0) —
    used by sweeps whose points can never share a skeleton
    (``sites_sweep`` changes ``num_sites`` every point), where caching
    would only retain dead models for the sweep's lifetime.
    """

    def __init__(self, instance: ProblemInstance, skeletons: bool = True):
        self.advisor = (
            Advisor() if skeletons else Advisor(linearization_capacity=0)
        )
        self.instance = instance
        self.coefficients = self.advisor.coefficient_cache(instance)
        self.linearization = (
            self.advisor.linearization_cache if skeletons else None
        )


def _solve(
    caches: SweepCaches,
    num_sites: int,
    parameters: CostParameters,
    solver: str,
    time_limit: float,
    seed: int,
    sa_options: SaOptions | None = None,
) -> PartitioningResult:
    if num_sites == 1:
        return single_site_partitioning(
            caches.coefficients.coefficients(parameters)
        )
    if solver == "qp":
        request = SolveRequest(
            instance=caches.instance,
            num_sites=num_sites,
            parameters=parameters,
            strategy="qp",
            options={"backend": "scipy"},
            time_limit=time_limit,
        )
    elif solver in ("sa", "sa-portfolio"):
        option_fields = asdict(
            sa_options or SaOptions(inner_loops=10, max_outer_loops=20)
        )
        disjoint = option_fields.pop("disjoint")
        if solver == "sa-portfolio" and option_fields["restarts"] == 1:
            # Let the strategy apply its portfolio default instead of
            # pinning SaOptions' single-run default.
            del option_fields["restarts"]
        request = SolveRequest(
            instance=caches.instance,
            num_sites=num_sites,
            parameters=parameters,
            allow_replication=not disjoint,
            strategy=solver,
            options=option_fields,
            # The sweep-level seed fills in only when the caller's
            # options don't pin one already.
            seed=seed,
        )
    else:
        request = SolveRequest(
            instance=caches.instance,
            num_sites=num_sites,
            parameters=parameters,
            strategy=solver,
            seed=seed,
            time_limit=time_limit,
        )
    return caches.advisor.advise(request).result


def _point(parameter: float, result: PartitioningResult) -> SweepPoint:
    breakdown = result.breakdown()
    return SweepPoint(
        parameter=parameter,
        objective=result.objective,
        local_access=breakdown.local_access,
        transfer=breakdown.transfer,
        max_load=breakdown.max_load,
        replication_factor=result.replication_factor,
        wall_time=result.wall_time,
    )


def penalty_sweep(
    instance: ProblemInstance,
    num_sites: int = 2,
    penalties: Sequence[float] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 128.0),
    solver: str = "qp",
    time_limit: float = 30.0,
    seed: int = 0,
    sa_options: SaOptions | None = None,
) -> SweepSeries:
    """Optimal cost as the network penalty ``p`` grows.

    ``p = 0`` is Table 6's local placement; ``p in [3, 128]`` spans the
    paper's gigabit-to-PCIe range. Expected shape: the objective is
    non-decreasing in ``p`` and the optimiser replicates written
    attributes less as transfer gets pricier.
    """
    series = SweepSeries(instance.name, "p", solver)
    caches = SweepCaches(instance)
    for penalty in penalties:
        parameters = CostParameters(network_penalty=penalty)
        result = _solve(
            caches, num_sites, parameters, solver, time_limit, seed, sa_options
        )
        series.points.append(_point(penalty, result))
    return series


def sites_sweep(
    instance: ProblemInstance,
    max_sites: int = 5,
    parameters: CostParameters | None = None,
    solver: str = "qp",
    time_limit: float = 30.0,
    seed: int = 0,
    sa_options: SaOptions | None = None,
) -> SweepSeries:
    """Optimal cost as the number of sites grows (the Table 5 plateau)."""
    parameters = parameters or CostParameters()
    series = SweepSeries(instance.name, "|S|", solver)
    caches = SweepCaches(instance, skeletons=False)
    for num_sites in range(1, max_sites + 1):
        result = _solve(
            caches, num_sites, parameters, solver, time_limit, seed, sa_options
        )
        series.points.append(_point(float(num_sites), result))
    return series


def lambda_sweep(
    instance: ProblemInstance,
    num_sites: int = 2,
    lambdas: Sequence[float] = (1.0, 0.9, 0.7, 0.5, 0.3, 0.1),
    solver: str = "qp",
    time_limit: float = 30.0,
    seed: int = 0,
    sa_options: SaOptions | None = None,
) -> SweepSeries:
    """The cost/balance trade-off: objective (4) and max load vs lambda.

    As the cost weight drops, the max site load shrinks and the actual
    cost rises — quantifying exactly the ambiguity discussed in
    DESIGN.md around the paper's lambda = 0.1.
    """
    series = SweepSeries(instance.name, "lambda", solver)
    caches = SweepCaches(instance)
    for lam in lambdas:
        parameters = CostParameters(load_balance_lambda=lam)
        result = _solve(
            caches, num_sites, parameters, solver, time_limit, seed, sa_options
        )
        series.points.append(_point(lam, result))
    return series


def replication_price_sweep(
    instance: ProblemInstance,
    num_sites: int = 2,
    penalties: Sequence[float] = (0.0, 2.0, 8.0, 32.0),
    time_limit: float = 30.0,
) -> list[dict[str, float]]:
    """Replicated-vs-disjoint cost ratio as transfer gets pricier.

    Replication ships every update to every replica, so its advantage
    (Table 5) should erode as ``p`` grows on write-heavy workloads.
    """
    rows: list[dict[str, float]] = []
    caches = SweepCaches(instance)
    for penalty in penalties:
        parameters = CostParameters(network_penalty=penalty)

        def qp_request(allow_replication: bool) -> SolveRequest:
            return SolveRequest(
                instance=caches.instance,
                num_sites=num_sites,
                parameters=parameters,
                allow_replication=allow_replication,
                strategy="qp",
                options={"backend": "scipy"},
                time_limit=time_limit,
            )

        try:
            replicated = caches.advisor.advise(qp_request(True)).result
            disjoint = caches.advisor.advise(qp_request(False)).result
        except SolverLimitError:
            continue
        rows.append(
            {
                "p": penalty,
                "replicated": replicated.objective,
                "disjoint": disjoint.objective,
                "ratio %": round(
                    100.0 * replicated.objective / disjoint.objective, 1
                ),
            }
        )
    return rows
