"""Parameter sweeps over the cost model.

Every sweep reuses a :class:`SweepCaches` bundle across its points: the
instance's indicators/weights feed a
:class:`~repro.costmodel.coefficients.CoefficientCache` (coefficients
are assembled with exactly the uncached arithmetic, so results are
bitwise identical), and the QP points share a
:class:`~repro.qp.linearize.LinearizationCache` so
``build_linearized_model`` re-prices the cached constraint skeleton
instead of rebuilding every variable and constraint from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.costmodel.coefficients import CoefficientCache
from repro.costmodel.config import CostParameters
from repro.exceptions import SolverLimitError
from repro.model.instance import ProblemInstance
from repro.partition.assignment import PartitioningResult, single_site_partitioning
from repro.qp.linearize import LinearizationCache
from repro.qp.solver import QpPartitioner
from repro.sa.options import SaOptions
from repro.sa.solver import SaPartitioner


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep series."""

    parameter: float
    objective: float
    local_access: float
    transfer: float
    max_load: float
    replication_factor: float
    wall_time: float


@dataclass
class SweepSeries:
    """A labelled series of sweep points (plot-ready)."""

    instance: str
    parameter_name: str
    solver: str
    points: list[SweepPoint] = field(default_factory=list)

    def values(self) -> list[float]:
        return [point.parameter for point in self.points]

    def objectives(self) -> list[float]:
        return [point.objective for point in self.points]

    def as_rows(self) -> list[dict[str, float]]:
        return [
            {
                self.parameter_name: point.parameter,
                "objective": point.objective,
                "local A": point.local_access,
                "transfer B": point.transfer,
                "max load": point.max_load,
                "replicas/attr": round(point.replication_factor, 3),
                "time s": round(point.wall_time, 2),
            }
            for point in self.points
        ]


class SweepCaches:
    """Per-sweep cache bundle: coefficients and QP model skeletons.

    ``skeletons=False`` drops the linearization cache — used by sweeps
    whose points can never share a skeleton (``sites_sweep`` changes
    ``num_sites`` every point), where caching would only retain dead
    models for the sweep's lifetime.
    """

    def __init__(self, instance: ProblemInstance, skeletons: bool = True):
        self.coefficients = CoefficientCache(instance)
        self.linearization: LinearizationCache | None = (
            LinearizationCache() if skeletons else None
        )


def _solve(
    caches: SweepCaches,
    num_sites: int,
    parameters: CostParameters,
    solver: str,
    time_limit: float,
    seed: int,
    sa_options: SaOptions | None = None,
) -> PartitioningResult:
    coefficients = caches.coefficients.coefficients(parameters)
    if num_sites == 1:
        return single_site_partitioning(coefficients)
    if solver == "qp":
        return QpPartitioner(
            coefficients, num_sites, linearization_cache=caches.linearization
        ).solve(time_limit=time_limit, backend="scipy")
    options = sa_options or SaOptions(inner_loops=10, max_outer_loops=20)
    if options.seed is None:
        # The sweep-level seed fills in only when the caller's options
        # don't pin one already.
        from dataclasses import replace

        options = replace(options, seed=seed)
    return SaPartitioner(coefficients, num_sites, options=options).solve()


def _point(parameter: float, result: PartitioningResult) -> SweepPoint:
    breakdown = result.breakdown()
    return SweepPoint(
        parameter=parameter,
        objective=result.objective,
        local_access=breakdown.local_access,
        transfer=breakdown.transfer,
        max_load=breakdown.max_load,
        replication_factor=result.replication_factor,
        wall_time=result.wall_time,
    )


def penalty_sweep(
    instance: ProblemInstance,
    num_sites: int = 2,
    penalties: Sequence[float] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 128.0),
    solver: str = "qp",
    time_limit: float = 30.0,
    seed: int = 0,
    sa_options: SaOptions | None = None,
) -> SweepSeries:
    """Optimal cost as the network penalty ``p`` grows.

    ``p = 0`` is Table 6's local placement; ``p in [3, 128]`` spans the
    paper's gigabit-to-PCIe range. Expected shape: the objective is
    non-decreasing in ``p`` and the optimiser replicates written
    attributes less as transfer gets pricier.
    """
    series = SweepSeries(instance.name, "p", solver)
    caches = SweepCaches(instance)
    for penalty in penalties:
        parameters = CostParameters(network_penalty=penalty)
        result = _solve(
            caches, num_sites, parameters, solver, time_limit, seed, sa_options
        )
        series.points.append(_point(penalty, result))
    return series


def sites_sweep(
    instance: ProblemInstance,
    max_sites: int = 5,
    parameters: CostParameters | None = None,
    solver: str = "qp",
    time_limit: float = 30.0,
    seed: int = 0,
    sa_options: SaOptions | None = None,
) -> SweepSeries:
    """Optimal cost as the number of sites grows (the Table 5 plateau)."""
    parameters = parameters or CostParameters()
    series = SweepSeries(instance.name, "|S|", solver)
    caches = SweepCaches(instance, skeletons=False)
    for num_sites in range(1, max_sites + 1):
        result = _solve(
            caches, num_sites, parameters, solver, time_limit, seed, sa_options
        )
        series.points.append(_point(float(num_sites), result))
    return series


def lambda_sweep(
    instance: ProblemInstance,
    num_sites: int = 2,
    lambdas: Sequence[float] = (1.0, 0.9, 0.7, 0.5, 0.3, 0.1),
    solver: str = "qp",
    time_limit: float = 30.0,
    seed: int = 0,
    sa_options: SaOptions | None = None,
) -> SweepSeries:
    """The cost/balance trade-off: objective (4) and max load vs lambda.

    As the cost weight drops, the max site load shrinks and the actual
    cost rises — quantifying exactly the ambiguity discussed in
    DESIGN.md around the paper's lambda = 0.1.
    """
    series = SweepSeries(instance.name, "lambda", solver)
    caches = SweepCaches(instance)
    for lam in lambdas:
        parameters = CostParameters(load_balance_lambda=lam)
        result = _solve(
            caches, num_sites, parameters, solver, time_limit, seed, sa_options
        )
        series.points.append(_point(lam, result))
    return series


def replication_price_sweep(
    instance: ProblemInstance,
    num_sites: int = 2,
    penalties: Sequence[float] = (0.0, 2.0, 8.0, 32.0),
    time_limit: float = 30.0,
) -> list[dict[str, float]]:
    """Replicated-vs-disjoint cost ratio as transfer gets pricier.

    Replication ships every update to every replica, so its advantage
    (Table 5) should erode as ``p`` grows on write-heavy workloads.
    """
    rows: list[dict[str, float]] = []
    caches = SweepCaches(instance)
    for penalty in penalties:
        parameters = CostParameters(network_penalty=penalty)
        coefficients = caches.coefficients.coefficients(parameters)
        try:
            replicated = QpPartitioner(
                coefficients, num_sites,
                linearization_cache=caches.linearization,
            ).solve(time_limit=time_limit, backend="scipy")
            disjoint = QpPartitioner(
                coefficients, num_sites, allow_replication=False,
                linearization_cache=caches.linearization,
            ).solve(time_limit=time_limit, backend="scipy")
        except SolverLimitError:
            continue
        rows.append(
            {
                "p": penalty,
                "replicated": replicated.objective,
                "disjoint": disjoint.objective,
                "ratio %": round(
                    100.0 * replicated.objective / disjoint.objective, 1
                ),
            }
        )
    return rows
