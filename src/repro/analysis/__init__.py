"""Sensitivity analysis: sweep cost parameters and plot-ready series.

The paper has no figures, but its discussion invites several curves:
cost vs. the network penalty ``p`` (where does remote placement become
as good as local?), cost vs. the number of sites (where does the
plateau start?), cost vs. the load-balance weight (how much cost does
balance buy?). This package computes those series with any solver.
"""

from repro.analysis.sweeps import (
    SweepPoint,
    SweepSeries,
    lambda_sweep,
    penalty_sweep,
    replication_price_sweep,
    sites_sweep,
)
from repro.analysis.charts import bar_chart, render_series, render_series_breakdown

__all__ = [
    "SweepPoint",
    "SweepSeries",
    "penalty_sweep",
    "sites_sweep",
    "lambda_sweep",
    "replication_price_sweep",
    "bar_chart",
    "render_series",
    "render_series_breakdown",
]
