"""The remote worker of the socket transport: ``python -m repro.sa.worker``.

A worker is one box of the multi-box portfolio.  It dials the driver
(``--connect HOST:PORT``), negotiates protocol and envelope versions,
and then loops: receive a TASK frame, acknowledge it, run the task
envelope through the same :class:`~repro.sa.backends.queue.QueueWorker`
the in-process queue backend uses — so a result computed remotely is
byte-identical to one computed locally — and send the RESULT frame
back.  A daemon ticker thread heartbeats throughout (carrying the id of
the task currently running, so the driver can tell "lost the result"
from "still computing"), and INCUMBENT broadcasts from the driver feed
a local :class:`~repro.sa.backends.incumbent.SharedIncumbent` so the
worker can prune tasks that provably cannot win without a round trip.

Frame-ordering invariant the driver's liveness reconciliation relies
on: the worker marks itself busy *before* sending the ACK and idle only
*after* sending the RESULT/PRUNED/ERROR frame, and all sends share one
lock — so on the (ordered) TCP stream, any heartbeat claiming idleness
after an ACK proves the task's terminal frame was already sent.  If the
driver saw the ACK but no terminal frame, that frame was lost, and the
restart is safe to requeue.

``--fault-plan`` accepts a JSON :class:`~repro.sa.transport.faults.
FaultPlan`; only its worker-side actions apply here (``kill-worker``
dies abruptly mid-restart, ``stall-heartbeat`` goes silent while still
computing) — the chaos suite uses this to rehearse worker crashes
deterministically.
"""

from __future__ import annotations

import argparse
import socket
import sys
import threading

from repro.exceptions import ConnectionClosedError, TransportError
from repro.sa.backends.incumbent import SharedIncumbent
from repro.sa.backends.queue import ENVELOPE_FORMAT_VERSION, QueueWorker
from repro.sa.transport.faults import (
    WORKER_ACTIONS,
    Fault,
    FaultInjected,
    FaultPlan,
    FaultyEndpoint,
)
from repro.sa.transport.protocol import (
    KIND_ACK,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_INCUMBENT,
    KIND_PRUNED,
    KIND_RESULT,
    KIND_SHUTDOWN,
    KIND_TASK,
    Endpoint,
    negotiate_client,
)


class WorkerSession:
    """One connected worker: heartbeat ticker plus the task loop."""

    def __init__(self, endpoint: Endpoint, ack: dict):
        self.endpoint = endpoint
        self.heartbeat_interval = float(ack.get("heartbeat_interval", 0.5))
        self.prune = bool(ack.get("prune", False))
        lower_bound = ack.get("lower_bound")
        self.incumbent = SharedIncumbent()
        if lower_bound is not None:
            self.incumbent.lower_bound = float(lower_bound)
        best = ack.get("incumbent")
        if best is not None:
            self.incumbent.publish(float(best[0]), int(best[1]))
        self.worker = QueueWorker()
        #: task_id currently being run (read by the ticker thread; a
        #: plain attribute is enough — torn reads are impossible for an
        #: object reference and the protocol tolerates a stale beat).
        self.current: str | None = None
        self._stop = threading.Event()

    # -- heartbeat ticker (daemon thread) ------------------------------
    def _tick(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.endpoint.send(
                    KIND_HEARTBEAT,
                    task_id=self.current,
                    busy=self.current is not None,
                )
            except (ConnectionClosedError, OSError):
                return
            except FaultInjected:
                return  # scheduled death of the ticker = silent worker

    # -- task loop -----------------------------------------------------
    def run(self) -> None:
        ticker = threading.Thread(
            target=self._tick, name="sa-worker-heartbeat", daemon=True
        )
        ticker.start()
        try:
            while True:
                frame = self.endpoint.recv(timeout=None)
                kind = frame["kind"]
                if kind == KIND_SHUTDOWN:
                    return
                if kind == KIND_INCUMBENT:
                    self.incumbent.publish(
                        float(frame["objective6"]), int(frame["restart"])
                    )
                elif kind == KIND_TASK:
                    self._handle_task(frame)
                # Anything else (late ERROR, stray frames) is ignored —
                # robustness beats strictness once the handshake is done.
        except (ConnectionClosedError, TransportError):
            # Driver gone or stream corrupt: nothing to report to, and
            # the driver's liveness monitor handles our disappearance.
            return
        finally:
            self._stop.set()
            self.endpoint.close()

    def _handle_task(self, frame: dict) -> None:
        task_id = frame.get("task_id")
        restart = int(frame.get("restart", -1))
        # Busy *before* the ACK, idle only *after* the terminal frame —
        # see the module docstring for the reconciliation proof.
        self.current = task_id
        self.endpoint.send(KIND_ACK, task_id=task_id)
        if self.prune and self.incumbent.proves_unbeatable(restart):
            self.endpoint.send(KIND_PRUNED, task_id=task_id, restart=restart)
            self.current = None
            return
        try:
            result = self.worker.run(frame["envelope"])
        except Exception as error:
            self.endpoint.send(
                KIND_ERROR,
                task_id=task_id,
                restart=restart,
                message=f"{type(error).__name__}: {error}",
            )
            self.current = None
            return
        # A kill-worker fault fires here, in the send itself — dying
        # with the result computed but unsent, the worst-timed crash.
        self.endpoint.send(
            KIND_RESULT, task_id=task_id, restart=restart, envelope=result
        )
        self.current = None


def run_worker(
    host: str,
    port: int,
    faults: list[Fault] | tuple[Fault, ...] = (),
    connect_timeout: float = 30.0,
) -> None:
    """Dial the driver and serve tasks until shutdown/disconnect.

    Raises :class:`~repro.sa.transport.faults.FaultInjected` when a
    scheduled kill fires (the ``__main__`` wrapper turns that into a
    nonzero — but deliberate — exit).
    """
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.settimeout(None)
    if faults:
        endpoint: Endpoint = FaultyEndpoint(sock, list(faults), side="worker")
    else:
        endpoint = Endpoint(sock)
    try:
        ack = negotiate_client(endpoint, ENVELOPE_FORMAT_VERSION)
    except (TransportError, ConnectionClosedError):
        endpoint.close()
        raise
    WorkerSession(endpoint, ack).run()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sa.worker",
        description=(
            "Socket-transport portfolio worker: connects to a driver "
            "running SaOptions(backend='socket') and executes restart "
            "task envelopes."
        ),
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="driver address to dial",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON",
        help=(
            "JSON FaultPlan; only worker-side actions (kill-worker, "
            "stall-heartbeat) apply — used by the chaos test suite"
        ),
    )
    args = parser.parse_args(argv)
    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        parser.error(f"--connect wants HOST:PORT, got {args.connect!r}")
    faults: list[Fault] = []
    if args.fault_plan:
        plan = FaultPlan.from_json(args.fault_plan)
        faults = [f for f in plan.faults if f.action in WORKER_ACTIONS]
    try:
        run_worker(host or "127.0.0.1", port, faults=faults)
    except FaultInjected as fault:
        print(f"worker dying on schedule: {fault}", file=sys.stderr)
        return 1
    except (TransportError, ConnectionClosedError, OSError) as error:
        print(f"worker transport failure: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
