"""Tuning knobs of the SA solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import OptionsError

#: Section 5.1: accept a solution that is WORSE_FRACTION worse with
#: ACCEPT_PROBABILITY in the first iterations; fixes the initial
#: temperature tau = -WORSE_FRACTION * C* / ln(ACCEPT_PROBABILITY).
INITIAL_WORSE_FRACTION = 0.05
INITIAL_ACCEPT_PROBABILITY = 0.5


@dataclass(frozen=True)
class SaOptions:
    """Options for :class:`~repro.sa.annealer.SimulatedAnnealer`.

    Defaults follow the paper where it is specific (10% neighbourhood
    moves, Section 5.1 temperature rule) and common SA practice where it
    is not (cooling rate, loop counts).
    """

    #: Number of inner-loop iterations L per temperature level.
    inner_loops: int = 20
    #: Geometric cooling factor rho in (0, 1).
    cooling_rate: float = 0.9
    #: Fraction of transactions/attributes perturbed per move (paper: 10%).
    move_fraction: float = 0.1
    #: Freeze when tau falls below ``initial_tau * freeze_ratio``.
    freeze_ratio: float = 1e-3
    #: Hard cap on outer (temperature) loops.
    max_outer_loops: int = 60
    #: Stop after this many outer loops without improving the best cost.
    patience: int = 10
    #: Wall-clock budget in seconds per annealing run (None = unlimited;
    #: 0 is legal and exits straight through the collapsed-layout guard).
    time_limit: float | None = None
    #: RNG seed for reproducible runs.
    seed: int | None = None
    #: ``findSolution`` implementation: "greedy" (vectorised, fast) or
    #: "exact" (a small MIP per iteration, like the paper's 30s-budget
    #: GLPK sub-solves).
    subsolver: str = "greedy"
    #: Time budget per exact sub-solve (paper: 30 seconds).
    exact_time_limit: float = 30.0
    #: Disallow attribute replication (disjoint partitioning).
    disjoint: bool = False
    #: Maintain objective (6) incrementally across inner-loop moves
    #: (:class:`repro.costmodel.incremental.IncrementalEvaluator`).
    #: ``False`` forces the dense evaluator on every iteration — slower,
    #: but a useful cross-check and the reference semantics.
    incremental: bool = True
    #: Probability that an x-move merges a whole site into another
    #: instead of relocating a random 10% (escapes plateaus on
    #: instances where every query touches most attributes).
    merge_probability: float = 0.15
    #: Number of independently seeded annealing restarts; the portfolio
    #: returns the best-of-N incumbent (restart 0 reuses ``seed``, so
    #: ``restarts=1`` is exactly the single-run behaviour).
    restarts: int = 1
    #: Worker slots for running restarts concurrently (1 = in-process
    #: serial).  The result is deterministic for a fixed seed regardless
    #: of ``jobs`` — only wall-clock changes.
    jobs: int = 1
    #: Wall-clock budget in seconds for the whole restart portfolio
    #: (None = unlimited).  Restarts still pending when it expires are
    #: cancelled; running stragglers are cut short via their own
    #: ``time_limit``.
    portfolio_time_limit: float | None = None
    #: Execution backend for the restart portfolio: a name registered in
    #: :mod:`repro.sa.backends` ("serial", "process", "thread",
    #: "queue"), or ``None`` for the historical default (serial for one
    #: worker slot, the process pool otherwise).  The returned best is
    #: bitwise identical per master seed whatever the backend.
    backend: str | None = None
    #: Publish the best objective between restarts on a shared incumbent
    #: and skip restarts provably unable to beat it (the incumbent has
    #: reached the objective's lower bound with an earlier index).
    #: Pruning only skips work — it never changes the returned best.
    prune: bool = False
    #: Worker processes the ``"socket"`` transport backend spawns
    #: (``None`` = one per usable job slot).  ``0`` is legal and runs
    #: the whole portfolio through the transport's in-driver degraded
    #: mode — the same code path a drained worker pool falls back to.
    workers: int | None = None
    #: Failed attempts allowed *per restart* on the fault-tolerant
    #: backends ("queue", "socket") before the portfolio fails with
    #: :class:`~repro.exceptions.SolverError`; a lost restart would
    #: silently change the best-of-N result, which the determinism
    #: contract forbids.
    max_retries: int = 2
    #: Seconds between worker heartbeats on the socket transport.
    heartbeat_interval: float = 0.5
    #: Seconds of worker silence after which the transport's liveness
    #: monitor declares the worker dead and requeues its in-flight
    #: restart.  Must exceed ``heartbeat_interval``.
    heartbeat_timeout: float = 5.0
    #: Base of the exponential retry backoff in seconds: attempt ``k``
    #: of a restart waits ``~ backoff_base * 2**(k-1)`` scaled by a
    #: deterministic jitter derived from the restart seed.  ``0``
    #: disables backoff (the in-process queue backend's setting).
    backoff_base: float = 0.05
    #: Incumbent layout to warm-start from, as the JSON dictionary form
    #: of :class:`~repro.partition.current_layout.CurrentLayout`
    #: (``layout.to_dict()``) so it rides the queue/socket envelopes
    #: unchanged.  ``None`` (the default) keeps the historical random
    #: initial solution.  The warm start replaces the *initial*
    #: solution of every restart with the repaired incumbent, so the
    #: portfolio's best is <= the stay-put cost by construction.
    warm_start: Mapping[str, Any] | None = field(default=None)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`~repro.exceptions.OptionsError` on bad options.

        Runs eagerly from ``__post_init__`` (and again from
        :class:`~repro.sa.solver.SaPartitioner`) so misconfigured runs
        fail before any annealing starts, not minutes into it.
        """
        if self.inner_loops < 1:
            raise OptionsError("inner_loops must be >= 1")
        if not 0.0 < self.cooling_rate < 1.0:
            raise OptionsError("cooling_rate must be in (0, 1)")
        if not 0.0 < self.move_fraction <= 1.0:
            raise OptionsError("move_fraction must be in (0, 1]")
        if self.subsolver not in ("greedy", "exact"):
            raise OptionsError(f"unknown subsolver {self.subsolver!r}")
        if self.max_outer_loops < 1:
            raise OptionsError("max_outer_loops must be >= 1")
        if self.patience < 1:
            raise OptionsError("patience must be >= 1")
        if self.time_limit is not None and self.time_limit < 0:
            raise OptionsError(
                f"time_limit must be >= 0 seconds, got {self.time_limit}"
            )
        if self.exact_time_limit <= 0:
            raise OptionsError(
                f"exact_time_limit must be positive, got {self.exact_time_limit}"
            )
        if self.restarts < 1:
            raise OptionsError(f"restarts must be >= 1, got {self.restarts}")
        if self.jobs < 1:
            raise OptionsError(f"jobs must be >= 1, got {self.jobs}")
        if self.portfolio_time_limit is not None and self.portfolio_time_limit <= 0:
            raise OptionsError(
                f"portfolio_time_limit must be positive seconds, got "
                f"{self.portfolio_time_limit}"
            )
        if self.workers is not None and self.workers < 0:
            raise OptionsError(f"workers must be >= 0, got {self.workers}")
        if self.max_retries < 0:
            raise OptionsError(
                f"max_retries must be >= 0, got {self.max_retries} "
                f"(0 means failed restarts are never retried)"
            )
        if self.heartbeat_interval <= 0:
            raise OptionsError(
                f"heartbeat_interval must be positive seconds, got "
                f"{self.heartbeat_interval}"
            )
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise OptionsError(
                f"heartbeat_timeout ({self.heartbeat_timeout}) must exceed "
                f"heartbeat_interval ({self.heartbeat_interval}) or every "
                f"worker looks stalled"
            )
        if self.backoff_base < 0:
            raise OptionsError(
                f"backoff_base must be >= 0 seconds, got {self.backoff_base}"
            )
        if self.warm_start is not None:
            if not isinstance(self.warm_start, Mapping):
                raise OptionsError(
                    f"warm_start must be a layout dictionary "
                    f"(CurrentLayout.to_dict()) or None, got "
                    f"{type(self.warm_start).__name__}"
                )
            if "placements" not in self.warm_start:
                raise OptionsError(
                    "warm_start layout dictionary misses 'placements'"
                )
        if self.backend is not None:
            # Imported lazily: the backends package imports this module.
            from repro.sa.backends import backend_names

            if self.backend not in backend_names():
                raise OptionsError(
                    f"unknown execution backend {self.backend!r}; "
                    f"registered: {', '.join(backend_names())}"
                )


#: A configuration tuned for speed, used by the large Table-1 sweeps.
FAST_OPTIONS = SaOptions(inner_loops=10, max_outer_loops=25, patience=6)
