"""SA search state helpers: random starts and read-sharing components."""

from __future__ import annotations

import numpy as np

from repro.costmodel.coefficients import CostCoefficients


def random_transaction_placement(
    num_transactions: int, num_sites: int, rng: np.random.Generator
) -> np.ndarray:
    """A uniformly random ``x`` satisfying one-site-per-transaction."""
    x = np.zeros((num_transactions, num_sites), dtype=bool)
    sites = rng.integers(0, num_sites, size=num_transactions)
    x[np.arange(num_transactions), sites] = True
    return x


def read_sharing_components(coefficients: CostCoefficients) -> np.ndarray:
    """Group transactions that read a common attribute (union-find).

    In disjoint partitioning, two transactions reading the same
    attribute must be co-located (the single replica must be on both
    sites otherwise). The connected components of the "shares a read
    attribute" graph are therefore the atomic placement units.

    Returns an array mapping transaction index -> component id
    (component ids are consecutive from 0).
    """
    num_transactions = coefficients.num_transactions
    parent = list(range(num_transactions))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    phi = coefficients.phi_bool
    for a in range(phi.shape[0]):
        readers = np.flatnonzero(phi[a])
        for other in readers[1:]:
            union(int(readers[0]), int(other))

    roots = [find(t) for t in range(num_transactions)]
    relabel: dict[int, int] = {}
    labels = np.empty(num_transactions, dtype=int)
    for t, root in enumerate(roots):
        if root not in relabel:
            relabel[root] = len(relabel)
        labels[t] = relabel[root]
    return labels


def component_placement_to_x(
    labels: np.ndarray, assignment: np.ndarray, num_sites: int
) -> np.ndarray:
    """Expand a component -> site assignment into an ``x`` matrix."""
    num_transactions = labels.shape[0]
    x = np.zeros((num_transactions, num_sites), dtype=bool)
    x[np.arange(num_transactions), assignment[labels]] = True
    return x
