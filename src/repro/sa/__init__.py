"""The SA solver: the paper's simulated-annealing heuristic (Section 3).

Algorithm 1 alternately fixes the transaction vector ``x`` or the
attribute vector ``y`` and re-optimises the free one (``findSolution``),
perturbing the fixed vector through a neighbourhood move (relocating
~10% of the transactions / extending replication for ~10% of the
attributes) and accepting worse solutions with probability
``exp(-delta / tau)`` under a geometric cooling schedule. The initial
temperature follows Section 5.1: accept a 5%-worse solution with 50%
probability in the first iterations.

``SaOptions(restarts=N)`` runs a best-of-N multi-start portfolio
(:mod:`repro.sa.portfolio`) over a pluggable execution backend
(:mod:`repro.sa.backends`: serial, process pool, a JSON task queue, or
the fault-tolerant multi-box socket transport of
:mod:`repro.sa.transport` with its remote ``python -m repro.sa.worker``
processes), deterministic per master seed whatever runs where — and,
for the queue/socket backends, whatever faults the transport suffers.
Library callers normally reach all of this through
:func:`repro.api.advise` with strategy ``"sa"`` / ``"sa-portfolio"``;
:func:`solve_sa` remains as a thin shim over that entry point.
"""

from repro.sa.options import SaOptions
from repro.sa.annealer import SimulatedAnnealer
from repro.sa.portfolio import PortfolioResult, RestartOutcome, derive_restart_seeds, run_portfolio
from repro.sa.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    QueueBackend,
    SerialBackend,
    SharedIncumbent,
    backend_names,
    get_backend,
    register_backend,
)
from repro.sa.solver import SaPartitioner, solve_sa

__all__ = [
    "SaOptions",
    "SimulatedAnnealer",
    "SaPartitioner",
    "solve_sa",
    "PortfolioResult",
    "RestartOutcome",
    "derive_restart_seeds",
    "run_portfolio",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "QueueBackend",
    "SharedIncumbent",
    "backend_names",
    "get_backend",
    "register_backend",
]
