"""Neighbourhood moves of Algorithm 1.

The paper defines the neighbourhood of ``x`` as a relocation of a subset
of transactions (keeping one-site-per-transaction) and the neighbourhood
of ``y`` as an *extended replication* of a subset of attributes: each
chosen attribute keeps its replicas and gains at least one more. A
constant 10% of transactions/attributes "yielded the best results".

The moves draw their random targets in one batched call per move (the
per-item ``rng.choice`` loops used to dominate the annealer's inner
loop).  The sampled distributions are unchanged, but the generator
stream is consumed differently, so fixed-seed trajectories differ from
releases that used the sequential draws.  What stays pinned by tests:
for any given seed, the incremental and dense evaluator paths visit
identical candidates and return identical results.
"""

from __future__ import annotations

import numpy as np


def subset_size(count: int, fraction: float) -> int:
    """At least one element, about ``fraction`` of ``count``."""
    return max(1, int(round(count * fraction)))


def move_transactions(
    x: np.ndarray, rng: np.random.Generator, fraction: float
) -> np.ndarray:
    """Relocate ~``fraction`` of the transactions to random sites.

    Each chosen transaction moves to a uniformly random *other* site
    (one batched draw: an offset in ``[0, |S| - 1)`` skips the current
    site).
    """
    x = x.copy()
    num_transactions, num_sites = x.shape
    if num_sites < 2:
        return x
    chosen = rng.choice(
        num_transactions, size=subset_size(num_transactions, fraction), replace=False
    )
    current = x[chosen].argmax(axis=1)
    offset = rng.integers(0, num_sites - 1, size=chosen.size)
    target = offset + (offset >= current)
    x[chosen, :] = False
    x[chosen, target] = True
    return x


def extend_replication(
    y: np.ndarray, rng: np.random.Generator, fraction: float
) -> np.ndarray:
    """Add one replica to ~``fraction`` of the attributes.

    Attributes already replicated everywhere are skipped; existing
    replicas are never removed (the paper's definition: ``y[a,s] = 1``
    implies ``y'[a,s] = 1`` and the replica count strictly grows).
    """
    y = y.copy()
    num_attributes, num_sites = y.shape
    if num_sites < 2:
        return y
    expandable = np.flatnonzero(y.sum(axis=1) < num_sites)
    if expandable.size == 0:
        return y
    size = min(subset_size(num_attributes, fraction), expandable.size)
    chosen = rng.choice(expandable, size=size, replace=False)
    # Pick a uniform absent site per chosen attribute in one batch: draw
    # the rank of the new replica among the row's absent sites, then map
    # ranks to site indices via the running count of absences.
    absent = ~y[chosen]  # (n, |S|)
    rank = rng.integers(0, absent.sum(axis=1))  # (n,)
    target = (absent.cumsum(axis=1) == (rank + 1)[:, None]).argmax(axis=1)
    y[chosen, target] = True
    return y


def merge_sites(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Move ALL transactions of one random site onto another.

    A whole site's transaction set is a valid "subset of the
    transactions" in the paper's neighbourhood definition; this move
    lets the search escape the plateau on instances where every query
    touches most attributes (cost only drops once a site empties
    completely — e.g. the rndB class, where the paper's SA finds the
    single-site optimum).
    """
    x = x.copy()
    num_sites = x.shape[1]
    if num_sites < 2:
        return x
    occupied = np.flatnonzero(x.any(axis=0))
    if occupied.size < 2:
        return x
    source = int(rng.choice(occupied))
    destinations = [s for s in range(num_sites) if s != source]
    destination = int(rng.choice(destinations))
    movers = x[:, source].copy()
    x[movers, source] = False
    x[movers, destination] = True
    return x


def move_components(
    assignment: np.ndarray,
    num_sites: int,
    rng: np.random.Generator,
    fraction: float,
) -> np.ndarray:
    """Disjoint mode: relocate ~``fraction`` of transaction components.

    ``assignment`` maps component index -> site; components (groups of
    transactions connected through shared read attributes) move as a
    unit so read co-location stays satisfiable without replication.
    """
    assignment = assignment.copy()
    num_components = assignment.shape[0]
    if num_sites < 2:
        return assignment
    chosen = rng.choice(
        num_components, size=subset_size(num_components, fraction), replace=False
    )
    current = assignment[chosen]
    offset = rng.integers(0, num_sites - 1, size=chosen.size)
    assignment[chosen] = offset + (offset >= current)
    return assignment
