"""Deterministic fault injection at the transport's protocol layer.

A :class:`FaultPlan` is a seedable, JSON-serialisable schedule of
failures — "drop the first RESULT frame of connection 0", "kill worker 1
while it sends its second result", "stall worker 0's heartbeat from the
third beat on" — that the socket backend and its workers *replay
exactly*.  Because the schedule is data, every chaos test is
reproducible from its seed alone: the assertion is always the same,
that the portfolio's best is bitwise identical to the serial backend's
despite the faults.

Fault sites:

* **endpoint faults** (``drop`` / ``delay`` / ``duplicate`` /
  ``corrupt``) are applied on the *driver's* side of a connection by
  wrapping it in a :class:`FaultyEndpoint` — ``direction="send"``
  mangles driver→worker frames (tasks, incumbent broadcasts),
  ``direction="recv"`` mangles worker→driver frames (results, acks,
  heartbeats) as they are popped off the buffer;
* **worker faults** (``kill-worker`` / ``stall-heartbeat``) ship to the
  worker process (``--fault-plan`` on its command line) and fire inside
  it: a kill raises :class:`FaultInjected` as the worker is about to
  send the matched frame — dying abruptly mid-restart, connection and
  all — and a stall silently swallows every heartbeat from the matched
  index on while the worker otherwise keeps running, which is exactly
  the failure the liveness monitor exists to catch.

Faults target one ``connection`` ordinal (the order connections were
accepted / workers were spawned).  Replacement workers get fresh, higher
ordinals, so a kill schedule terminates: the respawned worker runs the
requeued restart clean instead of dying in a loop.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import OptionsError
from repro.sa.transport.protocol import (
    Endpoint,
    KIND_HEARTBEAT,
    KIND_RESULT,
    encode_frame,
)

#: Faults applied by the driver's endpoint wrapper.
ENDPOINT_ACTIONS = frozenset({"drop", "delay", "duplicate", "corrupt"})
#: Faults shipped to and fired inside the worker process.
WORKER_ACTIONS = frozenset({"kill-worker", "stall-heartbeat"})
ACTIONS = ENDPOINT_ACTIONS | WORKER_ACTIONS


class FaultInjected(Exception):
    """Raised inside a worker when its fault plan says: die here."""


@dataclass(frozen=True)
class Fault:
    """One scheduled failure.

    ``index`` counts frames of ``kind`` flowing in ``direction`` on the
    targeted ``connection`` (0-based); the fault fires on the matching
    frame — sticky from there on for ``stall-heartbeat``, one-shot for
    everything else.
    """

    action: str
    kind: str = KIND_RESULT
    direction: str = "recv"  # from the driver's perspective
    index: int = 0
    connection: int = 0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise OptionsError(
                f"unknown fault action {self.action!r}; "
                f"known: {', '.join(sorted(ACTIONS))}"
            )
        if self.direction not in ("send", "recv"):
            raise OptionsError(
                f"fault direction must be 'send' or 'recv', "
                f"got {self.direction!r}"
            )
        if self.index < 0 or self.connection < 0 or self.delay < 0:
            raise OptionsError(
                "fault index/connection/delay must be non-negative"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults, serialisable for the CLI."""

    faults: tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def endpoint_faults(self, connection: int) -> list[Fault]:
        """Driver-side faults targeting connection ordinal ``connection``."""
        return [
            fault
            for fault in self.faults
            if fault.action in ENDPOINT_ACTIONS
            and fault.connection == connection
        ]

    def worker_faults(self, connection: int) -> list[Fault]:
        """Worker-side faults for the worker spawned as ``connection``."""
        return [
            fault
            for fault in self.faults
            if fault.action in WORKER_ACTIONS
            and fault.connection == connection
        ]

    # -- serialisation (rides on the worker command line) --------------
    def to_json(self) -> str:
        return json.dumps(
            {"faults": [asdict(fault) for fault in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
            faults = tuple(Fault(**entry) for entry in payload["faults"])
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise OptionsError(
                f"undecodable fault plan ({type(error).__name__}: {error})"
            ) from error
        return cls(faults=faults)

    @classmethod
    def random(
        cls, seed: int, faults: int = 3, connections: int = 2
    ) -> "FaultPlan":
        """A deterministic plan of ``faults`` failures drawn from ``seed``.

        Every action class can appear; kinds are drawn to match the
        direction traffic actually flows (results/acks/heartbeats
        driver-bound, tasks/incumbent broadcasts worker-bound), so a
        random plan always targets frames that exist.
        """
        rng = np.random.default_rng(seed)
        recv_kinds = ("result", "ack", "heartbeat", "pruned")
        send_kinds = ("task", "incumbent")
        drawn = []
        actions = sorted(ACTIONS)
        for _ in range(faults):
            action = actions[int(rng.integers(len(actions)))]
            connection = int(rng.integers(connections))
            index = int(rng.integers(3))
            if action == "kill-worker":
                kind, direction = KIND_RESULT, "recv"
            elif action == "stall-heartbeat":
                kind, direction = KIND_HEARTBEAT, "recv"
            elif rng.random() < 0.7:
                kind = recv_kinds[int(rng.integers(len(recv_kinds)))]
                direction = "recv"
            else:
                kind = send_kinds[int(rng.integers(len(send_kinds)))]
                direction = "send"
            delay = round(float(rng.uniform(0.0, 0.05)), 4)
            drawn.append(
                Fault(
                    action=action,
                    kind=kind,
                    direction=direction,
                    index=index,
                    connection=connection,
                    delay=delay,
                )
            )
        return cls(faults=tuple(drawn))


def _corrupt(frame: bytes) -> bytes:
    """Flip bits in the payload (never the length prefix, so the
    receiver reads a complete frame and fails *decoding* it)."""
    mangled = bytearray(frame)
    for offset in range(4, min(len(mangled), 12)):
        mangled[offset] ^= 0xFF
    return bytes(mangled)


class FaultyEndpoint(Endpoint):
    """An :class:`~repro.sa.transport.protocol.Endpoint` that replays a
    fault schedule.

    ``side="driver"`` applies the endpoint faults (drop / delay /
    duplicate / corrupt, both directions); ``side="worker"`` applies the
    worker faults (kill-worker raises :class:`FaultInjected` on the
    matched outgoing frame, stall-heartbeat swallows outgoing heartbeats
    from the matched index on).  Frame counters are per endpoint — i.e.
    per connection — matching :class:`Fault`'s addressing.
    """

    def __init__(
        self,
        sock: socket.socket,
        faults: list[Fault],
        side: str = "driver",
    ):
        super().__init__(sock)
        if side not in ("driver", "worker"):
            raise OptionsError(f"side must be 'driver' or 'worker', got {side!r}")
        self.side = side
        self.faults = list(faults)
        self._counts: dict[tuple[str, str], int] = {}
        self._replay: list[dict[str, Any]] = []

    def _next_index(self, direction: str, kind: str) -> int:
        key = (direction, kind)
        index = self._counts.get(key, 0)
        self._counts[key] = index + 1
        return index

    def _matching(self, direction: str, kind: str, index: int) -> list[Fault]:
        return [
            fault
            for fault in self.faults
            if fault.direction == direction
            and fault.kind == kind
            and (
                index >= fault.index
                if fault.action == "stall-heartbeat"
                else index == fault.index
            )
        ]

    # -- outgoing ------------------------------------------------------
    def send(self, kind: str, **fields: Any) -> None:
        index = self._next_index("send" if self.side == "driver" else "recv", kind)
        # Worker-side frames flow driver-ward, so they match "recv"
        # faults — the direction is always the driver's perspective.
        matched = self._matching(
            "send" if self.side == "driver" else "recv", kind, index
        )
        if self.side == "worker":
            for fault in matched:
                if fault.action == "kill-worker":
                    raise FaultInjected(
                        f"fault plan kills this worker at {kind} #{index}"
                    )
                if fault.action == "stall-heartbeat":
                    return  # swallowed: alive but silent
            super().send(kind, **fields)
            return
        frame = encode_frame(kind, **fields)
        for fault in matched:
            if fault.action == "drop":
                return
            if fault.action == "delay":
                time.sleep(fault.delay)
            elif fault.action == "corrupt":
                frame = _corrupt(frame)
            elif fault.action == "duplicate":
                self.send_raw(frame)
        self.send_raw(frame)

    # -- incoming (driver side only) -----------------------------------
    def _pop_frame(self) -> dict[str, Any] | None:
        if self._replay:
            return self._replay.pop(0)
        while True:
            frame = super()._pop_frame()
            if frame is None:
                return None
            if self.side != "driver":
                return frame
            kind = frame.get("kind", "")
            index = self._next_index("recv", kind)
            dropped = False
            for fault in self._matching("recv", kind, index):
                if fault.action == "drop":
                    dropped = True
                elif fault.action == "delay":
                    time.sleep(fault.delay)
                elif fault.action == "duplicate":
                    self._replay.append(frame)
                elif fault.action == "corrupt":
                    # The bytes arrived fine; simulate the decode blowing
                    # up, which the driver treats as a dead connection.
                    from repro.exceptions import TransportError

                    raise TransportError(
                        f"injected corruption on {kind} frame #{index}"
                    )
            if not dropped:
                return frame
