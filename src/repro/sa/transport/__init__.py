"""The socket transport of the multi-box restart portfolio.

PR 5's :class:`~repro.sa.backends.queue.QueueBackend` defined the wire
format — versioned JSON task/result envelopes that are pure functions of
``(restart, seed, single-run options, instance, parameters)`` — and this
package carries those envelopes over a real transport:

* :mod:`~repro.sa.transport.protocol` — length-prefixed JSON frames
  over a TCP socket, with protocol/envelope version negotiation at
  connect;
* :mod:`~repro.sa.transport.socket_backend` — the ``"socket"``
  execution backend: a driver that spawns (or accepts) remote
  ``python -m repro.sa.worker`` processes, monitors their liveness via
  heartbeats, requeues restarts lost to dead/stalled workers (bounded
  retries, deterministic exponential backoff), broadcasts the shared
  incumbent so ``objective6_lower_bound`` pruning works across boxes,
  and degrades to in-driver execution when the worker pool drains;
* :mod:`~repro.sa.transport.faults` — a deterministic, seedable
  :class:`FaultPlan` (drop / delay / duplicate / corrupt frames, kill a
  worker mid-restart, stall its heartbeat) injected at the protocol
  layer, so the test suite can *prove* that every fault class yields a
  result bitwise-identical to the serial backend per master seed.

Whatever the faults, the returned best is bitwise identical to
:class:`~repro.sa.backends.serial.SerialBackend` for the same master
seed — task envelopes are pure functions, results are deduplicated by
restart index, lost restarts are retried (never dropped), and pruning
keeps the PR 5 proof (bound reached *and* earlier restart index).
Pinned by ``tests/test_transport.py``.
"""

from repro.sa.transport.faults import Fault, FaultPlan, FaultyEndpoint
from repro.sa.transport.protocol import (
    Endpoint,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    negotiate_client,
    negotiate_server,
)
from repro.sa.transport.socket_backend import SocketTransportBackend

__all__ = [
    "Endpoint",
    "Fault",
    "FaultPlan",
    "FaultyEndpoint",
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "SocketTransportBackend",
    "negotiate_client",
    "negotiate_server",
]
