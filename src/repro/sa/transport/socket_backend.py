"""The ``"socket"`` execution backend: a fault-tolerant multi-box driver.

The driver listens on a loopback port, spawns ``workers`` remote worker
processes (``python -m repro.sa.worker --connect ...``), and schedules
the portfolio's restart tasks over the connections with the same
at-least-once discipline the queue backend rehearses in-process:

* every dispatched TASK frame must be ACKed; a task that is neither
  acknowledged nor resolved within the heartbeat timeout is presumed
  lost and requeued;
* workers heartbeat continuously, carrying the id of the task they are
  running — so when a heartbeat says *idle* after the task was ACKed,
  the terminal RESULT/PRUNED/ERROR frame is known lost (TCP preserves
  per-connection order and the worker goes idle only after sending it)
  and the restart is requeued without waiting for any timeout;
* a connection that stays silent past ``heartbeat_timeout`` is declared
  dead: it is closed, its in-flight restart requeued, and a replacement
  worker spawned (bounded by a spawn budget so a crash loop terminates);
* requeues are bounded per restart by ``max_retries`` and spread out by
  a deterministic exponential backoff
  (:func:`repro.sa.backends.retry.backoff_delay`); an exhausted budget
  fails the whole solve with :class:`~repro.exceptions.SolverError`
  naming the restart — a silently lost restart would change the
  best-of-N result, which the determinism contract forbids;
* when the pool drains to zero with no spawn budget left, the driver
  degrades gracefully: the remaining restarts run in-driver through the
  very same task envelopes (a
  :class:`~repro.sa.backends.queue.QueueWorker` loop), so the result is
  still bitwise identical — only slower;
* every recorded outcome is published to the shared incumbent and
  broadcast to all workers (INCUMBENT frames), so
  ``objective6_lower_bound`` pruning fires across boxes — with the PR 5
  tie rule (bound reached *and* strictly earlier restart index) intact
  on both sides of the wire.

Duplicate deliveries (retries racing late results, duplicated frames)
are harmless by construction: a result envelope is a pure function of
its task envelope, and the driver keeps the *first* result per restart
index — any second copy is byte-identical anyway.

Determinism: for a fixed master seed the returned best is bitwise
identical to :class:`~repro.sa.backends.serial.SerialBackend` whatever
the fault schedule, worker count, or retry history — pinned across the
whole fault matrix by ``tests/test_transport.py``.
"""

from __future__ import annotations

import math
import os
import selectors
import socket
import subprocess
import sys
import threading
import time
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import (
    ConnectionClosedError,
    OptionsError,
    TransportError,
)
from repro.sa.backends.base import (
    BackendRun,
    PortfolioPlan,
    RestartOutcome,
    RestartTask,
)
from repro.sa.backends.queue import (
    ENVELOPE_FORMAT_VERSION,
    QueueWorker,
    _check_wire_safe,
    decode_restart_result,
    encode_restart_task,
)
from repro.sa.backends.retry import RetryTracker
from repro.sa.transport.faults import FaultPlan, FaultyEndpoint
from repro.sa.transport.protocol import (
    KIND_ACK,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_INCUMBENT,
    KIND_PRUNED,
    KIND_RESULT,
    KIND_SHUTDOWN,
    KIND_TASK,
    Endpoint,
    negotiate_server,
)


@dataclass
class _Inflight:
    """One dispatched task awaiting its terminal frame."""

    task: RestartTask
    task_id: str
    dispatched: float
    acked: bool = False


@dataclass
class _Connection:
    """Driver-side state of one connected worker."""

    ordinal: int
    endpoint: Endpoint
    fd: int
    last_seen: float
    inflight: _Inflight | None = None


class SocketTransportBackend:
    """Drive the portfolio over loopback sockets to worker processes.

    ``workers`` overrides ``SaOptions.workers`` (``None`` falls back to
    the portfolio's ``jobs`` slots; ``0`` runs everything in-driver —
    the degraded mode, available explicitly).  ``spawn`` selects how
    workers come up: ``"process"`` execs ``python -m repro.sa.worker``,
    ``"thread"`` runs the same worker loop in daemon threads (fast, for
    tests — the protocol path is identical).  ``fault_plan`` replays a
    deterministic :class:`~repro.sa.transport.faults.FaultPlan` against
    the connections (chaos tests only).
    """

    name = "socket"

    def __init__(
        self,
        workers: int | None = None,
        fault_plan: FaultPlan | None = None,
        spawn: str = "process",
        connect_timeout: float = 15.0,
    ):
        if spawn not in ("process", "thread"):
            raise OptionsError(
                f"spawn must be 'process' or 'thread', got {spawn!r}"
            )
        if workers is not None and workers < 0:
            raise OptionsError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.fault_plan = fault_plan or FaultPlan()
        self.spawn = spawn
        self.connect_timeout = connect_timeout

    def run(self, plan: PortfolioPlan) -> BackendRun:
        _check_wire_safe(plan.coefficients)
        workers = self.workers
        if workers is None:
            workers = plan.options.workers
        if workers is None:
            workers = plan.jobs
        if workers > 0:
            workers = min(workers, len(plan.seeds))
        return _Driver(plan, self, workers).run()


class _Driver:
    """One portfolio execution: scheduler, liveness monitor, fallback."""

    def __init__(
        self, plan: PortfolioPlan, config: SocketTransportBackend, workers: int
    ):
        self.plan = plan
        self.options = plan.options
        self.config = config
        self.workers = workers
        self.tracker = RetryTracker(
            self.options.max_retries,
            backoff_base=self.options.backoff_base,
            label="socket worker",
        )
        self.record = BackendRun(outcomes=[], kind="socket")
        self.total = len(plan.seeds)
        #: [task, not-before] dispatch queue (monotonic not-before
        #: implements the retry backoff).
        self.pending: list[list] = [[task, 0.0] for task in plan.tasks()]
        self.done: set[int] = set()
        self.connections: dict[int, _Connection] = {}
        self.processes: list[subprocess.Popen] = []
        self.threads: list[threading.Thread] = []
        self.selector: selectors.BaseSelector | None = None
        self.listener: socket.socket | None = None
        self.port = 0
        # Spawn accounting: the budget bounds crash/respawn loops; a
        # spawn that never dials in within connect_timeout is written
        # off (but its budget is never refunded).
        self.spawn_budget = max(1, workers) * (self.options.max_retries + 2)
        self.spawn_count = 0
        self.unconnected = 0
        self.next_ordinal = 0
        self.accept_ordinal = 0
        self.last_spawn = time.monotonic()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def run(self) -> BackendRun:
        if self.workers <= 0:
            # Explicit degraded mode: no pool, everything in-driver.
            self._drain_in_driver()
            return self._finish()
        self.listener = socket.create_server(("127.0.0.1", 0))
        self.listener.setblocking(False)
        self.port = self.listener.getsockname()[1]
        self.selector = selectors.DefaultSelector()
        self.selector.register(self.listener, selectors.EVENT_READ, None)
        try:
            self._ensure_workers()
            while len(self.done) < self.total:
                self._pump()
                self._sweep_liveness()
                self._dispatch()
                if self._drained():
                    warnings.warn(
                        "socket worker pool drained (no live or spawnable "
                        "workers left); degrading to in-driver execution",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self._drain_in_driver()
                    break
        finally:
            self._cleanup()
        return self._finish()

    def _finish(self) -> BackendRun:
        self.record.outcomes.sort(key=lambda outcome: outcome.restart)
        self.record.retried_restarts = self.tracker.retried_restarts
        self.record.requeue_count = self.tracker.requeues
        return self.record

    # ------------------------------------------------------------------
    # I/O pump
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        timeout = max(0.01, min(self.options.heartbeat_interval, 0.25))
        for key, _ in self.selector.select(timeout):
            if key.data is None:
                self._accept()
            elif key.data.fd in self.connections:
                self._service(key.data)

    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self.listener.accept()
            except (BlockingIOError, OSError):
                return
            ordinal = self.accept_ordinal
            self.accept_ordinal += 1
            self.unconnected = max(0, self.unconnected - 1)
            sock.setblocking(True)
            faults = self.config.fault_plan.endpoint_faults(ordinal)
            endpoint: Endpoint = (
                FaultyEndpoint(sock, faults, side="driver")
                if faults
                else Endpoint(sock)
            )
            try:
                negotiate_server(
                    endpoint,
                    ENVELOPE_FORMAT_VERSION,
                    timeout=self.config.connect_timeout,
                    **self._ack_fields(),
                )
            except (TransportError, ConnectionClosedError):
                endpoint.close()
                self.record.worker_failures += 1
                continue
            fd = endpoint.fileno()
            connection = _Connection(
                ordinal=ordinal,
                endpoint=endpoint,
                fd=fd,
                last_seen=time.monotonic(),
            )
            self.connections[fd] = connection
            self.selector.register(endpoint.sock, selectors.EVENT_READ, connection)

    def _ack_fields(self) -> dict:
        best_objective, best_restart = self.plan.incumbent.snapshot()
        lower_bound = self.plan.incumbent.lower_bound
        return {
            "heartbeat_interval": self.options.heartbeat_interval,
            "prune": bool(self.plan.prune),
            "lower_bound": (
                None if lower_bound == -math.inf else float(lower_bound)
            ),
            "incumbent": (
                None
                if best_restart is None
                else [float(best_objective), int(best_restart)]
            ),
        }

    def _service(self, connection: _Connection) -> None:
        try:
            frames = connection.endpoint.receive_available()
        except (ConnectionClosedError, TransportError) as error:
            self._fail_connection(connection, str(error))
            return
        for frame in frames:
            self._handle_frame(connection, frame)

    # ------------------------------------------------------------------
    # Frame handling
    # ------------------------------------------------------------------
    def _handle_frame(self, connection: _Connection, frame: dict) -> None:
        connection.last_seen = time.monotonic()
        kind = frame.get("kind")
        if kind == KIND_ACK:
            inflight = connection.inflight
            if inflight and frame.get("task_id") == inflight.task_id:
                inflight.acked = True
        elif kind == KIND_RESULT:
            self._handle_result(connection, frame)
        elif kind == KIND_PRUNED:
            restart = int(frame.get("restart", -1))
            self._clear_inflight(connection, frame)
            if 0 <= restart < self.total and restart not in self.done:
                self.done.add(restart)
                self.record.pruned += 1
        elif kind == KIND_ERROR:
            self._handle_worker_error(connection, frame)
        elif kind == KIND_HEARTBEAT:
            self._reconcile_heartbeat(connection, frame)
        # Unknown kinds are ignored: forward compatibility beats
        # strictness once the versioned handshake has passed.

    def _clear_inflight(self, connection: _Connection, frame: dict) -> None:
        inflight = connection.inflight
        if inflight is None:
            return
        if frame.get("task_id") == inflight.task_id or int(
            frame.get("restart", -1)
        ) == inflight.task.restart:
            connection.inflight = None

    def _handle_result(self, connection: _Connection, frame: dict) -> None:
        restart = int(frame.get("restart", -1))
        wall_time = 0.0
        inflight = connection.inflight
        if inflight and frame.get("task_id") == inflight.task_id:
            wall_time = time.monotonic() - inflight.dispatched
        self._clear_inflight(connection, frame)
        if not (0 <= restart < self.total) or restart in self.done:
            return  # stray or duplicate delivery — first result wins
        try:
            outcome = decode_restart_result(frame["envelope"], wall_time=wall_time)
        except Exception as error:  # undecodable: treat as a failed run
            self.record.worker_failures += 1
            self._requeue(
                RestartTask(restart=restart, seed=self.plan.seeds[restart]),
                f"undecodable result envelope ({type(error).__name__}: {error})",
            )
            return
        self._record_outcome(outcome)

    def _record_outcome(self, outcome: RestartOutcome) -> None:
        self.done.add(outcome.restart)
        self.record.outcomes.append(outcome)
        self.plan.publish(outcome)
        if self.plan.prune:
            self._broadcast_incumbent()

    def _handle_worker_error(self, connection: _Connection, frame: dict) -> None:
        restart = frame.get("restart")
        self._clear_inflight(connection, frame)
        self.record.worker_failures += 1
        if restart is None:
            return
        restart = int(restart)
        if 0 <= restart < self.total and restart not in self.done:
            self._requeue(
                RestartTask(restart=restart, seed=self.plan.seeds[restart]),
                str(frame.get("message", "worker error")),
            )

    def _reconcile_heartbeat(self, connection: _Connection, frame: dict) -> None:
        inflight = connection.inflight
        if inflight is None or not inflight.acked:
            return
        if frame.get("task_id") == inflight.task_id:
            return  # still computing our task
        # The ACK proved the task arrived; the worker goes idle only
        # after sending the terminal frame, and TCP preserves order —
        # so an idle beat after the ACK means that frame was lost.
        connection.inflight = None
        if inflight.task.restart not in self.done:
            self._requeue(
                inflight.task, "result frame lost (worker idle after ack)"
            )

    def _broadcast_incumbent(self) -> None:
        best_objective, best_restart = self.plan.incumbent.snapshot()
        if best_restart is None:
            return
        for connection in list(self.connections.values()):
            try:
                connection.endpoint.send(
                    KIND_INCUMBENT,
                    objective6=float(best_objective),
                    restart=int(best_restart),
                )
            except (ConnectionClosedError, TransportError) as error:
                self._fail_connection(connection, str(error))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _next_task(self, now: float) -> RestartTask | None:
        """Pop the first dispatchable pending task, applying the same
        cancel/prune discipline as the queue backend on the way."""
        keep: list[list] = []
        chosen: RestartTask | None = None
        for entry in self.pending:
            task, not_before = entry
            if chosen is not None:
                keep.append(entry)
                continue
            if task.restart in self.done:
                continue  # superseded by a completed duplicate
            if task.restart > 0 and self.plan.expired():
                self.done.add(task.restart)
                self.record.cancelled += 1
                continue
            if self.plan.should_prune(task.restart):
                self.done.add(task.restart)
                self.record.pruned += 1
                continue
            if not_before > now:
                keep.append(entry)
                continue
            chosen = task
        self.pending = keep
        return chosen

    def _dispatch(self) -> None:
        now = time.monotonic()
        for connection in list(self.connections.values()):
            if connection.inflight is not None:
                continue
            task = self._next_task(now)
            if task is None:
                return
            envelope = encode_restart_task(
                self.plan.coefficients,
                self.plan.num_sites,
                self.options,
                task,
                remaining=self.plan.remaining(),
            )
            attempt = self.tracker.failures.get(task.restart, 0)
            task_id = f"{task.restart}:{attempt}"
            try:
                connection.endpoint.send(
                    KIND_TASK,
                    task_id=task_id,
                    restart=task.restart,
                    envelope=envelope,
                )
            except (ConnectionClosedError, TransportError) as error:
                # The task never left: put it straight back (no retry
                # budget spent) and write the connection off.
                self.pending.append([task, now])
                self._fail_connection(connection, str(error))
                continue
            connection.inflight = _Inflight(
                task=task, task_id=task_id, dispatched=now
            )

    def _requeue(self, task: RestartTask, reason: str) -> None:
        """Count a failed attempt and reschedule after its backoff.

        Raises SolverError (via the tracker) once the restart's retry
        budget is spent.
        """
        delay = self.tracker.record_failure(task.restart, task.seed, reason)
        self.pending.append([task, time.monotonic() + delay])

    # ------------------------------------------------------------------
    # Liveness + worker pool
    # ------------------------------------------------------------------
    def _sweep_liveness(self) -> None:
        now = time.monotonic()
        timeout = self.options.heartbeat_timeout
        for connection in list(self.connections.values()):
            silence = now - connection.last_seen
            if silence > timeout:
                self._fail_connection(
                    connection,
                    f"no frames for {silence:.2f}s "
                    f"(heartbeat_timeout={timeout}s) — dead or stalled",
                )
                continue
            inflight = connection.inflight
            if (
                inflight is not None
                and not inflight.acked
                and now - inflight.dispatched > timeout
            ):
                # The TASK frame (or its ACK) was lost in transit; the
                # connection still heartbeats, so keep it and requeue.
                connection.inflight = None
                if inflight.task.restart not in self.done:
                    self._requeue(
                        inflight.task,
                        "task not acknowledged before heartbeat_timeout",
                    )
        self._ensure_workers()

    def _fail_connection(self, connection: _Connection, reason: str) -> None:
        if connection.fd not in self.connections:
            return  # already written off
        del self.connections[connection.fd]
        self.record.worker_failures += 1
        try:
            self.selector.unregister(connection.endpoint.sock)
        except (KeyError, ValueError, OSError):
            pass
        connection.endpoint.close()
        inflight = connection.inflight
        connection.inflight = None
        if inflight is not None and inflight.task.restart not in self.done:
            self._requeue(inflight.task, reason)

    def _ensure_workers(self) -> None:
        now = time.monotonic()
        if self.unconnected and now - self.last_spawn > self.config.connect_timeout:
            # Spawns that never dialed in are presumed dead.  Their
            # budget is not refunded — that is what makes a pre-connect
            # crash loop terminate.
            self.unconnected = 0
        while (
            len(self.connections) + self.unconnected < self.workers
            and self.spawn_count < self.spawn_budget
        ):
            self._spawn_one(self.next_ordinal)
            self.next_ordinal += 1
            self.spawn_count += 1
            self.unconnected += 1
            self.last_spawn = now

    def _drained(self) -> bool:
        return (
            not self.connections
            and self.unconnected == 0
            and self.spawn_count >= self.spawn_budget
        )

    def _spawn_one(self, ordinal: int) -> None:
        worker_faults = self.config.fault_plan.worker_faults(ordinal)
        if self.config.spawn == "thread":
            thread = threading.Thread(
                target=self._thread_worker,
                args=("127.0.0.1", self.port, worker_faults),
                name=f"sa-socket-worker-{ordinal}",
                daemon=True,
            )
            thread.start()
            self.threads.append(thread)
            return
        command = [
            sys.executable,
            "-m",
            "repro.sa.worker",
            "--connect",
            f"127.0.0.1:{self.port}",
        ]
        if worker_faults:
            command += [
                "--fault-plan",
                FaultPlan(faults=tuple(worker_faults)).to_json(),
            ]
        import repro

        source_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            source_root + os.pathsep + existing if existing else source_root
        )
        self.processes.append(
            subprocess.Popen(
                command,
                env=env,
                stdin=subprocess.DEVNULL,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
        )

    @staticmethod
    def _thread_worker(host: str, port: int, faults: list) -> None:
        from repro.sa.transport.faults import FaultInjected
        from repro.sa.worker import run_worker

        try:
            run_worker(host, port, faults=faults)
        except (FaultInjected, TransportError, ConnectionClosedError, OSError):
            pass  # scheduled deaths and driver teardown are expected

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------
    def _drain_in_driver(self) -> None:
        """Run everything still owed through the queue-worker loop.

        Same envelope encode/decode path as the remote workers, so the
        outcomes — and hence the portfolio best — stay bitwise
        identical; retry bookkeeping keeps running so a poisoned
        restart still fails loudly instead of looping.
        """
        worker = QueueWorker()
        self.pending = [[task, 0.0] for task, _ in self.pending]
        while len(self.done) < self.total:
            task = self._next_task(time.monotonic())
            if task is None:
                break  # everything left was cancelled or pruned
            envelope = encode_restart_task(
                self.plan.coefficients,
                self.plan.num_sites,
                self.options,
                task,
                remaining=self.plan.remaining(),
            )
            started = time.perf_counter()
            try:
                result = worker.run(envelope)
            except Exception as error:
                self.record.worker_failures += 1
                self._requeue(task, f"{type(error).__name__}: {error}")
                self.pending[-1][1] = 0.0  # no backoff in-driver
                continue
            outcome = decode_restart_result(
                result, wall_time=time.perf_counter() - started
            )
            if outcome.restart in self.done:
                continue
            self._record_outcome(outcome)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _cleanup(self) -> None:
        for connection in list(self.connections.values()):
            try:
                connection.endpoint.send(KIND_SHUTDOWN)
            except Exception:
                pass
            connection.endpoint.close()
        self.connections.clear()
        if self.selector is not None:
            self.selector.close()
        if self.listener is not None:
            self.listener.close()
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        for process in self.processes:
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=5)
        for thread in self.threads:
            thread.join(timeout=2)
