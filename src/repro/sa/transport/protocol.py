"""Length-prefixed JSON frames, and the connect-time version handshake.

Wire layout (one *frame*)::

    +----------------+---------------------------+
    | length: !I     | payload: UTF-8 JSON text  |
    +----------------+---------------------------+
      4 bytes,          exactly ``length`` bytes,
      big-endian,        one JSON object with a
      payload size       ``"kind"`` member

Every message between the driver and a worker is one frame; the JSON
payload always carries a ``"kind"`` discriminator (one of the ``KIND_*``
constants below) and is dumped with sorted keys so identical messages
are identical bytes — which is what lets the fault harness target, say,
"the third RESULT frame" deterministically, and lets the driver treat a
re-sent task envelope as an idempotency key.

The task/result *envelopes* themselves (the JSON documents defined by
:mod:`repro.sa.backends.queue`) ride inside TASK/RESULT frames as
strings, not as inlined objects: the envelope bytes on the socket are
exactly the bytes :func:`~repro.sa.backends.queue.encode_restart_task`
produced, so the cross-backend bitwise contract needs no re-proof here.

Version negotiation happens once per connection, before anything else:
the worker opens with a HELLO listing every protocol version it speaks
plus the envelope format version it was built with; the driver picks
the highest protocol version both sides share and echoes it in a
HELLO-ACK (along with the portfolio's heartbeat interval and the
current incumbent snapshot), or answers with an ERROR frame and drops
the connection when there is no overlap.  Envelope versions must match
exactly — a worker that would re-encode options differently cannot be
trusted with bitwise determinism.
"""

from __future__ import annotations

import json
import select
import socket
import struct
import threading
from typing import Any

from repro.exceptions import ConnectionClosedError, TransportError

#: Protocol version this build speaks (and the list it will negotiate
#: from).  Bump when the frame layout or the frame-kind vocabulary
#: changes incompatibly.
PROTOCOL_VERSION = 1
SUPPORTED_PROTOCOL_VERSIONS = (1,)

#: Refuse frames larger than this (a corrupt length prefix otherwise
#: asks us to allocate gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct("!I")

# -- frame kinds -------------------------------------------------------
KIND_HELLO = "hello"            # worker -> driver: version offer
KIND_HELLO_ACK = "hello-ack"    # driver -> worker: chosen version + config
KIND_TASK = "task"              # driver -> worker: one task envelope
KIND_ACK = "ack"                # worker -> driver: task frame received
KIND_RESULT = "result"          # worker -> driver: one result envelope
KIND_PRUNED = "pruned"          # worker -> driver: task pruned worker-side
KIND_HEARTBEAT = "heartbeat"    # worker -> driver: liveness + current task
KIND_INCUMBENT = "incumbent"    # driver -> worker: incumbent broadcast
KIND_ERROR = "error"            # either way: structured failure report
KIND_SHUTDOWN = "shutdown"      # driver -> worker: drain and exit


def encode_frame(kind: str, **fields: Any) -> bytes:
    """Encode one frame (length prefix + sorted-key JSON payload)."""
    payload = dict(fields)
    payload["kind"] = kind
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _LENGTH.pack(len(data)) + data


def decode_payload(data: bytes) -> dict[str, Any]:
    """Decode one frame payload; raises TransportError on garbage."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(
            f"undecodable frame payload ({type(error).__name__}: {error})"
        ) from error
    if not isinstance(payload, dict) or "kind" not in payload:
        raise TransportError(
            "frame payload is not a JSON object with a 'kind' member"
        )
    return payload


class Endpoint:
    """One side of a framed connection over a connected socket.

    Sending is thread-safe (the worker's heartbeat ticker shares the
    socket with its task loop); receiving buffers partial frames so a
    frame split across TCP segments is reassembled transparently.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._send_lock = threading.Lock()
        self._buffer = bytearray()
        self._closed = False

    # -- sending -------------------------------------------------------
    def send(self, kind: str, **fields: Any) -> None:
        self.send_raw(encode_frame(kind, **fields))

    def send_raw(self, frame: bytes) -> None:
        """Send pre-encoded frame bytes (the fault layer's corrupt hook
        flips payload bytes here, after the length prefix is fixed)."""
        with self._send_lock:
            try:
                self.sock.sendall(frame)
            except OSError as error:
                raise ConnectionClosedError(
                    f"connection lost while sending ({error})"
                ) from error

    # -- receiving -----------------------------------------------------
    def _read_more(self, timeout: float | None) -> bool:
        """Pull more bytes into the buffer.  Returns False on timeout;
        raises ConnectionClosedError on EOF or a reset connection.

        Readiness comes from ``select`` rather than ``settimeout`` so
        the socket stays in blocking mode — a worker's heartbeat ticker
        sends on the same socket its task loop receives on, and a
        per-socket timeout would race between the two threads.
        """
        try:
            ready, _, _ = select.select([self.sock], [], [], timeout)
            if not ready:
                return False
            chunk = self.sock.recv(65536)
        except OSError as error:
            raise ConnectionClosedError(
                f"connection lost while receiving ({error})"
            ) from error
        if not chunk:
            raise ConnectionClosedError("peer closed the connection")
        self._buffer.extend(chunk)
        return True

    def _pop_frame(self) -> dict[str, Any] | None:
        """Decode one complete frame from the buffer, if present."""
        if len(self._buffer) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack_from(self._buffer)
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame announces {length} bytes, over MAX_FRAME_BYTES "
                f"({MAX_FRAME_BYTES}) — corrupt length prefix?"
            )
        end = _LENGTH.size + length
        if len(self._buffer) < end:
            return None
        data = bytes(self._buffer[_LENGTH.size:end])
        del self._buffer[:end]
        return decode_payload(data)

    def recv(self, timeout: float | None = None) -> dict[str, Any] | None:
        """Receive one frame; ``None`` when ``timeout`` elapses first.

        Raises :class:`~repro.exceptions.ConnectionClosedError` when the
        peer goes away and :class:`~repro.exceptions.TransportError` on
        an undecodable frame.
        """
        while True:
            frame = self._pop_frame()
            if frame is not None:
                return frame
            if not self._read_more(timeout):
                return None

    def receive_available(self) -> list[dict[str, Any]]:
        """Drain every frame that can be had without blocking (the
        driver calls this when ``selectors`` reports the socket ready)."""
        frames: list[dict[str, Any]] = []
        while True:
            frame = self._pop_frame()
            if frame is not None:
                frames.append(frame)
                continue
            if not self._read_more(0.0):
                return frames

    def fileno(self) -> int:
        return self.sock.fileno()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self.sock.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# Version negotiation
# ----------------------------------------------------------------------
def negotiate_client(
    endpoint: Endpoint,
    envelope_version: int,
    timeout: float = 30.0,
) -> dict[str, Any]:
    """Worker-side handshake: offer versions, await the driver's pick.

    Returns the HELLO-ACK payload (carrying ``protocol_version``,
    ``heartbeat_interval``, the ``prune`` flag and the current incumbent
    snapshot).  Raises TransportError if the driver rejects us or the
    handshake times out.
    """
    endpoint.send(
        KIND_HELLO,
        protocol_versions=list(SUPPORTED_PROTOCOL_VERSIONS),
        envelope_version=envelope_version,
    )
    ack = endpoint.recv(timeout=timeout)
    if ack is None:
        raise TransportError(f"handshake timed out after {timeout}s")
    if ack["kind"] == KIND_ERROR:
        raise TransportError(
            f"driver rejected the connection: {ack.get('message')}"
        )
    if ack["kind"] != KIND_HELLO_ACK:
        raise TransportError(
            f"expected a {KIND_HELLO_ACK!r} frame, got {ack['kind']!r}"
        )
    chosen = ack.get("protocol_version")
    if chosen not in SUPPORTED_PROTOCOL_VERSIONS:
        raise TransportError(
            f"driver chose protocol version {chosen!r}, but this worker "
            f"speaks {sorted(SUPPORTED_PROTOCOL_VERSIONS)}"
        )
    return ack


def negotiate_server(
    endpoint: Endpoint,
    envelope_version: int,
    timeout: float = 30.0,
    **ack_fields: Any,
) -> int:
    """Driver-side handshake: read the worker's HELLO, pick a version.

    Picks the highest protocol version both sides share and answers
    with a HELLO-ACK carrying the chosen version plus ``ack_fields``
    (heartbeat interval, prune flag, incumbent snapshot).  On a version
    mismatch the worker gets a structured ERROR frame *before* the
    TransportError is raised driver-side, so a newer/older worker fails
    with a message instead of a dead socket.
    """
    hello = endpoint.recv(timeout=timeout)
    if hello is None:
        raise TransportError(f"handshake timed out after {timeout}s")
    if hello["kind"] != KIND_HELLO:
        raise TransportError(
            f"expected a {KIND_HELLO!r} frame, got {hello['kind']!r}"
        )
    offered = hello.get("protocol_versions")
    if not isinstance(offered, list):
        raise TransportError("HELLO frame lacks a protocol_versions list")
    shared = sorted(set(offered) & set(SUPPORTED_PROTOCOL_VERSIONS))
    if not shared:
        message = (
            f"no shared protocol version: worker offers {sorted(offered)}, "
            f"driver speaks {sorted(SUPPORTED_PROTOCOL_VERSIONS)}"
        )
        endpoint.send(KIND_ERROR, message=message)
        raise TransportError(message)
    worker_envelope = hello.get("envelope_version")
    if worker_envelope != envelope_version:
        message = (
            f"envelope format version mismatch: worker writes version "
            f"{worker_envelope!r}, driver reads version {envelope_version} "
            f"(bitwise determinism needs an exact match)"
        )
        endpoint.send(KIND_ERROR, message=message)
        raise TransportError(message)
    chosen = shared[-1]
    endpoint.send(KIND_HELLO_ACK, protocol_version=chosen, **ack_fields)
    return chosen
