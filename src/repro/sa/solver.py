"""Facade turning the annealer into a :class:`PartitioningResult`."""

from __future__ import annotations

import time

from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.exceptions import SolverError
from repro.model.instance import ProblemInstance
from repro.partition.assignment import PartitioningResult
from repro.sa.annealer import SimulatedAnnealer
from repro.sa.options import SaOptions


class SaPartitioner:
    """Simulated-annealing vertical partitioning (the paper's SA solver)."""

    def __init__(
        self,
        instance: ProblemInstance | CostCoefficients,
        num_sites: int,
        parameters: CostParameters | None = None,
        options: SaOptions | None = None,
    ):
        if isinstance(instance, CostCoefficients):
            self.coefficients = instance
            if parameters is not None and parameters != instance.parameters:
                raise SolverError(
                    "pass either prebuilt coefficients or parameters, not "
                    "conflicting versions of both"
                )
        else:
            self.coefficients = build_coefficients(instance, parameters)
        if num_sites < 1:
            raise SolverError(f"need at least one site, got {num_sites}")
        self.num_sites = num_sites
        self.options = options or SaOptions()

    def solve(self) -> PartitioningResult:
        started = time.perf_counter()
        annealer = SimulatedAnnealer(self.coefficients, self.num_sites, self.options)
        x, y, objective6 = annealer.run()
        wall_time = time.perf_counter() - started
        evaluator = SolutionEvaluator(self.coefficients)
        return PartitioningResult(
            coefficients=self.coefficients,
            x=x,
            y=y,
            objective=evaluator.objective4(x, y),
            solver="sa",
            wall_time=wall_time,
            proven_optimal=False,
            metadata={
                "objective6": objective6,
                "iterations": annealer.trace.iterations,
                "accepted": annealer.trace.accepted,
                "accepted_worse": annealer.trace.accepted_worse,
                "outer_loops": annealer.trace.outer_loops,
                "disjoint": self.options.disjoint,
                "subsolver": self.options.subsolver,
            },
        )


def solve_sa(
    instance: ProblemInstance,
    num_sites: int,
    parameters: CostParameters | None = None,
    options: SaOptions | None = None,
    seed: int | None = None,
) -> PartitioningResult:
    """One-call convenience wrapper around :class:`SaPartitioner`."""
    if seed is not None:
        from dataclasses import replace

        options = replace(options or SaOptions(), seed=seed)
    partitioner = SaPartitioner(instance, num_sites, parameters=parameters, options=options)
    return partitioner.solve()
