"""Facade turning the annealer into a :class:`PartitioningResult`."""

from __future__ import annotations

import time

from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.exceptions import SolverError
from repro.model.instance import ProblemInstance
from repro.partition.assignment import PartitioningResult
from repro.sa.annealer import SimulatedAnnealer
from repro.sa.options import SaOptions
from repro.sa.portfolio import run_portfolio


class SaPartitioner:
    """Simulated-annealing vertical partitioning (the paper's SA solver).

    With ``options.restarts > 1`` the solve runs a multi-start portfolio
    (:mod:`repro.sa.portfolio`): best-of-N independently seeded
    annealing runs, optionally across ``options.jobs`` workers.
    """

    def __init__(
        self,
        instance: ProblemInstance | CostCoefficients,
        num_sites: int,
        parameters: CostParameters | None = None,
        options: SaOptions | None = None,
    ):
        if isinstance(instance, CostCoefficients):
            self.coefficients = instance
            if parameters is not None and parameters != instance.parameters:
                raise SolverError(
                    "pass either prebuilt coefficients or parameters, not "
                    "conflicting versions of both"
                )
        else:
            self.coefficients = build_coefficients(instance, parameters)
        if num_sites < 1:
            raise SolverError(f"need at least one site, got {num_sites}")
        self.num_sites = num_sites
        self.options = options or SaOptions()
        # Fail on bad options here, before any annealing starts (raises
        # OptionsError; dataclasses.replace-built options re-validate in
        # __post_init__, but options coming from deserialisation paths
        # may not have).
        self.options.validate()

    def solve(self) -> PartitioningResult:
        if (
            self.options.restarts > 1
            or self.options.portfolio_time_limit is not None
            or self.options.backend is not None
        ):
            # A portfolio budget on a single restart still routes through
            # the portfolio so the deadline is honoured; an explicit
            # execution backend routes through the portfolio so the
            # backend is exercised even for restarts=1.
            return self._solve_portfolio()
        started = time.perf_counter()
        annealer = SimulatedAnnealer(self.coefficients, self.num_sites, self.options)
        x, y, objective6 = annealer.run()
        wall_time = time.perf_counter() - started
        evaluator = SolutionEvaluator(self.coefficients)
        return PartitioningResult(
            coefficients=self.coefficients,
            x=x,
            y=y,
            objective=evaluator.objective4(x, y),
            solver="sa",
            wall_time=wall_time,
            proven_optimal=False,
            metadata={
                "objective6": objective6,
                "iterations": annealer.trace.iterations,
                "accepted": annealer.trace.accepted,
                "accepted_worse": annealer.trace.accepted_worse,
                "outer_loops": annealer.trace.outer_loops,
                "disjoint": self.options.disjoint,
                "subsolver": self.options.subsolver,
            },
        )

    def _solve_portfolio(self) -> PartitioningResult:
        portfolio = run_portfolio(self.coefficients, self.num_sites, self.options)
        best = next(
            outcome
            for outcome in portfolio.outcomes
            if outcome.restart == portfolio.best_restart
        )
        evaluator = SolutionEvaluator(self.coefficients)
        return PartitioningResult(
            coefficients=self.coefficients,
            x=portfolio.x,
            y=portfolio.y,
            objective=evaluator.objective4(portfolio.x, portfolio.y),
            solver="sa",
            wall_time=portfolio.wall_time,
            proven_optimal=False,
            metadata={
                "objective6": portfolio.objective6,
                "iterations": sum(o.iterations for o in portfolio.outcomes),
                "accepted": sum(o.accepted for o in portfolio.outcomes),
                "accepted_worse": sum(o.accepted_worse for o in portfolio.outcomes),
                "outer_loops": best.outer_loops,
                "disjoint": self.options.disjoint,
                "subsolver": self.options.subsolver,
                "restarts": self.options.restarts,
                "jobs": self.options.jobs,
                "executor": portfolio.executor,
                "best_restart": portfolio.best_restart,
                "restart_seeds": portfolio.restart_seeds,
                "restart_objectives": portfolio.restart_objectives,
                "cancelled_restarts": portfolio.cancelled,
                "pruned_restarts": portfolio.pruned,
                "retried_restarts": portfolio.retried_restarts,
                "requeue_count": portfolio.requeue_count,
                "worker_failures": portfolio.worker_failures,
            },
        )


def solve_sa(
    instance: ProblemInstance | CostCoefficients,
    num_sites: int,
    parameters: CostParameters | None = None,
    options: SaOptions | None = None,
    seed: int | None = None,
    restarts: int | None = None,
    jobs: int | None = None,
) -> PartitioningResult:
    """One-call convenience wrapper: a thin shim over the unified
    advisor API (``advise`` with strategy ``"sa"``), kept for
    compatibility and pinned by test to return the same result as the
    direct :class:`SaPartitioner` call.

    ``seed``, ``restarts`` and ``jobs`` override the corresponding
    :class:`SaOptions` fields when given.
    """
    from dataclasses import asdict, replace

    from repro.api.advisor import advise
    from repro.api.request import SolveRequest

    overrides: dict[str, int] = {}
    if seed is not None:
        overrides["seed"] = seed
    if restarts is not None:
        overrides["restarts"] = restarts
    if jobs is not None:
        overrides["jobs"] = jobs
    if overrides:
        options = replace(options or SaOptions(), **overrides)
    if isinstance(instance, CostCoefficients):
        # Prebuilt coefficients skip the advisor (which would rebuild
        # them from the instance) and go to the partitioner directly.
        return SaPartitioner(
            instance, num_sites, parameters=parameters, options=options
        ).solve()
    option_fields = asdict(options or SaOptions())
    disjoint = option_fields.pop("disjoint")
    request = SolveRequest(
        instance=instance,
        num_sites=num_sites,
        parameters=parameters or CostParameters(),
        allow_replication=not disjoint,
        strategy="sa",
        options=option_fields,
    )
    return advise(request).result
