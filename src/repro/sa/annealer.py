"""Algorithm 1: the simulated-annealing loop.

The inner loop evaluates one candidate per iteration.  By default the
cost of the incumbent is kept as mutable state in an
:class:`~repro.costmodel.incremental.IncrementalEvaluator`: a candidate
is probed inside a ``begin_trial`` / ``commit``-or-``rollback`` bracket,
so its objective (6) and the greedy sub-problem inputs are produced from
delta updates instead of dense ``(|A|, |T|, |S|)`` products.
``SaOptions(incremental=False)`` forces the dense evaluator everywhere.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.costmodel.coefficients import CostCoefficients
from repro.costmodel.evaluator import SolutionEvaluator
from repro.costmodel.incremental import IncrementalEvaluator
from repro.sa.neighborhood import (
    extend_replication,
    merge_sites,
    move_components,
    move_transactions,
)
from repro.sa.options import (
    INITIAL_ACCEPT_PROBABILITY,
    INITIAL_WORSE_FRACTION,
    SaOptions,
)
from repro.sa.state import (
    component_placement_to_x,
    random_transaction_placement,
    read_sharing_components,
)
from repro.sa.subsolve import SubproblemSolver


@dataclass
class AnnealingTrace:
    """Progress record of one annealing run (for tests and plots)."""

    iterations: int = 0
    accepted: int = 0
    accepted_worse: int = 0
    outer_loops: int = 0
    #: best objective6 after each outer loop
    best_history: list[float] = field(default_factory=list)


class SimulatedAnnealer:
    """Runs Algorithm 1 against fixed cost coefficients.

    The annealer minimises the blended objective (6); the best visited
    solution (by objective (6)) is returned together with its objective
    (4) value, matching the paper's reporting convention.  Every exit
    path — freeze, patience, loop cap and wall-clock timeout — is
    guarded by the collapsed one-site layout, so the returned solution
    is never worse than the trivial ``|S| = 1`` placement.
    """

    def __init__(
        self,
        coefficients: CostCoefficients,
        num_sites: int,
        options: SaOptions | None = None,
    ):
        self.coefficients = coefficients
        self.num_sites = num_sites
        self.options = options or SaOptions()
        self.evaluator = SolutionEvaluator(coefficients)
        self.subsolver = SubproblemSolver(coefficients, num_sites)
        self.trace = AnnealingTrace()

    # ------------------------------------------------------------------
    def run(self) -> tuple[np.ndarray, np.ndarray, float]:
        """Anneal and return ``(x, y, best_objective6)``."""
        options = self.options
        rng = np.random.default_rng(options.seed)
        started = time.perf_counter()

        if options.disjoint:
            return self._run_disjoint(rng, started)

        warm = self._warm_start_matrix()
        if warm is not None:
            # Warm start: restart 0's initial solution replays the
            # incumbent (repaired to feasibility), so the best visited
            # cost is <= the stay-put cost by construction.
            x, y = warm_start_solution(
                self.subsolver, warm, disjoint=False
            )[:2]
        else:
            # Line 3-5: random x, findSolution with x fixed.
            x = random_transaction_placement(
                self.coefficients.num_transactions, self.num_sites, rng
            )
            y = self._optimize_y(x)
        incremental = self._make_incremental(x, y)
        if incremental is not None:
            current_cost = incremental.objective6()
        else:
            current_cost = self.evaluator.objective6(x, y)
        best_x, best_y, best_cost = x, y, current_cost

        # Section 5.1 temperature rule.
        tau = initial_temperature(best_cost)
        freeze_tau = tau * options.freeze_ratio
        fix = "x"
        stale_outer = 0

        for outer in range(options.max_outer_loops):
            improved = False
            for _ in range(options.inner_loops):
                self.trace.iterations += 1
                if (
                    options.time_limit is not None
                    and time.perf_counter() - started > options.time_limit
                ):
                    self._finish(outer + 1)
                    return self._best_against_collapsed(best_x, best_y, best_cost)
                # Lines 8-10: perturb both vectors, re-optimise the free one.
                if rng.random() < options.merge_probability:
                    candidate_x = merge_sites(x, rng)
                else:
                    candidate_x = move_transactions(x, rng, options.move_fraction)
                candidate_y = extend_replication(y, rng, options.move_fraction)
                if incremental is not None:
                    incremental.begin_trial()
                    if fix == "x":
                        new_x = candidate_x
                        incremental.assign_x(new_x)
                        new_y = self._optimize_y(new_x, incremental)
                        incremental.assign_y(new_y)
                    else:
                        incremental.assign_y(candidate_y)
                        new_x = self._optimize_x(candidate_y, incremental)
                        incremental.assign_x(new_x)
                        new_y = candidate_y | incremental.forced_y()
                        incremental.assign_y(new_y)
                    new_cost = incremental.objective6()
                elif fix == "x":
                    new_x = candidate_x
                    new_y = self._optimize_y(new_x)
                    new_cost = self.evaluator.objective6(new_x, new_y)
                else:
                    new_x = self._optimize_x(candidate_y)
                    new_y = self.subsolver.repair_y(new_x, candidate_y)
                    new_cost = self.evaluator.objective6(new_x, new_y)
                delta = new_cost - current_cost
                if delta <= 0 or rng.random() < math.exp(-delta / tau):
                    if incremental is not None:
                        incremental.commit()
                    self.trace.accepted += 1
                    if delta > 0:
                        self.trace.accepted_worse += 1
                    x, y, current_cost = new_x, new_y, new_cost
                    if current_cost < best_cost:
                        best_x, best_y, best_cost = x, y, current_cost
                        improved = True
                elif incremental is not None:
                    incremental.rollback()
                fix = "y" if fix == "x" else "x"
            tau *= options.cooling_rate
            self.trace.outer_loops = outer + 1
            self.trace.best_history.append(best_cost)
            stale_outer = 0 if improved else stale_outer + 1
            if tau < freeze_tau or stale_outer >= options.patience:
                break
        self._finish(self.trace.outer_loops)
        return self._best_against_collapsed(best_x, best_y, best_cost)

    # ------------------------------------------------------------------
    def _run_disjoint(
        self, rng: np.random.Generator, started: float
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Disjoint variant: anneal over component placements.

        Transactions sharing read attributes must be co-located when no
        replication is allowed, so the unit of movement is the connected
        component of the read-sharing graph and ``y`` follows ``x``
        deterministically via the disjoint sub-solver.
        """
        options = self.options
        labels = read_sharing_components(self.coefficients)
        num_components = int(labels.max()) + 1
        warm = self._warm_start_matrix()
        if warm is not None:
            # Deterministic warm start: each component goes to the site
            # holding the most of its read attributes in the incumbent.
            assignment = majority_component_assignment(
                labels, num_components, self.num_sites, self.coefficients, warm
            )
        else:
            assignment = rng.integers(0, self.num_sites, size=num_components)
        x = component_placement_to_x(labels, assignment, self.num_sites)
        y = self.subsolver.optimize_y_greedy(x, disjoint=True)
        incremental = self._make_incremental(x, y)
        if incremental is not None:
            current_cost = incremental.objective6()
        else:
            current_cost = self.evaluator.objective6(x, y)
        best = (x, y, current_cost)

        tau = initial_temperature(current_cost)
        freeze_tau = tau * options.freeze_ratio
        stale_outer = 0
        for outer in range(options.max_outer_loops):
            improved = False
            for _ in range(options.inner_loops):
                self.trace.iterations += 1
                if (
                    options.time_limit is not None
                    and time.perf_counter() - started > options.time_limit
                ):
                    self._finish(outer + 1)
                    return self._best_against_collapsed(*best)
                candidate = move_components(
                    assignment, self.num_sites, rng, options.move_fraction
                )
                new_x = component_placement_to_x(labels, candidate, self.num_sites)
                if incremental is not None:
                    incremental.begin_trial()
                    incremental.assign_x(new_x)
                    k, load_weight, forced = incremental.y_subproblem_inputs()
                    new_y = self.subsolver.optimize_y_greedy(
                        new_x,
                        disjoint=True,
                        k=k,
                        load_weight=load_weight,
                        forced=forced,
                    )
                    incremental.assign_y(new_y)
                    new_cost = incremental.objective6()
                else:
                    new_y = self.subsolver.optimize_y_greedy(new_x, disjoint=True)
                    new_cost = self.evaluator.objective6(new_x, new_y)
                delta = new_cost - current_cost
                if delta <= 0 or rng.random() < math.exp(-delta / tau):
                    if incremental is not None:
                        incremental.commit()
                    self.trace.accepted += 1
                    if delta > 0:
                        self.trace.accepted_worse += 1
                    assignment, x, y, current_cost = candidate, new_x, new_y, new_cost
                    if current_cost < best[2]:
                        best = (x, y, current_cost)
                        improved = True
                elif incremental is not None:
                    incremental.rollback()
            tau *= options.cooling_rate
            self.trace.outer_loops = outer + 1
            self.trace.best_history.append(best[2])
            stale_outer = 0 if improved else stale_outer + 1
            if tau < freeze_tau or stale_outer >= options.patience:
                break
        self._finish(self.trace.outer_loops)
        return self._best_against_collapsed(*best)

    # ------------------------------------------------------------------
    def _best_against_collapsed(
        self, best_x: np.ndarray, best_y: np.ndarray, best_cost: float
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Guard: never return worse than the trivial one-site layout.

        The all-on-one-site solution is always feasible for any |S|;
        on low-potential instances (the paper's rndB class, where its
        Table 3 reports SA == S=1) it is frequently optimal, and this
        makes that outcome deterministic instead of search-dependent.
        Every exit path — including wall-clock timeouts — runs through
        this guard.
        """
        num_transactions = self.coefficients.num_transactions
        x = np.zeros((num_transactions, self.num_sites), dtype=bool)
        x[:, 0] = True
        y = self.subsolver.optimize_y_greedy(x, disjoint=self.options.disjoint)
        cost = self.evaluator.objective6(x, y)
        if cost < best_cost:
            return x, y, cost
        return best_x, best_y, best_cost

    def _warm_start_matrix(self) -> np.ndarray | None:
        """The incumbent ``(|A|, |S|)`` indicator, or ``None``."""
        if self.options.warm_start is None:
            return None
        from repro.partition.current_layout import CurrentLayout

        layout = CurrentLayout.from_dict(self.options.warm_start)
        return layout.to_matrix(self.coefficients.instance, self.num_sites)

    def _make_incremental(
        self, x: np.ndarray, y: np.ndarray
    ) -> IncrementalEvaluator | None:
        if not self.options.incremental:
            return None
        incremental = IncrementalEvaluator(self.coefficients, self.num_sites)
        incremental.reset(x, y)
        return incremental

    def _optimize_y(
        self, x: np.ndarray, incremental: IncrementalEvaluator | None = None
    ) -> np.ndarray:
        if self.options.subsolver == "exact":
            return self.subsolver.optimize_y_exact(
                x, time_limit=self.options.exact_time_limit
            )
        if incremental is not None:
            k, load_weight, forced = incremental.y_subproblem_inputs()
            return self.subsolver.optimize_y_greedy(
                x, k=k, load_weight=load_weight, forced=forced
            )
        return self.subsolver.optimize_y_greedy(x)

    def _optimize_x(
        self, y: np.ndarray, incremental: IncrementalEvaluator | None = None
    ) -> np.ndarray:
        if self.options.subsolver == "exact":
            return self.subsolver.optimize_x_exact(
                y, time_limit=self.options.exact_time_limit
            )
        if incremental is not None:
            cost, read_load, missing, static_load = incremental.x_subproblem_inputs()
            return self.subsolver.optimize_x_greedy(
                y,
                cost=cost,
                read_load=read_load,
                missing=missing,
                static_load=static_load,
            )
        return self.subsolver.optimize_x_greedy(y)

    def _finish(self, outer_loops: int) -> None:
        self.trace.outer_loops = outer_loops


def warm_start_solution(
    subsolver: SubproblemSolver, y0: np.ndarray, disjoint: bool = False
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """The deterministic "stay-put" solution grown from an incumbent.

    Returns ``(x, y, assignment)``: transactions placed greedily
    against the incumbent replicas, then the incumbent repaired to
    feasibility under that placement (replicated mode), or the
    majority-site component placement with its derived disjoint ``y``.
    Shared between the annealer's warm start and
    :meth:`~repro.api.advisor.Advisor.readvise`'s stay-put costing, so
    "restart 0 replays the incumbent" and "the stay-put cost" are the
    same solution by construction.
    """
    coefficients = subsolver.coefficients
    num_sites = subsolver.num_sites
    y0 = np.asarray(y0) > 0.5  # boolean replica indicator
    if disjoint:
        labels = read_sharing_components(coefficients)
        num_components = int(labels.max()) + 1
        assignment = majority_component_assignment(
            labels, num_components, num_sites, coefficients, y0
        )
        x = component_placement_to_x(labels, assignment, num_sites)
        y = subsolver.optimize_y_greedy(x, disjoint=True)
        return x, y, assignment
    x = subsolver.optimize_x_greedy(y0)
    y = subsolver.repair_y(x, y0)
    return x, y, None


def majority_component_assignment(
    labels: np.ndarray,
    num_components: int,
    num_sites: int,
    coefficients: CostCoefficients,
    y0: np.ndarray,
) -> np.ndarray:
    """Per read-sharing component, the incumbent site holding most of
    the component's read attributes (lowest site on ties; components
    reading nothing go to site 0)."""
    phi = coefficients.phi_bool  # (|A|, |T|)
    votes = np.zeros((num_components, num_sites))
    for component in range(num_components):
        transactions = np.flatnonzero(labels == component)
        attributes = np.flatnonzero(phi[:, transactions].any(axis=1))
        if attributes.size:
            votes[component] = y0[attributes].sum(axis=0)
    # argmax breaks ties toward the lowest site, and all-zero vote rows
    # (attribute-less components) land on site 0.
    return votes.argmax(axis=1)


def initial_temperature(
    reference_cost: float,
    worse_fraction: float = INITIAL_WORSE_FRACTION,
    accept_probability: float = INITIAL_ACCEPT_PROBABILITY,
) -> float:
    """Section 5.1: ``tau = -worse_fraction * C* / ln(accept_probability)``.

    Chosen so a solution ``worse_fraction`` worse than the reference is
    accepted with ``accept_probability`` in the first iterations.
    """
    reference_cost = max(abs(reference_cost), 1e-12)
    return -worse_fraction * reference_cost / math.log(accept_probability)
