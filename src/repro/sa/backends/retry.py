"""The shared retry/requeue core of the fault-tolerant backends.

Both the in-process :class:`~repro.sa.backends.queue.QueueBackend` and
the :class:`~repro.sa.transport.socket_backend.SocketTransportBackend`
obey the same contract when a worker fails mid-restart: the restart is
requeued and retried — safely, because a task envelope is a pure
function of ``(restart, seed, single-run options)`` so the retry
reproduces exactly the outcome the failed attempt would have returned —
until the per-restart attempt budget (``max_retries`` failed attempts)
is spent, at which point the portfolio fails with
:class:`~repro.exceptions.SolverError`.  A silently lost restart would
change the best-of-N result, which the determinism contract forbids.

Retries wait out an exponential backoff whose jitter is *deterministic*,
derived from the restart's seed and the attempt number — so a retry
storm spreads out in wall-clock without introducing any nondeterminism
into scheduling decisions that tests replay.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import OptionsError, SolverError

#: Backoff delays never exceed this many seconds, however many attempts.
BACKOFF_CAP = 30.0


def validate_max_retries(max_retries: int) -> int:
    """Check a ``max_retries`` budget eagerly, before any solve starts.

    A negative budget is a configuration error, not "never retry" —
    that is what ``0`` means — so it raises
    :class:`~repro.exceptions.OptionsError` instead of silently
    disabling the fault tolerance the caller asked for.
    """
    if not isinstance(max_retries, int) or isinstance(max_retries, bool):
        raise OptionsError(
            f"max_retries must be an integer >= 0, got {max_retries!r}"
        )
    if max_retries < 0:
        raise OptionsError(
            f"max_retries must be >= 0, got {max_retries} "
            f"(0 means failed restarts are never retried)"
        )
    return max_retries


def backoff_delay(
    attempt: int,
    base: float,
    seed: int | None = None,
    restart: int = 0,
    cap: float = BACKOFF_CAP,
) -> float:
    """Seconds to wait before retry ``attempt`` (1-based) of a restart.

    Exponential in the attempt number with a multiplicative jitter in
    ``[0.5, 1.5)`` drawn from an RNG keyed on ``(seed, attempt)`` — the
    restart's own seed, or its index when the portfolio runs unseeded —
    so the delay is a deterministic function of the task, not of
    wall-clock or scheduling races.
    """
    if base <= 0:
        return 0.0
    entropy = restart if seed is None else seed
    rng = np.random.default_rng([abs(int(entropy)), int(attempt)])
    jitter = 0.5 + rng.random()
    return min(cap, base * (2.0 ** (attempt - 1)) * jitter)


class RetryTracker:
    """Driver-side bookkeeping of failed restart attempts.

    Attempt counts stay on the driver (never in the task envelope), so
    a retried task re-encodes to the exact same bytes — transports can
    use the envelope itself as a dedup/idempotency key.
    """

    def __init__(
        self,
        max_retries: int,
        backoff_base: float = 0.0,
        label: str = "worker",
    ):
        self.max_retries = validate_max_retries(max_retries)
        self.backoff_base = backoff_base
        self.label = label
        #: Per-restart *failed* attempt counts; fault-free restarts
        #: never appear here.
        self.failures: dict[int, int] = {}
        #: Total requeues granted (failed attempts that got a retry).
        self.requeues: int = 0

    @property
    def retried_restarts(self) -> int:
        """Distinct restarts that failed at least once."""
        return len(self.failures)

    @property
    def total_failures(self) -> int:
        """Failed attempts across all restarts."""
        return sum(self.failures.values())

    def record_failure(
        self, restart: int, seed: int | None, error: BaseException | str
    ) -> float:
        """Count one failed attempt; return the backoff delay in seconds
        before the restart may be retried.

        Raises :class:`~repro.exceptions.SolverError` naming the failing
        restart once its ``max_retries + 1`` attempts are spent.
        """
        failed = self.failures.get(restart, 0) + 1
        self.failures[restart] = failed
        if failed > self.max_retries:
            reason = (
                f"{type(error).__name__}: {error}"
                if isinstance(error, BaseException)
                else str(error)
            )
            failure = SolverError(
                f"{self.label} failed restart {restart} {failed} times "
                f"(max_retries={self.max_retries}): {reason}"
            )
            if isinstance(error, BaseException):
                raise failure from error
            raise failure
        self.requeues += 1
        return backoff_delay(
            failed, self.backoff_base, seed=seed, restart=restart
        )
