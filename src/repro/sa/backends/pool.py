"""Concurrent portfolio execution over a ``concurrent.futures`` pool.

Workers default to processes (the annealing inner loop is Python-bound,
so threads cannot scale it) with the coefficients shipped once per
worker; environments that cannot fork/pickle fall back to threads, and
an explicit ``backend="thread"`` forces the fallback.

The shared incumbent lives in the submitting process: outcomes are
published as their futures complete, and pruning cancels futures that
have not started yet (``Future.cancel`` is a no-op on running work, so
pruning can only ever skip restarts, exactly like the deadline).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait

from repro.costmodel.coefficients import CostCoefficients
from repro.exceptions import SolverError
from repro.sa.backends.base import BackendRun, PortfolioPlan, RestartOutcome, run_restart
from repro.sa.options import SaOptions

# -- process-pool plumbing (state shipped once per worker) --------------
_WORKER_STATE: dict = {}


def _init_worker(
    coefficients: CostCoefficients, num_sites: int, options: SaOptions
) -> None:
    _WORKER_STATE["args"] = (coefficients, num_sites, options)


def _run_restart_in_worker(
    restart: int, seed: int | None, deadline: float | None
) -> RestartOutcome:
    coefficients, num_sites, options = _WORKER_STATE["args"]
    return run_restart(coefficients, num_sites, options, restart, seed, deadline)


class ProcessPoolBackend:
    """Fan restarts out over ``options.jobs`` workers.

    ``use_threads=True`` skips the process pool entirely (registered as
    the ``"thread"`` backend); otherwise threads are only the fallback
    when the platform cannot fork/pickle.
    """

    name = "process"

    def __init__(self, use_threads: bool = False):
        self.use_threads = use_threads
        if use_threads:
            self.name = "thread"

    def _make_executor(self, plan: PortfolioPlan):
        """Process pool when the platform allows it, threads otherwise."""
        jobs = plan.jobs
        if self.use_threads:
            return ThreadPoolExecutor(max_workers=jobs), "thread"
        executor = None
        try:
            executor = ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_worker,
                initargs=(plan.coefficients, plan.num_sites, plan.options),
            )
            # Surface fork/pickling failures now, not at result time.
            executor.submit(os.getpid).result(timeout=30)
            return executor, "process"
        except Exception as error:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
            warnings.warn(
                f"SA portfolio falling back to threads (GIL-bound; expect "
                f"little speedup from jobs={jobs}): process pool unavailable "
                f"({type(error).__name__}: {error})",
                RuntimeWarning,
                stacklevel=2,
            )
            return ThreadPoolExecutor(max_workers=jobs), "thread"

    def run(self, plan: PortfolioPlan) -> BackendRun:
        executor, kind = self._make_executor(plan)
        run = BackendRun(outcomes=[], kind=kind)
        deadline = plan.deadline
        with executor:
            if kind == "process":
                futures = {
                    executor.submit(
                        _run_restart_in_worker, task.restart, task.seed, deadline
                    ): task.restart
                    for task in plan.tasks()
                }
            else:
                futures = {
                    executor.submit(
                        run_restart, plan.coefficients, plan.num_sites,
                        plan.options, task.restart, task.seed, deadline,
                    ): task.restart
                    for task in plan.tasks()
                }
            pending = set(futures)
            while pending:
                timeout = None
                if deadline is not None:
                    timeout = plan.remaining()
                done, pending = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        outcome = future.result()
                    except Exception as error:
                        # A worker process that dies mid-restart (OOM
                        # kill, segfault, os._exit) breaks the whole
                        # pool; unlike the queue/socket backends there
                        # is no envelope to requeue, so fail loudly with
                        # the restart index instead of returning a
                        # silently incomplete best-of-N.
                        raise SolverError(
                            f"{kind} pool worker failed restart "
                            f"{futures[future]}: "
                            f"{type(error).__name__}: {error}"
                        ) from error
                    plan.publish(outcome)
                    run.outcomes.append(outcome)
                if plan.prune:
                    for future in list(pending):
                        if plan.should_prune(futures[future]) and future.cancel():
                            pending.discard(future)
                            run.pruned += 1
                if deadline is not None and plan.expired():
                    # Budget spent: cancel restarts that have not started;
                    # already-running stragglers stop through their own
                    # wall-clock guard and are still collected (blocking
                    # from here on — the deadline has done its job).
                    for future in list(pending):
                        if future.cancel():
                            pending.discard(future)
                            run.cancelled += 1
                    deadline = None
        run.outcomes.sort(key=lambda outcome: outcome.restart)
        return run
