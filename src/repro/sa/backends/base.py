"""The execution-backend contract of the restart portfolio.

A portfolio run is a list of :class:`RestartTask`\\ s — pure
``(index, seed)`` functions of the shipped coefficients — plus the
shared budget and incumbent state bundled into a :class:`PortfolioPlan`.
An :class:`ExecutionBackend` consumes the plan and returns a
:class:`BackendRun`; *how* the restarts execute (in-process, across a
worker pool, or popped off a serialised task queue) is the backend's
business, but every backend must preserve the portfolio contract:

* restarts it runs are executed with exactly the single-run options
  produced by :func:`restart_options` — so any two backends produce
  bitwise-identical :class:`RestartOutcome`\\ s for the same task;
* the best-of-N winner is chosen by the *caller*
  (:func:`repro.sa.portfolio.run_portfolio`) as the minimum of
  ``(objective6, restart_index)`` over the completed outcomes, so
  completion order never matters;
* a backend may *skip* work — restarts cancelled by the deadline, or
  pruned because the shared incumbent proves they cannot win — but it
  must never return a different outcome for work it does run.

Backends register under a name (:func:`register_backend`) and are
selected through ``SaOptions(backend=...)``; see
:mod:`repro.sa.backends` for the built-ins.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.costmodel.coefficients import CostCoefficients
from repro.exceptions import OptionsError
from repro.sa.backends.incumbent import SharedIncumbent
from repro.sa.options import SaOptions


@dataclass(frozen=True)
class RestartTask:
    """One unit of portfolio work: restart ``restart`` under ``seed``."""

    restart: int
    seed: int | None


@dataclass(frozen=True)
class RestartOutcome:
    """Result of one annealing restart inside a portfolio."""

    restart: int
    seed: int | None
    x: np.ndarray
    y: np.ndarray
    objective6: float
    iterations: int
    accepted: int
    accepted_worse: int
    outer_loops: int
    wall_time: float


@dataclass
class PortfolioPlan:
    """Everything a backend needs to execute one portfolio.

    The plan owns the shared state: the wall-clock ``deadline``
    (``time.monotonic`` based, ``None`` = unlimited) and the
    :class:`~repro.sa.backends.incumbent.SharedIncumbent` through which
    backends publish finished restarts and query prune decisions.
    """

    coefficients: CostCoefficients
    num_sites: int
    options: SaOptions
    seeds: list[int | None]
    deadline: float | None = None
    incumbent: SharedIncumbent = field(default_factory=SharedIncumbent)
    #: Early-prune restarts the incumbent proves unable to win.
    prune: bool = False

    @property
    def jobs(self) -> int:
        """Worker slots actually usable (never more than tasks)."""
        return max(1, min(self.options.jobs, len(self.seeds)))

    def tasks(self) -> list[RestartTask]:
        return [
            RestartTask(restart=index, seed=seed)
            for index, seed in enumerate(self.seeds)
        ]

    def expired(self) -> bool:
        """True once the portfolio deadline has passed."""
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining(self) -> float | None:
        """Seconds left of the portfolio budget (``None`` = unlimited)."""
        if self.deadline is None:
            return None
        return max(self.deadline - time.monotonic(), 0.0)

    def should_prune(self, restart: int) -> bool:
        """True iff pruning is on and ``restart`` provably cannot win."""
        return self.prune and self.incumbent.proves_unbeatable(restart)

    def publish(self, outcome: RestartOutcome) -> None:
        """Record a finished restart on the shared incumbent."""
        self.incumbent.publish(outcome.objective6, outcome.restart)


@dataclass
class BackendRun:
    """What a backend hands back: outcomes plus the skip accounting."""

    outcomes: list[RestartOutcome]
    #: Restarts skipped because the deadline expired before they started.
    cancelled: int = 0
    #: Restarts skipped because the incumbent proved they cannot win.
    pruned: int = 0
    #: Executor label for result metadata ("serial", "process", ...).
    kind: str = "serial"
    #: Distinct restarts that needed at least one retry (fault-tolerant
    #: backends only; always 0 for serial/process).
    retried_restarts: int = 0
    #: Total restart requeues — failed or lost attempts that were
    #: re-dispatched (bounded per restart by ``max_retries``).
    requeue_count: int = 0
    #: Worker failures observed: faulted task runs, dead connections,
    #: stalled heartbeats.
    worker_failures: int = 0


@runtime_checkable
class ExecutionBackend(Protocol):
    """The pluggable portfolio executor.

    Implementations run (a subset of) ``plan.tasks()`` and return a
    :class:`BackendRun`.  Restart 0 must never be pruned or cancelled
    outright by a backend — the caller guarantees a solution by running
    it inline if a degenerate budget cancelled everything, but a
    well-behaved backend runs it itself whenever the budget allows.
    """

    #: Registry name of the backend.
    name: str

    def run(self, plan: PortfolioPlan) -> BackendRun:  # pragma: no cover
        ...


#: Knobs that configure the *portfolio* or its transport, not a single
#: anneal — reset to their defaults by :func:`restart_options` so a task
#: envelope is a pure function of the anneal-relevant options (two
#: portfolios that differ only in retry/heartbeat tuning dispatch
#: byte-identical task envelopes).
_PORTFOLIO_LEVEL_FIELDS = (
    "restarts",
    "jobs",
    "portfolio_time_limit",
    "backend",
    "prune",
    "workers",
    "max_retries",
    "heartbeat_interval",
    "heartbeat_timeout",
    "backoff_base",
)


def _portfolio_level_defaults() -> dict:
    from dataclasses import fields

    return {
        f.name: f.default
        for f in fields(SaOptions)
        if f.name in _PORTFOLIO_LEVEL_FIELDS
    }


def restart_options(
    options: SaOptions, seed: int | None, remaining: float | None
) -> SaOptions:
    """Single-run options for one restart under the portfolio budget.

    Strips every portfolio-level knob (``restarts``, ``jobs``,
    ``portfolio_time_limit``, ``backend``, ``prune``, and the transport
    tuning — ``workers``, ``max_retries``, heartbeat/backoff settings)
    so the task is a plain single anneal, and folds the remaining
    portfolio budget into the per-run ``time_limit``.
    """
    time_limit = options.time_limit
    if remaining is not None:
        remaining = max(remaining, 0.0)
        time_limit = remaining if time_limit is None else min(time_limit, remaining)
    return replace(
        options,
        seed=seed,
        time_limit=time_limit,
        **_portfolio_level_defaults(),
    )


def run_restart(
    coefficients: CostCoefficients,
    num_sites: int,
    options: SaOptions,
    restart: int,
    seed: int | None,
    deadline: float | None,
) -> RestartOutcome:
    """Run one restart (worker side); honours the shared deadline."""
    from repro.sa.annealer import SimulatedAnnealer

    remaining = None if deadline is None else deadline - time.monotonic()
    started = time.perf_counter()
    annealer = SimulatedAnnealer(
        coefficients, num_sites, restart_options(options, seed, remaining)
    )
    x, y, objective6 = annealer.run()
    return RestartOutcome(
        restart=restart,
        seed=seed,
        x=x,
        y=y,
        objective6=objective6,
        iterations=annealer.trace.iterations,
        accepted=annealer.trace.accepted,
        accepted_worse=annealer.trace.accepted_worse,
        outer_loops=annealer.trace.outer_loops,
        wall_time=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
_BACKENDS: dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(name: str, factory: Callable[[], ExecutionBackend]) -> None:
    """Register an execution backend under ``name``.

    ``factory`` is called once per portfolio run and must return a fresh
    :class:`ExecutionBackend`.  Registering an existing name replaces
    the previous backend (so tests can shadow built-ins).
    """
    if not name or not isinstance(name, str):
        raise OptionsError(f"backend name must be a non-empty string, got {name!r}")
    _BACKENDS[name] = factory


def backend_names() -> list[str]:
    """Sorted names of all registered execution backends."""
    return sorted(_BACKENDS)


def get_backend(name: str) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        known = ", ".join(backend_names())
        raise OptionsError(
            f"unknown execution backend {name!r}; registered: {known}"
        ) from None
    return factory()
