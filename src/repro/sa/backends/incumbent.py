"""The shared incumbent: best objective + bound published between restarts.

Restarts of a portfolio are independent anneals, but the *driver* that
schedules them shares one :class:`SharedIncumbent`: every finished
restart publishes its objective (6), and before launching the next task
a backend may ask whether that task is provably unable to win.

The proof is deliberately conservative.  A restart ``i`` "cannot win"
only when

* the incumbent's objective has reached a sound *lower bound* on
  objective (6) over all feasible solutions
  (:func:`repro.costmodel.evaluator.objective6_lower_bound`), so no
  restart can return anything strictly better, **and**
* the incumbent's restart index is smaller than ``i``, so even a restart
  that *ties* the bound loses the portfolio's deterministic
  ``(objective6, restart_index)`` tie-break.

Under those two conditions skipping restart ``i`` can never change the
best-of-N result — pruning only skips work.  The bound itself stays
sound in float arithmetic: where its sums are not provably exact it
retreats by an accumulated-rounding margin (see
:func:`~repro.costmodel.evaluator.objective6_lower_bound`), so rounding
can only make pruning fire less often, never wrongly.  This is what keeps all
execution backends bitwise-identical per master seed whether pruning is
on or off (pinned by ``tests/test_sa_backends.py``).

The incumbent is driver-side state: process-pool workers never see it
(prune decisions are made in the submitting process between restarts),
so a plain ``threading.Lock`` is enough for the thread-pool fallback.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field


@dataclass
class SharedIncumbent:
    """Best objective seen so far plus the provable lower bound.

    ``lower_bound`` defaults to ``-inf`` (no proof possible — pruning
    never triggers); :func:`repro.sa.portfolio.run_portfolio` fills it
    from :func:`~repro.costmodel.evaluator.objective6_lower_bound` when
    pruning is requested.
    """

    lower_bound: float = -math.inf
    best_objective: float = math.inf
    best_restart: int | None = None
    #: How many restarts have been published.
    published: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def publish(self, objective6: float, restart: int) -> None:
        """Record a finished restart; keeps the ``(objective, restart)``
        minimum so the incumbent never depends on completion order."""
        with self._lock:
            self.published += 1
            if self.best_restart is None or (objective6, restart) < (
                self.best_objective,
                self.best_restart,
            ):
                self.best_objective = objective6
                self.best_restart = restart

    def proves_unbeatable(self, restart: int) -> bool:
        """True iff skipping ``restart`` provably cannot change the best.

        Requires the incumbent to have *reached* the lower bound (no
        strictly better solution exists) **and** to carry a smaller
        restart index (a tie would lose the deterministic tie-break
        anyway).  With the default ``-inf`` bound this is always False.
        """
        with self._lock:
            return (
                self.best_restart is not None
                and self.best_restart < restart
                and self.best_objective <= self.lower_bound
            )

    def snapshot(self) -> tuple[float, int | None]:
        """The current ``(best_objective, best_restart)`` pair."""
        with self._lock:
            return self.best_objective, self.best_restart
