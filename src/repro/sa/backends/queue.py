"""Queue execution: restarts as JSON task envelopes, workers as loops.

This is the wire format for moving the portfolio beyond one box.  Each
restart is serialised into a *task envelope* — a JSON document built on
:class:`~repro.api.request.SolveRequest`'s exact round-trip format, so a
task carries everything a remote worker needs (instance, parameters,
single-run options, seed) and nothing it doesn't (no pickled arrays, no
process state).  A worker decodes the envelope, rebuilds the
coefficients, runs the anneal and returns a *result envelope*; both
sides are plain JSON strings, so any transport (an in-memory deque here,
a real message queue on a sharded deployment) can carry them.

Determinism contract:

* task envelopes contain only deterministic fields and are dumped with
  sorted keys, so encoding the same restart twice — including on retry,
  whose attempt bookkeeping stays driver-side — yields identical bytes
  (absent a running portfolio deadline, which is folded into the
  per-run ``time_limit`` at dispatch time);
* result envelopes exclude wall-clock measurements, so *replaying* a
  task envelope returns a byte-identical result envelope — the
  at-least-once delivery of a real queue (retries, duplicate
  deliveries) cannot change the portfolio's best;
* a worker that raises mid-restart is retried: the task is requeued
  (bounded by ``max_retries`` attempts per restart) and, because the
  task is a pure function of the envelope, the retry reproduces exactly
  the outcome the failed attempt would have returned.

The :class:`QueueBackend` here drives an in-process worker loop so the
whole protocol is testable locally; ``jobs`` does not parallelise it
(that is what the ``"process"`` backend is for) — the queue backend's
value is the envelope protocol itself.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import asdict
from typing import Any

import numpy as np

from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.exceptions import OptionsError
from repro.sa.backends.base import (
    BackendRun,
    PortfolioPlan,
    RestartOutcome,
    RestartTask,
    restart_options,
)
from repro.sa.backends.retry import RetryTracker, validate_max_retries
from repro.sa.options import SaOptions

#: Version stamp of both envelope documents.  Version 2 extended the
#: task envelope's options with the transport tuning fields added for
#: the socket backend (``workers``, ``max_retries``, heartbeat/backoff
#: knobs) — reset to defaults by ``restart_options``, but present in
#: the document, so a version-1 reader would reject the constructor
#: keywords.  Version 3 added the online re-partitioning fields: the
#: ``warm_start`` options keyword (a new ``SaOptions`` constructor
#: argument present in every options document) and, when a migration
#: block is attached, the request's ``current_layout``/
#: ``migration_cost`` members.  The socket transport negotiates this
#: version at connect.
ENVELOPE_FORMAT_VERSION = 3
TASK_KIND = "sa-restart"
RESULT_KIND = "sa-restart-result"


# ----------------------------------------------------------------------
# Task envelopes (driver -> worker)
# ----------------------------------------------------------------------
def encode_restart_task(
    coefficients: CostCoefficients,
    num_sites: int,
    options: SaOptions,
    task: RestartTask,
    remaining: float | None = None,
) -> str:
    """Serialise one restart into its JSON task envelope.

    The payload's ``request`` member is a full
    :class:`~repro.api.request.SolveRequest` document (strategy
    ``"sa"``, single-run options, the task's seed), so the envelope
    round-trips through the same format a service front end would
    accept.  ``remaining`` folds what is left of a portfolio budget into
    the run's ``time_limit`` at dispatch time.  Retry bookkeeping stays
    driver-side (:attr:`QueueBackend.failures`) so a retried task
    re-encodes to the exact same bytes — transports can use the
    envelope itself as a dedup/idempotency key.
    """
    from repro.api.request import SolveRequest

    single = restart_options(options, task.seed, remaining)
    option_fields = asdict(single)
    # disjoint rides on the request's replication mode, exactly like the
    # advisor's "sa" strategy adapter expects it.
    disjoint = option_fields.pop("disjoint")
    # A migration block rides as the request's layout fields; the
    # worker reattaches it canonically (c5 is a pure function of the
    # instance's widths and the layout, so the rebuild is bitwise).
    migration = coefficients.migration
    request = SolveRequest(
        instance=coefficients.instance,
        num_sites=num_sites,
        parameters=coefficients.parameters,
        allow_replication=not disjoint,
        strategy="sa",
        options=option_fields,
        seed=task.seed,
        current_layout=None if migration is None else migration.layout,
        migration_cost=0.0 if migration is None else migration.migration_cost,
    )
    envelope = {
        "format_version": ENVELOPE_FORMAT_VERSION,
        "kind": TASK_KIND,
        "restart": task.restart,
        "request": request.to_dict(),
    }
    return json.dumps(envelope, sort_keys=True)


def decode_restart_task(envelope: str) -> dict[str, Any]:
    """Parse and validate a task envelope (returns the payload dict)."""
    payload = json.loads(envelope)
    version = payload.get("format_version")
    if version != ENVELOPE_FORMAT_VERSION:
        raise OptionsError(
            f"unsupported task envelope format_version {version!r} "
            f"(this build reads version {ENVELOPE_FORMAT_VERSION})"
        )
    if payload.get("kind") != TASK_KIND:
        raise OptionsError(
            f"expected a {TASK_KIND!r} envelope, got kind {payload.get('kind')!r}"
        )
    return payload


# ----------------------------------------------------------------------
# Result envelopes (worker -> driver)
# ----------------------------------------------------------------------
def encode_restart_result(
    restart: int,
    seed: int | None,
    x: np.ndarray,
    y: np.ndarray,
    objective6: float,
    iterations: int,
    accepted: int,
    accepted_worse: int,
    outer_loops: int,
) -> str:
    """Serialise one finished restart.  Deterministic fields only — no
    wall-clock — so replaying a task envelope is byte-identical."""
    envelope = {
        "format_version": ENVELOPE_FORMAT_VERSION,
        "kind": RESULT_KIND,
        "restart": restart,
        "seed": seed,
        "objective6": float(objective6),
        "x": np.asarray(x, dtype=int).tolist(),
        "y": np.asarray(y, dtype=int).tolist(),
        "iterations": int(iterations),
        "accepted": int(accepted),
        "accepted_worse": int(accepted_worse),
        "outer_loops": int(outer_loops),
    }
    return json.dumps(envelope, sort_keys=True)


def decode_restart_result(envelope: str, wall_time: float = 0.0) -> RestartOutcome:
    """Rebuild a :class:`RestartOutcome` from a result envelope.

    ``wall_time`` is supplied by the driver (it is transport-dependent
    and deliberately not part of the wire format).
    """
    payload = json.loads(envelope)
    version = payload.get("format_version")
    if version != ENVELOPE_FORMAT_VERSION:
        raise OptionsError(
            f"unsupported result envelope format_version {version!r} "
            f"(this build reads version {ENVELOPE_FORMAT_VERSION})"
        )
    if payload.get("kind") != RESULT_KIND:
        raise OptionsError(
            f"expected a {RESULT_KIND!r} envelope, got kind {payload.get('kind')!r}"
        )
    return RestartOutcome(
        restart=int(payload["restart"]),
        seed=payload["seed"],
        x=np.asarray(payload["x"], dtype=bool),
        y=np.asarray(payload["y"], dtype=bool),
        objective6=float(payload["objective6"]),
        iterations=int(payload["iterations"]),
        accepted=int(payload["accepted"]),
        accepted_worse=int(payload["accepted_worse"]),
        outer_loops=int(payload["outer_loops"]),
        wall_time=wall_time,
    )


def _check_wire_safe(coefficients: CostCoefficients) -> None:
    """Reject coefficients the wire format cannot represent faithfully.

    A task envelope carries only ``(instance, parameters)`` — the
    worker *rebuilds* the coefficient arrays canonically.  Coefficients
    built non-canonically (custom indicators, hand-tweaked weights)
    would silently anneal a different problem on the queue than on the
    serial/process backends, breaking the cross-backend bitwise
    contract, so they are refused up front.  One canonical rebuild per
    portfolio run — the same work every queue worker does per task.
    """
    rebuilt = build_coefficients(coefficients.instance, coefficients.parameters)
    shipped_arrays = (
        coefficients.weights, coefficients.c1, coefficients.c2,
        coefficients.c3, coefficients.c4,
        coefficients.indicators.alpha, coefficients.indicators.beta,
        coefficients.indicators.gamma, coefficients.indicators.delta,
        coefficients.indicators.phi, coefficients.indicators.rows,
    )
    rebuilt_arrays = (
        rebuilt.weights, rebuilt.c1, rebuilt.c2, rebuilt.c3, rebuilt.c4,
        rebuilt.indicators.alpha, rebuilt.indicators.beta,
        rebuilt.indicators.gamma, rebuilt.indicators.delta,
        rebuilt.indicators.phi, rebuilt.indicators.rows,
    )
    for shipped, canonical in zip(shipped_arrays, rebuilt_arrays):
        if shipped.shape != canonical.shape or not np.array_equal(
            shipped, canonical
        ):
            raise OptionsError(
                "the queue backend ships (instance, parameters) and "
                "rebuilds coefficients canonically, but these "
                "coefficients differ from build_coefficients(instance, "
                "parameters) — non-canonical coefficients (custom "
                "indicators or edited arrays) cannot go over the wire; "
                "use the serial or process backend for them"
            )


class QueueWorker:
    """The worker side of the queue protocol: one envelope in, one out.

    Stateless and pure: the returned result envelope is a function of
    the task envelope alone, which is what makes retries and duplicate
    deliveries safe.  Subclass and override :meth:`run` (calling
    ``super().run``) to inject faults in tests.
    """

    def run(self, envelope: str) -> str:
        from repro.api.request import SolveRequest
        from repro.sa.annealer import SimulatedAnnealer

        payload = decode_restart_task(envelope)
        request = SolveRequest.from_dict(payload["request"])
        options = SaOptions(
            **dict(request.options), disjoint=not request.allow_replication
        )
        coefficients = build_coefficients(request.instance, request.parameters)
        if request.current_layout is not None:
            from repro.costmodel.coefficients import attach_migration

            coefficients = attach_migration(
                coefficients,
                request.current_layout,
                request.migration_cost,
                request.num_sites,
            )
        annealer = SimulatedAnnealer(coefficients, request.num_sites, options)
        x, y, objective6 = annealer.run()
        return encode_restart_result(
            restart=int(payload["restart"]),
            seed=request.seed,
            x=x,
            y=y,
            objective6=objective6,
            iterations=annealer.trace.iterations,
            accepted=annealer.trace.accepted,
            accepted_worse=annealer.trace.accepted_worse,
            outer_loops=annealer.trace.outer_loops,
        )


class QueueBackend:
    """Drive the restart queue with an in-process worker loop.

    Tasks are enqueued in restart order and popped FIFO; a task whose
    worker raises is requeued at the back until it has been attempted
    ``max_retries + 1`` times, after which the portfolio fails with
    :class:`~repro.exceptions.SolverError` (a lost restart would
    silently change the best-of-N result, which the determinism
    contract forbids).
    """

    name = "queue"

    def __init__(
        self, worker: QueueWorker | None = None, max_retries: int | None = None
    ):
        self.worker = worker or QueueWorker()
        # Validated eagerly: a negative budget is a misconfiguration,
        # not "never retry" (that is what 0 means).
        self.max_retries = (
            None if max_retries is None else validate_max_retries(max_retries)
        )
        #: Per-restart *failed* attempt counts of the last run (for
        #: tests/metrics); fault-free restarts never appear here.
        self.failures: dict[int, int] = {}

    def run(self, plan: PortfolioPlan) -> BackendRun:
        _check_wire_safe(plan.coefficients)
        max_retries = (
            plan.options.max_retries
            if self.max_retries is None
            else self.max_retries
        )
        # No backoff for the in-process loop: there is no remote worker
        # to give breathing room to, and sleeping would only slow tests.
        tracker = RetryTracker(max_retries, label="queue worker")
        self.failures = tracker.failures
        run = BackendRun(outcomes=[], kind=self.name)
        queue: deque[RestartTask] = deque(plan.tasks())
        while queue:
            task = queue.popleft()
            if task.restart > 0 and plan.expired():
                run.cancelled += 1
                continue
            if plan.should_prune(task.restart):
                run.pruned += 1
                continue
            envelope = encode_restart_task(
                plan.coefficients,
                plan.num_sites,
                plan.options,
                task,
                remaining=plan.remaining(),
            )
            started = time.perf_counter()
            try:
                result = self.worker.run(envelope)
            except Exception as error:
                # Raises SolverError once the restart's budget is spent.
                tracker.record_failure(task.restart, task.seed, error)
                queue.append(task)
                continue
            outcome = decode_restart_result(
                result, wall_time=time.perf_counter() - started
            )
            plan.publish(outcome)
            run.outcomes.append(outcome)
        run.outcomes.sort(key=lambda outcome: outcome.restart)
        run.retried_restarts = tracker.retried_restarts
        run.requeue_count = tracker.requeues
        run.worker_failures = tracker.total_failures
        return run
