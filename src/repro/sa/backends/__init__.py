"""Pluggable execution backends for the SA restart portfolio.

The portfolio (:mod:`repro.sa.portfolio`) separates *what* to run — a
list of ``(restart_index, seed)`` tasks over shipped coefficients —
from *how* to run it.  Backends implement the
:class:`~repro.sa.backends.base.ExecutionBackend` protocol and register
under a name selectable via ``SaOptions(backend=...)``:

* ``"serial"`` — sequential in the calling process (default for
  ``jobs=1``); the reference semantics everything else is pinned to;
* ``"process"`` — a ``concurrent.futures`` process pool (default for
  ``jobs>1``), falling back to threads where the platform cannot
  fork/pickle;
* ``"thread"`` — the GIL-bound thread pool, forced;
* ``"queue"`` — restarts serialised as JSON task envelopes (built on
  ``SolveRequest``'s round-trip format) and served by a worker loop:
  the wire format for moving the portfolio beyond one box, driven
  in-process here so it is fully testable locally;
* ``"socket"`` — those same envelopes over length-prefixed JSON frames
  on loopback TCP to spawned ``python -m repro.sa.worker`` processes,
  with heartbeat liveness monitoring, bounded deterministic retries and
  graceful degradation to in-driver execution
  (:mod:`repro.sa.transport`).

All backends share one :class:`~repro.sa.backends.incumbent.SharedIncumbent`
per portfolio run (best objective + a provable lower bound) and, with
``SaOptions(prune=True)``, early-prune restarts the incumbent proves
unable to win.  Whatever the backend, jobs count or prune setting, the
returned best is bitwise identical per master seed — backends may only
*skip* work, never change results.

User backends register with :func:`register_backend`::

    from repro.sa.backends import register_backend

    register_backend("my-grid", lambda: MyGridBackend(...))
"""

from repro.sa.backends.base import (
    BackendRun,
    ExecutionBackend,
    PortfolioPlan,
    RestartOutcome,
    RestartTask,
    backend_names,
    get_backend,
    register_backend,
    restart_options,
    run_restart,
)
from repro.sa.backends.incumbent import SharedIncumbent
from repro.sa.backends.pool import ProcessPoolBackend
from repro.sa.backends.queue import (
    QueueBackend,
    QueueWorker,
    decode_restart_result,
    decode_restart_task,
    encode_restart_result,
    encode_restart_task,
)
from repro.sa.backends.serial import SerialBackend

def _socket_backend_factory():
    # Imported lazily: the transport package imports this module (for
    # the envelope codec), so a top-level import would be circular.
    from repro.sa.transport.socket_backend import SocketTransportBackend

    return SocketTransportBackend()


register_backend(SerialBackend.name, SerialBackend)
register_backend("process", ProcessPoolBackend)
register_backend("thread", lambda: ProcessPoolBackend(use_threads=True))
register_backend(QueueBackend.name, QueueBackend)
register_backend("socket", _socket_backend_factory)

__all__ = [
    "BackendRun",
    "ExecutionBackend",
    "PortfolioPlan",
    "ProcessPoolBackend",
    "QueueBackend",
    "QueueWorker",
    "RestartOutcome",
    "RestartTask",
    "SerialBackend",
    "SharedIncumbent",
    "backend_names",
    "decode_restart_result",
    "decode_restart_task",
    "encode_restart_result",
    "encode_restart_task",
    "get_backend",
    "register_backend",
    "restart_options",
    "run_restart",
]
