"""In-process sequential execution of the restart portfolio."""

from __future__ import annotations

from repro.sa.backends.base import BackendRun, PortfolioPlan, run_restart


class SerialBackend:
    """Run every restart sequentially in the calling process.

    This is the default for ``jobs=1`` and the reference semantics the
    other backends are pinned against: restarts execute in index order,
    each publishing to the shared incumbent before the next prune check,
    so with pruning enabled the serial backend skips the longest
    possible suffix of doomed restarts.
    """

    name = "serial"

    def run(self, plan: PortfolioPlan) -> BackendRun:
        run = BackendRun(outcomes=[], kind=self.name)
        for task in plan.tasks():
            if task.restart > 0 and plan.expired():
                run.cancelled += 1
                continue
            if plan.should_prune(task.restart):
                run.pruned += 1
                continue
            outcome = run_restart(
                plan.coefficients,
                plan.num_sites,
                plan.options,
                task.restart,
                task.seed,
                plan.deadline,
            )
            plan.publish(outcome)
            run.outcomes.append(outcome)
        return run
