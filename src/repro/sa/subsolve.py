"""``findSolution(fix)``: optimise the free vector with the other fixed.

With one of ``x`` / ``y`` held constant the quadratic model collapses to
a (generalised-assignment-like) linear problem. Two implementations:

* a vectorised greedy that is exact for the pure-cost part and
  locally optimal for the ``(1 - lambda) * max`` load term, and
* an exact small-MIP solve (what the paper's GLPK sub-solves with a
  30-second budget did).

Both respect the read co-location constraint: with ``x`` fixed, every
attribute read by a transaction is forced onto that transaction's site;
with ``y`` fixed, transactions may only go to sites holding all the
attributes they read.

The balance-aware (``lambda < 1``) placements are greedy scans whose
every decision depends on the loads left by the previous one, so they
cannot be collapsed into one matrix expression without changing the
result.  They ship in two pinned-identical flavours instead:

* the *loop* path (``vectorized=False``): the reference — one numpy
  argmin per item, exactly the historical semantics;
* the *fast* path (default): candidate masks, orderings and gathers are
  built vectorised up front, and the sequential scan itself runs over
  plain C-double scalars with an incrementally maintained running max
  (exact, because loads only grow), touching numpy once more for the
  final scatter.  Same IEEE operations in the same order — layouts are
  bitwise equal (pinned in ``tests/test_sa_subsolve.py``), only the
  per-iteration interpreter and allocator overhead is gone.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.coefficients import CostCoefficients
from repro.exceptions import SolverError
from repro.solver.expr import LinExpr
from repro.solver.model import MipModel


class SubproblemSolver:
    """Shared precomputation for the two sub-problems.

    ``vectorized=False`` selects the reference loop implementations of
    the balance-aware placements (useful as a cross-check and for
    benchmarking the fast path against it).
    """

    def __init__(
        self,
        coefficients: CostCoefficients,
        num_sites: int,
        *,
        vectorized: bool = True,
    ):
        self.coefficients = coefficients
        self.num_sites = num_sites
        self.vectorized = vectorized
        self.lam = coefficients.parameters.load_balance_lambda
        self.phi = coefficients.phi_bool.astype(float)  # (|A|, |T|)
        self.c1 = coefficients.c1
        self.c2 = coefficients.c2
        self.c3 = coefficients.c3
        self.c4 = coefficients.c4

    # ------------------------------------------------------------------
    # y given x
    # ------------------------------------------------------------------
    def forced_y(self, x: np.ndarray) -> np.ndarray:
        """Replicas forced by read co-location: ``phi @ x > 0``."""
        return (self.phi @ x.astype(float)) > 0

    def optimize_y_greedy(
        self,
        x: np.ndarray,
        disjoint: bool = False,
        *,
        k: np.ndarray | None = None,
        load_weight: np.ndarray | None = None,
        forced: np.ndarray | None = None,
    ) -> np.ndarray:
        """Best attribute placement for fixed ``x`` (greedy).

        Cost of setting ``y[a,s] = 1`` decomposes into a linear part
        ``k[a,s] = lambda * (c1[:,t] x + c2)`` plus its contribution to
        the max-load term. The greedy places forced replicas, covers
        unplaced attributes at their cheapest site, then adds
        cost-negative replicas while they improve the blended objective.

        ``k`` / ``load_weight`` / ``forced`` may be supplied together
        (e.g. from an :class:`~repro.costmodel.incremental.
        IncrementalEvaluator`) to skip the dense ``c1 @ x`` / ``c3 @ x``
        / ``phi @ x`` products.
        """
        if k is None:
            xs = x.astype(float)
            k = self.lam * (self.c1 @ xs + self.c2[:, None])  # (|A|, |S|)
            load_weight = self.c3 @ xs + self.c4[:, None]  # (|A|, |S|), >= 0
            forced = self.forced_y(x)

        if disjoint:
            return self._disjoint_y(k, load_weight, forced)

        y = forced.copy()
        uncovered = np.flatnonzero(~y.any(axis=1))
        if uncovered.size:
            if self.lam >= 1.0:
                best_site = np.argmin(k[uncovered], axis=1)
                y[uncovered, best_site] = True
            else:
                # Balance-aware covering: charge each site the exact
                # increase of the max load, sequentially (heaviest
                # attributes first so they anchor the balance).
                order = uncovered[
                    np.argsort(-load_weight[uncovered].max(axis=1))
                ]
                if self.vectorized:
                    self._cover_balance_fast(y, k, load_weight, order)
                else:
                    self._cover_balance_loop(y, k, load_weight, order)

        candidates = np.argwhere((k < 0) & ~y)
        if candidates.size:
            if self.lam >= 1.0:
                y[candidates[:, 0], candidates[:, 1]] = True
            elif self.vectorized:
                self._negative_balance_fast(y, k, load_weight, candidates)
            else:
                self._negative_balance_loop(y, k, load_weight, candidates)
        return y

    # -- balance-aware covering (lambda < 1) ---------------------------
    def _cover_balance_loop(
        self, y: np.ndarray, k: np.ndarray, load_weight: np.ndarray, order: np.ndarray
    ) -> None:
        """Reference loop: one numpy argmin per uncovered attribute."""
        loads = (load_weight * y).sum(axis=0)
        for a in order:
            current_max = loads.max()
            delta = np.maximum(loads + load_weight[a], current_max)
            delta -= current_max
            score = self.lam * k[a] + (1.0 - self.lam) * delta
            site = int(np.argmin(score))
            y[a, site] = True
            loads[site] += load_weight[a, site]

    def _cover_balance_fast(
        self, y: np.ndarray, k: np.ndarray, load_weight: np.ndarray, order: np.ndarray
    ) -> None:
        """Scalar scan over pregathered rows; bitwise equal to the loop."""
        loads = (load_weight * y).sum(axis=0).tolist()
        current_max = max(loads)
        lam = self.lam
        balance = 1.0 - lam
        sites = range(self.num_sites)
        k_rows = k[order].tolist()
        weight_rows = load_weight[order].tolist()
        chosen: list[int] = []
        for k_row, weight_row in zip(k_rows, weight_rows):
            best_site = 0
            best_score = None
            for s in sites:
                lifted = loads[s] + weight_row[s]
                overflow = lifted - current_max if lifted > current_max else 0.0
                score = lam * k_row[s] + balance * overflow
                if best_score is None or score < best_score:
                    best_score = score
                    best_site = s
            chosen.append(best_site)
            lifted = loads[best_site] + weight_row[best_site]
            loads[best_site] = lifted
            # Loads only grow, so the running max is exactly loads.max().
            if lifted > current_max:
                current_max = lifted
        y[order, chosen] = True

    # -- cost-negative replicas (lambda < 1) ---------------------------
    def _negative_balance_loop(
        self,
        y: np.ndarray,
        k: np.ndarray,
        load_weight: np.ndarray,
        candidates: np.ndarray,
    ) -> None:
        """Reference loop over candidates in increasing-k order."""
        loads = (load_weight * y).sum(axis=0)
        order = np.argsort(k[candidates[:, 0], candidates[:, 1]])
        for idx in order:
            a, s = candidates[idx]
            gain = k[a, s]
            current_max = loads.max()
            new_max = max(current_max, loads[s] + load_weight[a, s])
            delta = gain + (1.0 - self.lam) * (new_max - current_max)
            if delta < 0:
                y[a, s] = True
                loads[s] += load_weight[a, s]

    def _negative_balance_fast(
        self,
        y: np.ndarray,
        k: np.ndarray,
        load_weight: np.ndarray,
        candidates: np.ndarray,
    ) -> None:
        """Scalar scan over pregathered candidates; bitwise equal."""
        loads = (load_weight * y).sum(axis=0).tolist()
        current_max = max(loads)
        balance = 1.0 - self.lam
        a_all = candidates[:, 0]
        s_all = candidates[:, 1]
        gains = k[a_all, s_all]
        order = np.argsort(gains)
        a_list = a_all[order].tolist()
        s_list = s_all[order].tolist()
        gain_list = gains[order].tolist()
        weight_list = load_weight[a_all, s_all][order].tolist()
        added_a: list[int] = []
        added_s: list[int] = []
        for a, s, gain, weight in zip(a_list, s_list, gain_list, weight_list):
            lifted = loads[s] + weight
            overflow = lifted - current_max if lifted > current_max else 0.0
            if gain + balance * overflow < 0:
                added_a.append(a)
                added_s.append(s)
                loads[s] = lifted
                if lifted > current_max:
                    current_max = lifted
        if added_a:
            y[added_a, added_s] = True

    def _disjoint_y(
        self, k: np.ndarray, load_weight: np.ndarray, forced: np.ndarray
    ) -> np.ndarray:
        """Single-replica placement; forced sites must be unique per attribute."""
        y = np.zeros_like(forced)
        forced_counts = forced.sum(axis=1)
        conflicted = np.flatnonzero(forced_counts > 1)
        if conflicted.size:
            names = [
                self.coefficients.instance.attributes[a].qualified_name
                for a in conflicted[:5]
            ]
            raise SolverError(
                f"disjoint sub-problem infeasible: attributes {names} are read "
                f"by transactions on different sites"
            )
        has_force = forced_counts == 1
        y[has_force] = forced[has_force]
        free = np.flatnonzero(~has_force)
        if free.size:
            if self.vectorized:
                self._disjoint_free_fast(y, k, load_weight, free)
            else:
                self._disjoint_free_loop(y, k, load_weight, free)
        return y

    def _disjoint_free_loop(
        self, y: np.ndarray, k: np.ndarray, load_weight: np.ndarray, free: np.ndarray
    ) -> None:
        # Same scores as balance-aware covering, over the free set.
        self._cover_balance_loop(y, k, load_weight, free)

    def _disjoint_free_fast(
        self, y: np.ndarray, k: np.ndarray, load_weight: np.ndarray, free: np.ndarray
    ) -> None:
        # Identical scalar scan: the disjoint free placement computes the
        # same scores as balance-aware covering, just over the free set.
        self._cover_balance_fast(y, k, load_weight, free)

    def optimize_y_exact(
        self, x: np.ndarray, disjoint: bool = False, time_limit: float = 30.0
    ) -> np.ndarray:
        """Exact attribute placement for fixed ``x`` via a small MIP."""
        xs = x.astype(float)
        k = self.lam * (self.c1 @ xs + self.c2[:, None])
        load_weight = self.c3 @ xs + self.c4[:, None]
        forced = self.forced_y(x)
        num_attributes = k.shape[0]

        model = MipModel("sa-suby")
        y_vars = np.empty((num_attributes, self.num_sites), dtype=object)
        for a in range(num_attributes):
            for s in range(self.num_sites):
                lower = 1.0 if forced[a, s] else 0.0
                y_vars[a, s] = model.add_variable(
                    f"y[{a},{s}]", lower=lower, upper=1.0, integer=True
                )
        for a in range(num_attributes):
            total = LinExpr.from_terms((y_vars[a, s], 1.0) for s in range(self.num_sites))
            if disjoint:
                model.add_constraint(total == 1)
            else:
                model.add_constraint(total >= 1)
        objective_terms = [
            (y_vars[a, s], k[a, s])
            for a in range(num_attributes)
            for s in range(self.num_sites)
            if k[a, s] != 0.0
        ]
        if self.lam < 1.0:
            m_var = model.add_variable("m", lower=0.0)
            objective_terms.append((m_var, 1.0 - self.lam))
            for s in range(self.num_sites):
                terms = [
                    (y_vars[a, s], load_weight[a, s])
                    for a in range(num_attributes)
                    if load_weight[a, s] != 0.0
                ]
                terms.append((m_var, -1.0))
                model.add_constraint(LinExpr.from_terms(terms) <= 0)
        model.minimize(LinExpr.from_terms(objective_terms))
        solution = model.solve(backend="scipy", time_limit=time_limit)
        if not solution.status.has_solution:
            # Fall back to the greedy rather than losing the iteration.
            return self.optimize_y_greedy(x, disjoint=disjoint)
        y = np.zeros((num_attributes, self.num_sites), dtype=bool)
        for a in range(num_attributes):
            for s in range(self.num_sites):
                y[a, s] = solution.values[y_vars[a, s].index] > 0.5
        return y

    # ------------------------------------------------------------------
    # x given y
    # ------------------------------------------------------------------
    def allowed_sites(self, y: np.ndarray) -> np.ndarray:
        """``allowed[t,s]`` — site ``s`` holds every attribute ``t`` reads."""
        missing = self.phi.T @ (1.0 - y.astype(float))  # (|T|, |S|)
        return missing < 0.5

    def repair_y(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Add the replicas needed to make ``(x, y)`` co-location-feasible."""
        return y | self.forced_y(x)

    def optimize_x_greedy(
        self,
        y: np.ndarray,
        *,
        cost: np.ndarray | None = None,
        read_load: np.ndarray | None = None,
        missing: np.ndarray | None = None,
        static_load: np.ndarray | None = None,
    ) -> np.ndarray:
        """Best transaction placement for fixed ``y`` (greedy LPT-style).

        Transactions are placed in decreasing-load order onto the
        allowed site minimising the blended objective increment. If some
        transaction has no allowed site the caller is expected to repair
        ``y`` afterwards (see :meth:`repair_y`); here we pick the site
        with the fewest missing attributes.

        ``cost`` / ``read_load`` / ``missing`` / ``static_load`` may be
        supplied together (e.g. from an incremental evaluator) to skip
        the dense ``c1.T @ y`` / ``c3.T @ y`` / ``phi.T @ (1 - y)``
        products.  With ``lambda >= 1`` site choices decouple and the
        placement is fully vectorised.
        """
        if cost is None:
            ys = y.astype(float)
            cost = self.lam * (self.c1.T @ ys)  # (|T|, |S|)
            read_load = self.c3.T @ ys  # (|T|, |S|)
            missing = self.phi.T @ (1.0 - ys)  # (|T|, |S|)
            static_load = self.c4 @ ys  # static write load per site
        allowed = missing < 0.5
        num_transactions = cost.shape[0]

        if self.lam >= 1.0:
            # Load does not enter the objective: each transaction takes
            # the cheapest allowed site independently (first-index
            # tie-break, matching the sequential loop).
            masked = np.where(allowed, cost, np.inf)
            infeasible = np.flatnonzero(~allowed.any(axis=1))
            if infeasible.size:
                near = missing[infeasible] == missing[infeasible].min(
                    axis=1, keepdims=True
                )
                masked[infeasible] = np.where(near, cost[infeasible], np.inf)
            x = np.zeros((num_transactions, self.num_sites), dtype=bool)
            x[np.arange(num_transactions), masked.argmin(axis=1)] = True
            return x

        order = np.argsort(-read_load.max(axis=1))
        if self.vectorized:
            return self._place_x_balance_fast(
                cost, read_load, missing, allowed, static_load, order
            )
        return self._place_x_balance_loop(
            cost, read_load, missing, allowed, static_load, order
        )

    def _place_x_balance_loop(
        self,
        cost: np.ndarray,
        read_load: np.ndarray,
        missing: np.ndarray,
        allowed: np.ndarray,
        static_load: np.ndarray,
        order: np.ndarray,
    ) -> np.ndarray:
        """Reference LPT loop: one numpy argmin per transaction."""
        num_transactions = cost.shape[0]
        x = np.zeros((num_transactions, self.num_sites), dtype=bool)
        loads = static_load.copy()
        for t in order:
            if allowed[t].any():
                candidate_sites = np.flatnonzero(allowed[t])
            else:
                min_missing = missing[t].min()
                candidate_sites = np.flatnonzero(missing[t] == min_missing)
            current_max = loads.max()
            delta = np.maximum(
                loads[candidate_sites] + read_load[t, candidate_sites],
                current_max,
            ) - current_max
            score = cost[t, candidate_sites] + (1.0 - self.lam) * delta
            best = candidate_sites[np.argmin(score)]
            x[t, best] = True
            loads[best] += read_load[t, best]
        return x

    def _place_x_balance_fast(
        self,
        cost: np.ndarray,
        read_load: np.ndarray,
        missing: np.ndarray,
        allowed: np.ndarray,
        static_load: np.ndarray,
        order: np.ndarray,
    ) -> np.ndarray:
        """Vectorised candidate masks + scalar LPT scan; bitwise equal."""
        num_transactions = cost.shape[0]
        x = np.zeros((num_transactions, self.num_sites), dtype=bool)
        candidate_mask = allowed
        infeasible = np.flatnonzero(~allowed.any(axis=1))
        if infeasible.size:
            candidate_mask = allowed.copy()
            candidate_mask[infeasible] = missing[infeasible] == missing[
                infeasible
            ].min(axis=1, keepdims=True)
        loads = np.asarray(static_load, dtype=float).tolist()
        current_max = max(loads)
        balance = 1.0 - self.lam
        sites = range(self.num_sites)
        mask_rows = candidate_mask.tolist()
        cost_rows = cost.tolist()
        read_rows = read_load.tolist()
        order_list = order.tolist()
        chosen: list[int] = []
        for t in order_list:
            mask_row = mask_rows[t]
            cost_row = cost_rows[t]
            read_row = read_rows[t]
            best_site = 0
            best_score = None
            for s in sites:
                if not mask_row[s]:
                    continue
                lifted = loads[s] + read_row[s]
                overflow = lifted - current_max if lifted > current_max else 0.0
                score = cost_row[s] + balance * overflow
                if best_score is None or score < best_score:
                    best_score = score
                    best_site = s
            chosen.append(best_site)
            lifted = loads[best_site] + read_row[best_site]
            loads[best_site] = lifted
            if lifted > current_max:
                current_max = lifted
        x[order_list, chosen] = True
        return x

    def optimize_x_exact(self, y: np.ndarray, time_limit: float = 30.0) -> np.ndarray:
        """Exact transaction placement for fixed ``y`` via a small MIP."""
        ys = y.astype(float)
        cost = self.lam * (self.c1.T @ ys)
        read_load = self.c3.T @ ys
        allowed = self.allowed_sites(y)
        num_transactions = cost.shape[0]
        if not allowed.any(axis=1).all():
            # Infeasible under this y; let the greedy pick least-bad sites
            # and have the caller repair y.
            return self.optimize_x_greedy(y)

        model = MipModel("sa-subx")
        x_vars = np.empty((num_transactions, self.num_sites), dtype=object)
        for t in range(num_transactions):
            for s in range(self.num_sites):
                upper = 1.0 if allowed[t, s] else 0.0
                x_vars[t, s] = model.add_variable(
                    f"x[{t},{s}]", lower=0.0, upper=upper, integer=True
                )
        for t in range(num_transactions):
            model.add_constraint(
                LinExpr.from_terms((x_vars[t, s], 1.0) for s in range(self.num_sites))
                == 1
            )
        objective_terms = [
            (x_vars[t, s], cost[t, s])
            for t in range(num_transactions)
            for s in range(self.num_sites)
            if allowed[t, s] and cost[t, s] != 0.0
        ]
        if self.lam < 1.0:
            m_var = model.add_variable("m", lower=0.0)
            objective_terms.append((m_var, 1.0 - self.lam))
            static = self.c4 @ ys
            for s in range(self.num_sites):
                terms = [
                    (x_vars[t, s], read_load[t, s])
                    for t in range(num_transactions)
                    if allowed[t, s] and read_load[t, s] != 0.0
                ]
                terms.append((m_var, -1.0))
                model.add_constraint(LinExpr.from_terms(terms) <= -static[s] + 0.0)
                # i.e. sum read_load x - m <= -static  <=>  static + reads <= m
        model.minimize(LinExpr.from_terms(objective_terms))
        solution = model.solve(backend="scipy", time_limit=time_limit)
        if not solution.status.has_solution:
            return self.optimize_x_greedy(y)
        x = np.zeros((num_transactions, self.num_sites), dtype=bool)
        for t in range(num_transactions):
            for s in range(self.num_sites):
                x[t, s] = solution.values[x_vars[t, s].index] > 0.5
        return x
