"""Multi-start annealing portfolio: best-of-N independently seeded runs.

The paper's SA heuristic is restart-friendly by construction and PR 1
made per-solution state cheap (one independent
:class:`~repro.costmodel.incremental.IncrementalEvaluator` per run), so
a portfolio of ``restarts`` annealing runs is the cheapest way to buy
solution quality on the Table 1/3 experiment sweeps.  This module runs
the restarts — serially or across a ``concurrent.futures`` worker pool —
tracks the global incumbent and returns a deterministic best-of-N
result:

* restart 0 reuses the master seed itself, so ``restarts=1`` reproduces
  the single-run trajectory exactly and best-of-N can never be worse
  than the single run a caller would have done before;
* restarts 1..N-1 draw pairwise-distinct seeds from a
  ``numpy.random.SeedSequence`` spawned off the master seed, so the
  portfolio is reproducible end to end;
* the incumbent is chosen by ``(objective6, restart_index)``, which does
  not depend on completion order — for a fixed master seed the result is
  identical for ``jobs=1`` and ``jobs=8`` (absent time limits, which
  truncate runs nondeterministically by their nature);
* ``portfolio_time_limit`` bounds the whole portfolio: restarts not yet
  started when the budget runs out are cancelled, and running stragglers
  are cut short through the annealer's own wall-clock guard (every such
  exit still routes through the collapsed one-site guard, so truncated
  restarts return valid solutions).

Workers default to processes (the annealing inner loop is Python-bound,
so threads cannot scale it) with the coefficients shipped once per
worker; environments that cannot fork/pickle fall back to threads, and
``jobs=1`` never leaves the calling process.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field, replace

import numpy as np

from repro.costmodel.coefficients import CostCoefficients
from repro.exceptions import SolverError
from repro.sa.options import SaOptions


@dataclass(frozen=True)
class RestartOutcome:
    """Result of one annealing restart inside a portfolio."""

    restart: int
    seed: int | None
    x: np.ndarray
    y: np.ndarray
    objective6: float
    iterations: int
    accepted: int
    accepted_worse: int
    outer_loops: int
    wall_time: float


@dataclass
class PortfolioResult:
    """Best-of-N incumbent plus the per-restart record."""

    x: np.ndarray
    y: np.ndarray
    objective6: float
    best_restart: int
    executor: str
    wall_time: float
    outcomes: list[RestartOutcome] = field(default_factory=list)
    #: Restarts cancelled by ``portfolio_time_limit`` before starting.
    cancelled: int = 0

    @property
    def restart_seeds(self) -> list[int | None]:
        return [outcome.seed for outcome in self.outcomes]

    @property
    def restart_objectives(self) -> list[float]:
        return [outcome.objective6 for outcome in self.outcomes]


def derive_restart_seeds(master_seed: int | None, restarts: int) -> list[int | None]:
    """Seeds for ``restarts`` independent runs under one master seed.

    Restart 0 keeps the master seed itself (so ``restarts=1`` equals the
    plain single run); the rest are drawn from ``SeedSequence`` children
    of the master seed and are guaranteed pairwise distinct (and
    distinct from the master).  With ``master_seed=None`` every restart
    gets fresh OS entropy and the portfolio is intentionally
    irreproducible, matching the single-run convention.
    """
    if restarts < 1:
        raise SolverError(f"restarts must be >= 1, got {restarts}")
    if master_seed is None:
        entropy = np.random.SeedSequence()
        seeds: list[int | None] = [None]
        seen: set[int] = set()
    else:
        entropy = np.random.SeedSequence(master_seed)
        seeds = [int(master_seed)]
        seen = {int(master_seed)}
    spawn_key = 0
    while len(seeds) < restarts:
        child = np.random.SeedSequence(
            entropy.entropy, spawn_key=(spawn_key,)
        )
        spawn_key += 1
        value = int(child.generate_state(1, np.uint64)[0])
        if value in seen:
            continue
        seen.add(value)
        seeds.append(value)
    return seeds


def _restart_options(
    options: SaOptions, seed: int | None, remaining: float | None
) -> SaOptions:
    """Single-run options for one restart under the portfolio budget."""
    time_limit = options.time_limit
    if remaining is not None:
        remaining = max(remaining, 0.0)
        time_limit = remaining if time_limit is None else min(time_limit, remaining)
    return replace(
        options,
        seed=seed,
        restarts=1,
        jobs=1,
        portfolio_time_limit=None,
        time_limit=time_limit,
    )


def _run_restart(
    coefficients: CostCoefficients,
    num_sites: int,
    options: SaOptions,
    restart: int,
    seed: int | None,
    deadline: float | None,
) -> RestartOutcome:
    """Run one restart (worker side); honours the shared deadline."""
    from repro.sa.annealer import SimulatedAnnealer

    remaining = None if deadline is None else deadline - time.monotonic()
    started = time.perf_counter()
    annealer = SimulatedAnnealer(
        coefficients, num_sites, _restart_options(options, seed, remaining)
    )
    x, y, objective6 = annealer.run()
    return RestartOutcome(
        restart=restart,
        seed=seed,
        x=x,
        y=y,
        objective6=objective6,
        iterations=annealer.trace.iterations,
        accepted=annealer.trace.accepted,
        accepted_worse=annealer.trace.accepted_worse,
        outer_loops=annealer.trace.outer_loops,
        wall_time=time.perf_counter() - started,
    )


# -- process-pool plumbing (state shipped once per worker) --------------
_WORKER_STATE: dict = {}


def _init_worker(coefficients: CostCoefficients, num_sites: int, options: SaOptions) -> None:
    _WORKER_STATE["args"] = (coefficients, num_sites, options)


def _run_restart_in_worker(
    restart: int, seed: int | None, deadline: float | None
) -> RestartOutcome:
    coefficients, num_sites, options = _WORKER_STATE["args"]
    return _run_restart(coefficients, num_sites, options, restart, seed, deadline)


def _make_executor(coefficients, num_sites, options, jobs):
    """Process pool when the platform allows it, threads otherwise."""
    executor = None
    try:
        executor = ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(coefficients, num_sites, options),
        )
        # Surface fork/pickling failures now, not at result time.
        executor.submit(os.getpid).result(timeout=30)
        return executor, "process"
    except Exception as error:
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        warnings.warn(
            f"SA portfolio falling back to threads (GIL-bound; expect "
            f"little speedup from jobs={jobs}): process pool unavailable "
            f"({type(error).__name__}: {error})",
            RuntimeWarning,
            stacklevel=2,
        )
        return ThreadPoolExecutor(max_workers=jobs), "thread"


def run_portfolio(
    coefficients: CostCoefficients,
    num_sites: int,
    options: SaOptions | None = None,
) -> PortfolioResult:
    """Run the multi-start portfolio and return the best-of-N result."""
    options = options or SaOptions()
    options.validate()
    started = time.perf_counter()
    seeds = derive_restart_seeds(options.seed, options.restarts)
    deadline = None
    if options.portfolio_time_limit is not None:
        deadline = time.monotonic() + options.portfolio_time_limit

    outcomes: list[RestartOutcome] = []
    cancelled = 0
    jobs = min(options.jobs, options.restarts)
    if jobs <= 1:
        executor_kind = "serial"
        for restart, seed in enumerate(seeds):
            if (
                restart > 0
                and deadline is not None
                and time.monotonic() >= deadline
            ):
                cancelled += 1
                continue
            outcomes.append(
                _run_restart(coefficients, num_sites, options, restart, seed, deadline)
            )
    else:
        executor, executor_kind = _make_executor(
            coefficients, num_sites, options, jobs
        )
        with executor:
            if executor_kind == "process":
                futures = {
                    executor.submit(_run_restart_in_worker, restart, seed, deadline): restart
                    for restart, seed in enumerate(seeds)
                }
            else:
                futures = {
                    executor.submit(
                        _run_restart, coefficients, num_sites, options,
                        restart, seed, deadline,
                    ): restart
                    for restart, seed in enumerate(seeds)
                }
            pending = set(futures)
            while pending:
                timeout = None
                if deadline is not None:
                    timeout = max(deadline - time.monotonic(), 0.0)
                done, pending = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
                for future in done:
                    outcomes.append(future.result())
                if deadline is not None and time.monotonic() >= deadline:
                    # Budget spent: cancel restarts that have not started;
                    # already-running stragglers stop through their own
                    # wall-clock guard and are still collected (blocking
                    # from here on — the deadline has done its job).
                    for future in list(pending):
                        if future.cancel():
                            pending.discard(future)
                            cancelled += 1
                    deadline = None
        outcomes.sort(key=lambda outcome: outcome.restart)

    if not outcomes:
        # Degenerate budget (even restart 0's future got cancelled): run
        # restart 0 inline with an already-expired deadline, so it exits
        # straight through the collapsed-layout guard — the caller always
        # gets a solution back without blowing the spent budget.
        outcomes.append(
            _run_restart(
                coefficients, num_sites, options, 0, seeds[0], time.monotonic()
            )
        )
        cancelled = max(0, cancelled - 1)

    best = min(outcomes, key=lambda outcome: (outcome.objective6, outcome.restart))
    return PortfolioResult(
        x=best.x,
        y=best.y,
        objective6=best.objective6,
        best_restart=best.restart,
        executor=executor_kind,
        wall_time=time.perf_counter() - started,
        outcomes=outcomes,
        cancelled=cancelled,
    )
