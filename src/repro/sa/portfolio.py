"""Multi-start annealing portfolio: best-of-N independently seeded runs.

The paper's SA heuristic is restart-friendly by construction and PR 1
made per-solution state cheap (one independent
:class:`~repro.costmodel.incremental.IncrementalEvaluator` per run), so
a portfolio of ``restarts`` annealing runs is the cheapest way to buy
solution quality on the Table 1/3 experiment sweeps.  This module plans
the restarts and picks the winner; *executing* them is delegated to a
pluggable :mod:`repro.sa.backends` backend (in-process serial, a
process/thread pool, or a JSON task queue), selected via
``SaOptions(backend=...)``:

* restart 0 reuses the master seed itself, so ``restarts=1`` reproduces
  the single-run trajectory exactly and best-of-N can never be worse
  than the single run a caller would have done before;
* restarts 1..N-1 draw pairwise-distinct seeds from a
  ``numpy.random.SeedSequence`` spawned off the master seed, so the
  portfolio is reproducible end to end;
* the incumbent is chosen by ``(objective6, restart_index)``, which does
  not depend on completion order — for a fixed master seed the result is
  identical for any backend and any ``jobs`` value (absent time limits,
  which truncate runs nondeterministically by their nature);
* ``portfolio_time_limit`` bounds the whole portfolio: restarts not yet
  started when the budget runs out are cancelled, and running stragglers
  are cut short through the annealer's own wall-clock guard (every such
  exit still routes through the collapsed one-site guard, so truncated
  restarts return valid solutions);
* with ``SaOptions(prune=True)`` a :class:`~repro.sa.backends.incumbent.
  SharedIncumbent` publishes the best objective between restarts and
  backends skip restarts provably unable to win (the incumbent reached
  :func:`~repro.costmodel.evaluator.objective6_lower_bound` with an
  earlier index).  Pruning only ever skips work — the returned best is
  bitwise identical with pruning on or off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.costmodel.coefficients import CostCoefficients
from repro.costmodel.evaluator import objective6_lower_bound
from repro.exceptions import SolverError
from repro.sa import backends as execution_backends
from repro.sa.backends import (
    ExecutionBackend,
    PortfolioPlan,
    RestartOutcome,
    SharedIncumbent,
    run_restart as _run_restart,
)
from repro.sa.options import SaOptions


@dataclass
class PortfolioResult:
    """Best-of-N incumbent plus the per-restart record."""

    x: np.ndarray
    y: np.ndarray
    objective6: float
    best_restart: int
    executor: str
    wall_time: float
    outcomes: list[RestartOutcome] = field(default_factory=list)
    #: Restarts cancelled by ``portfolio_time_limit`` before starting.
    cancelled: int = 0
    #: Restarts skipped because the shared incumbent proved they cannot
    #: beat the best already found (``SaOptions(prune=True)`` only).
    pruned: int = 0
    #: Distinct restarts that needed at least one retry (fault-tolerant
    #: backends only — queue/socket; always 0 for serial/process).
    retried_restarts: int = 0
    #: Total restart requeues: failed or lost attempts re-dispatched,
    #: bounded per restart by ``max_retries``.
    requeue_count: int = 0
    #: Worker failures observed: faulted task runs, dead connections,
    #: stalled heartbeats.
    worker_failures: int = 0

    @property
    def restart_seeds(self) -> list[int | None]:
        return [outcome.seed for outcome in self.outcomes]

    @property
    def restart_objectives(self) -> list[float]:
        return [outcome.objective6 for outcome in self.outcomes]


def derive_restart_seeds(master_seed: int | None, restarts: int) -> list[int | None]:
    """Seeds for ``restarts`` independent runs under one master seed.

    Restart 0 keeps the master seed itself (so ``restarts=1`` equals the
    plain single run); the rest are drawn from ``SeedSequence`` children
    of the master seed and are guaranteed pairwise distinct (and
    distinct from the master).  With ``master_seed=None`` every restart
    gets fresh OS entropy and the portfolio is intentionally
    irreproducible, matching the single-run convention.
    """
    if restarts < 1:
        raise SolverError(f"restarts must be >= 1, got {restarts}")
    if master_seed is None:
        entropy = np.random.SeedSequence()
        seeds: list[int | None] = [None]
        seen: set[int] = set()
    else:
        entropy = np.random.SeedSequence(master_seed)
        seeds = [int(master_seed)]
        seen = {int(master_seed)}
    spawn_key = 0
    while len(seeds) < restarts:
        child = np.random.SeedSequence(
            entropy.entropy, spawn_key=(spawn_key,)
        )
        spawn_key += 1
        value = int(child.generate_state(1, np.uint64)[0])
        if value in seen:
            continue
        seen.add(value)
        seeds.append(value)
    return seeds


def resolve_backend(
    options: SaOptions, backend: str | ExecutionBackend | None = None
) -> ExecutionBackend:
    """The execution backend for one portfolio run.

    Precedence: an explicit ``backend`` argument (a registered name or a
    ready-made instance), then ``options.backend``, then the historical
    default — serial in-process for one worker slot, the process pool
    otherwise.
    """
    if backend is None:
        backend = options.backend
    if backend is None:
        jobs = min(options.jobs, options.restarts)
        backend = "serial" if jobs <= 1 else "process"
    if isinstance(backend, str):
        return execution_backends.get_backend(backend)
    return backend


def run_portfolio(
    coefficients: CostCoefficients,
    num_sites: int,
    options: SaOptions | None = None,
    backend: str | ExecutionBackend | None = None,
) -> PortfolioResult:
    """Run the multi-start portfolio and return the best-of-N result.

    ``backend`` overrides ``options.backend`` (mainly for tests that
    inject preconfigured backends, e.g. a
    :class:`~repro.sa.backends.queue.QueueBackend` with a faulty
    worker).
    """
    options = options or SaOptions()
    options.validate()
    started = time.perf_counter()
    seeds = derive_restart_seeds(options.seed, options.restarts)
    deadline = None
    if options.portfolio_time_limit is not None:
        deadline = time.monotonic() + options.portfolio_time_limit

    incumbent = SharedIncumbent()
    if options.prune:
        incumbent.lower_bound = objective6_lower_bound(coefficients, num_sites)
    plan = PortfolioPlan(
        coefficients=coefficients,
        num_sites=num_sites,
        options=options,
        seeds=seeds,
        deadline=deadline,
        incumbent=incumbent,
        prune=options.prune,
    )
    executor = resolve_backend(options, backend)
    run = executor.run(plan)
    outcomes = sorted(run.outcomes, key=lambda outcome: outcome.restart)
    cancelled = run.cancelled

    if not outcomes:
        # Degenerate budget (even restart 0 got cancelled): run restart
        # 0 inline with an already-expired deadline, so it exits
        # straight through the collapsed-layout guard — the caller
        # always gets a solution back without blowing the spent budget.
        outcomes.append(
            _run_restart(
                coefficients, num_sites, options, 0, seeds[0], time.monotonic()
            )
        )
        cancelled = max(0, cancelled - 1)

    best = min(outcomes, key=lambda outcome: (outcome.objective6, outcome.restart))
    return PortfolioResult(
        x=best.x,
        y=best.y,
        objective6=best.objective6,
        best_restart=best.restart,
        executor=run.kind,
        wall_time=time.perf_counter() - started,
        outcomes=outcomes,
        cancelled=cancelled,
        pruned=run.pruned,
        retried_restarts=run.retried_restarts,
        requeue_count=run.requeue_count,
        worker_failures=run.worker_failures,
    )
