"""A dense two-phase primal simplex LP solver, written from scratch.

This is the LP engine under the from-scratch branch-and-bound solver.
It is deliberately simple and robust rather than fast: a full-tableau
implementation with Dantzig pricing and a Bland's-rule fallback against
cycling. Intended for the small models that arise in unit tests, in SA
sub-problems and in the reduced (grouped) QP models; large models go to
the HiGHS backend.

The solver accepts the general form of :class:`StandardArrays`
(mixed <=, >=, == rows, variable bounds) and handles it by

1. shifting variables so lower bounds become 0,
2. turning finite upper bounds into extra ``<=`` rows,
3. adding slack variables, flipping rows to make the RHS non-negative,
4. adding artificial variables where no slack can seed the basis,
5. phase 1 (minimise artificial sum), then phase 2 (original costs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SolverError
from repro.solver.expr import Sense
from repro.solver.model import StandardArrays
from repro.solver.solution import SolutionStatus

_TOLERANCE = 1e-9
_FEAS_TOLERANCE = 1e-7


@dataclass
class SimplexResult:
    """Outcome of one LP solve."""

    status: SolutionStatus
    objective: float | None
    values: np.ndarray | None
    iterations: int = 0


def solve_lp_simplex(
    arrays: StandardArrays,
    lower: np.ndarray | None = None,
    upper: np.ndarray | None = None,
    max_iterations: int | None = None,
) -> SimplexResult:
    """Solve the LP relaxation of ``arrays`` (integrality ignored).

    ``lower`` / ``upper`` override the variable bounds (used by
    branch-and-bound nodes).
    """
    lower = np.array(arrays.lower if lower is None else lower, dtype=float)
    upper = np.array(arrays.upper if upper is None else upper, dtype=float)
    if np.any(lower > upper + _TOLERANCE):
        return SimplexResult(SolutionStatus.INFEASIBLE, None, None)
    if np.any(np.isinf(lower)):
        raise SolverError("simplex requires finite lower bounds")

    n = arrays.num_variables
    dense = arrays.matrix.toarray() if arrays.num_constraints else np.zeros((0, n))
    # Shift x = lower + x'.
    rhs = arrays.rhs - dense @ lower
    ranges = upper - lower

    rows = [dense[i] for i in range(dense.shape[0])]
    row_rhs = list(rhs)
    row_senses = list(arrays.senses)
    for j in np.flatnonzero(np.isfinite(ranges)):
        bound_row = np.zeros(n)
        bound_row[j] = 1.0
        rows.append(bound_row)
        row_rhs.append(ranges[j])
        row_senses.append(Sense.LE)

    m = len(rows)
    if m == 0:
        # Unconstrained: minimise each shifted variable at 0 or range end.
        objective = arrays.objective
        values = np.where(objective >= 0, 0.0, ranges)
        if np.any((objective < 0) & np.isinf(ranges)):
            return SimplexResult(SolutionStatus.UNBOUNDED, None, None)
        x = lower + values
        obj = float(arrays.objective @ x + arrays.objective_constant)
        return SimplexResult(SolutionStatus.OPTIMAL, obj, x)

    matrix = np.vstack(rows)
    b = np.asarray(row_rhs, dtype=float)

    num_slacks = sum(1 for sense in row_senses if sense is not Sense.EQ)
    total = n + num_slacks
    tableau = np.zeros((m, total))
    tableau[:, :n] = matrix
    slack_of_row = np.full(m, -1, dtype=int)
    next_col = n
    for i, sense in enumerate(row_senses):
        if sense is Sense.LE:
            tableau[i, next_col] = 1.0
            slack_of_row[i] = next_col
            next_col += 1
        elif sense is Sense.GE:
            tableau[i, next_col] = -1.0
            slack_of_row[i] = next_col
            next_col += 1

    negative = b < 0
    tableau[negative] *= -1.0
    b = np.abs(b)

    basis = np.full(m, -1, dtype=int)
    artificial_rows = []
    for i in range(m):
        j = slack_of_row[i]
        if j >= 0 and tableau[i, j] == 1.0:
            basis[i] = j
        else:
            artificial_rows.append(i)
    num_artificial = len(artificial_rows)
    if num_artificial:
        art_block = np.zeros((m, num_artificial))
        for k, i in enumerate(artificial_rows):
            art_block[i, k] = 1.0
            basis[i] = total + k
        tableau = np.hstack([tableau, art_block])
    num_columns = tableau.shape[1]

    if max_iterations is None:
        max_iterations = 50 * (m + num_columns) + 1000

    iterations = 0

    def run_phase(costs: np.ndarray, allow: np.ndarray) -> str:
        """Run simplex iterations for ``costs``; ``allow`` masks columns
        eligible to enter the basis. Returns 'optimal' or 'unbounded'."""
        nonlocal iterations
        bland = False
        while True:
            iterations += 1
            if iterations > max_iterations:
                raise SolverError(
                    f"simplex exceeded {max_iterations} iterations "
                    f"(m={m}, n={num_columns})"
                )
            cb = costs[basis]
            reduced = costs - cb @ tableau
            reduced[basis] = 0.0
            candidates = np.flatnonzero(allow & (reduced < -_TOLERANCE))
            if candidates.size == 0:
                return "optimal"
            if bland or iterations % 512 == 0:
                bland = True
                entering = candidates[0]
            else:
                entering = candidates[np.argmin(reduced[candidates])]
            column = tableau[:, entering]
            positive = column > _TOLERANCE
            if not positive.any():
                return "unbounded"
            ratios = np.full(m, np.inf)
            ratios[positive] = b[positive] / column[positive]
            best = ratios.min()
            ties = np.flatnonzero(np.isclose(ratios, best, rtol=0.0, atol=1e-12))
            leaving_row = min(ties, key=lambda i: basis[i]) if bland else ties[0]
            _pivot(tableau, b, basis, leaving_row, entering)

    # ---------------- Phase 1 ----------------
    if num_artificial:
        phase1_costs = np.zeros(num_columns)
        phase1_costs[total:] = 1.0
        allow = np.ones(num_columns, dtype=bool)
        outcome = run_phase(phase1_costs, allow)
        infeasibility = float(phase1_costs[basis] @ b)
        if outcome == "unbounded" or infeasibility > _FEAS_TOLERANCE:
            return SimplexResult(SolutionStatus.INFEASIBLE, None, None, iterations)
        # Drive remaining artificials (basic at zero) out of the basis.
        for i in range(m):
            if basis[i] >= total:
                pivot_candidates = np.flatnonzero(np.abs(tableau[i, :total]) > _TOLERANCE)
                if pivot_candidates.size:
                    _pivot(tableau, b, basis, i, int(pivot_candidates[0]))
                # Else the row is redundant; the artificial stays basic at
                # zero and is barred from re-entering in phase 2.

    # ---------------- Phase 2 ----------------
    phase2_costs = np.zeros(num_columns)
    phase2_costs[:n] = arrays.objective
    allow = np.ones(num_columns, dtype=bool)
    allow[total:] = False  # artificials may never re-enter
    outcome = run_phase(phase2_costs, allow)
    if outcome == "unbounded":
        return SimplexResult(SolutionStatus.UNBOUNDED, None, None, iterations)

    shifted = np.zeros(num_columns)
    shifted[basis] = b
    x = lower + shifted[:n]
    objective = float(arrays.objective @ x + arrays.objective_constant)
    return SimplexResult(SolutionStatus.OPTIMAL, objective, x, iterations)


def _pivot(tableau: np.ndarray, b: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Gaussian pivot making ``col`` basic in ``row``."""
    pivot_value = tableau[row, col]
    tableau[row] /= pivot_value
    b[row] /= pivot_value
    column = tableau[:, col].copy()
    column[row] = 0.0
    tableau -= np.outer(column, tableau[row])
    b -= column * b[row]
    np.maximum(b, 0.0, out=b)  # clamp tiny negatives from roundoff
    basis[row] = col
