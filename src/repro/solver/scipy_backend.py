"""LP/MIP backend using scipy's HiGHS bindings.

Used for the full-size linearised models (thousands of variables) where
the from-scratch tableau simplex would be too slow. The from-scratch
and HiGHS backends are cross-checked against each other in the tests.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from repro.solver.expr import Sense
from repro.solver.model import StandardArrays
from repro.solver.simplex import SimplexResult
from repro.solver.solution import MipSolution, SolutionStatus


def _constraint_bounds(arrays: StandardArrays) -> tuple[np.ndarray, np.ndarray]:
    lb = np.full(arrays.num_constraints, -np.inf)
    ub = np.full(arrays.num_constraints, np.inf)
    for row, sense in enumerate(arrays.senses):
        if sense is Sense.LE:
            ub[row] = arrays.rhs[row]
        elif sense is Sense.GE:
            lb[row] = arrays.rhs[row]
        else:
            lb[row] = ub[row] = arrays.rhs[row]
    return lb, ub


def solve_lp_scipy(
    arrays: StandardArrays,
    lower: np.ndarray | None = None,
    upper: np.ndarray | None = None,
) -> SimplexResult:
    """Solve the LP relaxation with ``scipy.optimize.linprog`` (HiGHS)."""
    lower = arrays.lower if lower is None else lower
    upper = arrays.upper if upper is None else upper
    lb, ub = _constraint_bounds(arrays)
    a_ub_rows = []
    b_ub = []
    a_eq_rows = []
    b_eq = []
    matrix = arrays.matrix
    for row, sense in enumerate(arrays.senses):
        if sense is Sense.LE:
            a_ub_rows.append(matrix.getrow(row))
            b_ub.append(arrays.rhs[row])
        elif sense is Sense.GE:
            a_ub_rows.append(-matrix.getrow(row))
            b_ub.append(-arrays.rhs[row])
        else:
            a_eq_rows.append(matrix.getrow(row))
            b_eq.append(arrays.rhs[row])
    a_ub = sparse.vstack(a_ub_rows) if a_ub_rows else None
    a_eq = sparse.vstack(a_eq_rows) if a_eq_rows else None
    result = optimize.linprog(
        arrays.objective,
        A_ub=a_ub,
        b_ub=np.asarray(b_ub) if b_ub else None,
        A_eq=a_eq,
        b_eq=np.asarray(b_eq) if b_eq else None,
        bounds=list(zip(lower, upper)),
        method="highs",
    )
    if result.status == 0:
        objective = float(result.fun + arrays.objective_constant)
        return SimplexResult(SolutionStatus.OPTIMAL, objective, np.asarray(result.x))
    if result.status == 2:
        return SimplexResult(SolutionStatus.INFEASIBLE, None, None)
    if result.status == 3:
        return SimplexResult(SolutionStatus.UNBOUNDED, None, None)
    return SimplexResult(SolutionStatus.NO_SOLUTION, None, None)


def solve_mip_scipy(
    arrays: StandardArrays,
    time_limit: float | None = None,
    gap: float = 1e-3,
) -> MipSolution:
    """Solve the MIP with ``scipy.optimize.milp`` (HiGHS branch & cut)."""
    lb, ub = _constraint_bounds(arrays)
    constraints = (
        optimize.LinearConstraint(arrays.matrix, lb, ub)
        if arrays.num_constraints
        else ()
    )
    options: dict[str, object] = {"mip_rel_gap": gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = optimize.milp(
        arrays.objective,
        constraints=constraints,
        integrality=arrays.integrality.astype(int),
        bounds=optimize.Bounds(arrays.lower, arrays.upper),
        options=options,
    )
    nodes = int(getattr(result, "mip_node_count", 0) or 0)
    bound = getattr(result, "mip_dual_bound", None)
    if bound is not None:
        bound = float(bound) + arrays.objective_constant

    if result.status == 0:
        return MipSolution(
            status=SolutionStatus.OPTIMAL,
            objective=float(result.fun + arrays.objective_constant),
            values=np.asarray(result.x),
            bound=bound,
            nodes=nodes,
            backend="scipy-highs",
            message=str(result.message),
        )
    if result.status == 1 and result.x is not None:
        return MipSolution(
            status=SolutionStatus.FEASIBLE,
            objective=float(result.fun + arrays.objective_constant),
            values=np.asarray(result.x),
            bound=bound,
            nodes=nodes,
            backend="scipy-highs",
            message=str(result.message),
        )
    if result.status == 2:
        status = SolutionStatus.INFEASIBLE
    elif result.status == 3:
        status = SolutionStatus.UNBOUNDED
    else:
        status = SolutionStatus.NO_SOLUTION
    return MipSolution(
        status=status,
        objective=None,
        values=None,
        bound=bound,
        nodes=nodes,
        backend="scipy-highs",
        message=str(result.message),
    )
