"""Solver result objects shared by all backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.solver.expr import Variable


class SolutionStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    #: A feasible (integer) solution was found but optimality was not
    #: proven within the limits — the paper's parenthesised costs.
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    #: A limit was hit before any feasible solution was found — the
    #: paper's "t/o" entries.
    NO_SOLUTION = "no_solution"

    @property
    def has_solution(self) -> bool:
        return self in (SolutionStatus.OPTIMAL, SolutionStatus.FEASIBLE)


@dataclass
class MipSolution:
    """Result of solving a (mixed-integer) linear program."""

    status: SolutionStatus
    objective: float | None
    values: np.ndarray | None
    #: Best proven lower bound on the objective (minimisation).
    bound: float | None = None
    wall_time: float = 0.0
    nodes: int = 0
    backend: str = ""
    message: str = ""

    @property
    def gap(self) -> float | None:
        """Relative MIP gap ``|obj - bound| / max(1, |obj|)``."""
        if self.objective is None or self.bound is None:
            return None
        return abs(self.objective - self.bound) / max(1.0, abs(self.objective))

    def value(self, variable: Variable) -> float:
        """Value of ``variable`` in the solution."""
        if self.values is None:
            raise ValueError(f"solution has no values (status={self.status.value})")
        return float(self.values[variable.index])

    def __repr__(self) -> str:
        objective = "None" if self.objective is None else f"{self.objective:.6g}"
        return (
            f"MipSolution(status={self.status.value}, objective={objective}, "
            f"nodes={self.nodes}, time={self.wall_time:.2f}s, backend={self.backend!r})"
        )
