"""The MIP model container and its conversion to solver arrays."""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.exceptions import SolverError
from repro.solver.expr import Constraint, LinExpr, Sense, Variable
from repro.solver.solution import MipSolution

#: Models at most this many variables default to the from-scratch solver
#: under ``backend="auto"``.
AUTO_SCRATCH_LIMIT = 60


class ObjectiveSense(enum.Enum):
    MINIMIZE = "min"
    MAXIMIZE = "max"


@dataclass(frozen=True)
class StandardArrays:
    """A model in array form (minimisation).

    ``A`` is a sparse CSR matrix over all constraints; ``senses`` holds a
    :class:`Sense` per row. Bounds are per-variable ``(lower, upper)``
    with ``upper = None`` meaning unbounded above.
    """

    objective: np.ndarray  # (n,)
    objective_constant: float
    matrix: sparse.csr_matrix  # (m, n)
    senses: tuple[Sense, ...]
    rhs: np.ndarray  # (m,)
    lower: np.ndarray  # (n,)
    upper: np.ndarray  # (n,) with np.inf for unbounded
    integrality: np.ndarray  # (n,) bool

    @property
    def num_variables(self) -> int:
        return self.objective.shape[0]

    @property
    def num_constraints(self) -> int:
        return self.rhs.shape[0]


class MipModel:
    """A mixed-integer linear program under construction.

    >>> model = MipModel("demo")
    >>> x = model.add_variable("x", upper=10)
    >>> y = model.binary_variable("y")
    >>> _ = model.add_constraint(x + 3 * y <= 7, name="cap")
    >>> model.minimize(-x - 2 * y)
    >>> solution = model.solve(backend="scratch")
    >>> round(solution.objective, 6)
    -9.0
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._sense = ObjectiveSense.MINIMIZE
        self._names: set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float | None = None,
        integer: bool = False,
    ) -> Variable:
        if name in self._names:
            raise SolverError(f"duplicate variable name {name!r}")
        self._names.add(name)
        variable = Variable(len(self.variables), name, lower, upper, integer)
        self.variables.append(variable)
        return variable

    def binary_variable(self, name: str) -> Variable:
        return self.add_variable(name, lower=0.0, upper=1.0, integer=True)

    def add_constraint(self, constraint: Constraint, name: str | None = None) -> Constraint:
        if not isinstance(constraint, Constraint):
            raise SolverError(
                f"expected a Constraint (did the comparison fold to bool?), "
                f"got {type(constraint).__name__}"
            )
        if name:
            constraint.name = name
        elif not constraint.name:
            constraint.name = f"c{len(self.constraints)}"
        self.constraints.append(constraint)
        return constraint

    def clone_structure(self, name: str | None = None) -> "MipModel":
        """A new model sharing this model's variables and constraints.

        The clone starts with an empty objective; variables and
        constraints are shared by reference (they are not mutated by
        solving), while the containers are copied so later additions to
        either model stay local to it.  Used to re-price a model whose
        constraint skeleton is unchanged — e.g. across the points of a
        parameter sweep — without rebuilding thousands of expression
        objects.
        """
        clone = MipModel(name or self.name)
        clone.variables = list(self.variables)
        clone.constraints = list(self.constraints)
        clone._names = set(self._names)
        return clone

    def minimize(self, expression: LinExpr | Variable) -> None:
        self._objective = expression.to_expr() if isinstance(expression, Variable) else expression
        self._sense = ObjectiveSense.MINIMIZE

    def maximize(self, expression: LinExpr | Variable) -> None:
        self._objective = expression.to_expr() if isinstance(expression, Variable) else expression
        self._sense = ObjectiveSense.MAXIMIZE

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def objective_sense(self) -> ObjectiveSense:
        return self._sense

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for variable in self.variables if variable.is_integer)

    # ------------------------------------------------------------------
    # Array form
    # ------------------------------------------------------------------
    def to_standard_arrays(self) -> StandardArrays:
        """Convert to minimisation array form (maximisation is negated)."""
        n = len(self.variables)
        objective = np.zeros(n)
        for index, coefficient in self._objective.terms.items():
            objective[index] = coefficient
        constant = self._objective.constant
        if self._sense is ObjectiveSense.MAXIMIZE:
            objective = -objective
            constant = -constant

        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        senses: list[Sense] = []
        rhs: list[float] = []
        for row, constraint in enumerate(self.constraints):
            for index, coefficient in constraint.terms.items():
                if coefficient != 0.0:
                    rows.append(row)
                    cols.append(index)
                    data.append(coefficient)
            senses.append(constraint.sense)
            rhs.append(constraint.rhs)
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(self.constraints), n)
        )

        lower = np.array([variable.lower for variable in self.variables])
        upper = np.array(
            [np.inf if variable.upper is None else variable.upper for variable in self.variables]
        )
        integrality = np.array([variable.is_integer for variable in self.variables])
        return StandardArrays(
            objective=objective,
            objective_constant=constant,
            matrix=matrix,
            senses=tuple(senses),
            rhs=np.asarray(rhs, dtype=float),
            lower=lower,
            upper=upper,
            integrality=integrality,
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        backend: str = "auto",
        time_limit: float | None = None,
        gap: float = 1e-3,
        node_limit: int | None = None,
        incumbent: np.ndarray | None = None,
    ) -> MipSolution:
        """Solve the model.

        Parameters
        ----------
        backend:
            ``"scratch"`` (from-scratch simplex + branch & bound),
            ``"scipy"`` (HiGHS via scipy), or ``"auto"``.
        time_limit:
            Wall-clock budget in seconds (None = unlimited).
        gap:
            Relative MIP gap at which the search stops (the paper used
            0.1%; default here 0.1% as well).
        node_limit:
            Branch-and-bound node budget (scratch backend only).
        incumbent:
            Optional warm-start solution (scratch backend only); must be
            feasible, used as the initial upper bound.
        """
        arrays = self.to_standard_arrays()
        if backend == "auto":
            backend = "scratch" if arrays.num_variables <= AUTO_SCRATCH_LIMIT else "scipy"
        started = time.perf_counter()
        if backend == "scratch":
            from repro.solver.branch_and_bound import BranchAndBoundOptions, solve_mip_bnb

            options = BranchAndBoundOptions(
                time_limit=time_limit,
                relative_gap=gap,
                node_limit=node_limit or 200_000,
            )
            solution = solve_mip_bnb(arrays, options=options, incumbent=incumbent)
        elif backend == "scipy":
            from repro.solver.scipy_backend import solve_mip_scipy

            solution = solve_mip_scipy(arrays, time_limit=time_limit, gap=gap)
        else:
            raise SolverError(f"unknown backend {backend!r}")
        solution.wall_time = time.perf_counter() - started
        if solution.objective is not None and self._sense is ObjectiveSense.MAXIMIZE:
            solution.objective = -solution.objective
            if solution.bound is not None:
                solution.bound = -solution.bound
        return solution

    def __repr__(self) -> str:
        return (
            f"MipModel({self.name!r}, vars={self.num_variables} "
            f"(int={self.num_integer_variables}), cons={self.num_constraints})"
        )
