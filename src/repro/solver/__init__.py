"""Linear / mixed-integer programming substrate.

The paper solved its linearised model (7) with GLPK. We build the whole
stack ourselves:

* a PuLP-like modelling layer (:mod:`repro.solver.expr`,
  :mod:`repro.solver.model`),
* a dense two-phase primal simplex LP solver written from scratch
  (:mod:`repro.solver.simplex`),
* a branch-and-bound MIP solver on top of it
  (:mod:`repro.solver.branch_and_bound`),
* a scipy/HiGHS backend for large models
  (:mod:`repro.solver.scipy_backend`).

``MipModel.solve(backend="auto")`` picks the from-scratch solver for
tiny models and HiGHS otherwise; both are cross-checked in the tests.
"""

from repro.solver.expr import LinExpr, Variable, Constraint, Sense
from repro.solver.model import MipModel, ObjectiveSense, StandardArrays
from repro.solver.solution import MipSolution, SolutionStatus
from repro.solver.simplex import SimplexResult, solve_lp_simplex
from repro.solver.branch_and_bound import BranchAndBoundOptions, solve_mip_bnb
from repro.solver.scipy_backend import solve_lp_scipy, solve_mip_scipy

__all__ = [
    "LinExpr",
    "Variable",
    "Constraint",
    "Sense",
    "MipModel",
    "ObjectiveSense",
    "StandardArrays",
    "MipSolution",
    "SolutionStatus",
    "SimplexResult",
    "solve_lp_simplex",
    "BranchAndBoundOptions",
    "solve_mip_bnb",
    "solve_lp_scipy",
    "solve_mip_scipy",
]
