"""Linear expressions, variables and constraints.

A small, explicit modelling layer in the style of PuLP: variables
combine into :class:`LinExpr` via ``+ - *``; comparing an expression to
a number or another expression yields a :class:`Constraint`.
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping, Union

from repro.exceptions import SolverError

Number = Union[int, float]


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Variable:
    """A decision variable owned by a :class:`~repro.solver.model.MipModel`."""

    __slots__ = ("index", "name", "lower", "upper", "is_integer")

    def __init__(
        self,
        index: int,
        name: str,
        lower: float = 0.0,
        upper: float | None = None,
        is_integer: bool = False,
    ):
        if upper is not None and upper < lower:
            raise SolverError(
                f"variable {name!r}: upper bound {upper} < lower bound {lower}"
            )
        self.index = index
        self.name = name
        self.lower = float(lower)
        self.upper = None if upper is None else float(upper)
        self.is_integer = is_integer

    # -- arithmetic -----------------------------------------------------
    def to_expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0})

    def __add__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return self.to_expr() + other

    def __radd__(self, other: Number) -> "LinExpr":
        return self.to_expr() + other

    def __sub__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other: Number) -> "LinExpr":
        return (-1.0) * self.to_expr() + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        return self.to_expr() * scalar

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self.to_expr() * scalar

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    # -- comparisons build constraints ---------------------------------
    def __le__(self, other: "Variable | LinExpr | Number") -> "Constraint":
        return self.to_expr() <= other

    def __ge__(self, other: "Variable | LinExpr | Number") -> "Constraint":
        return self.to_expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self.to_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(type(self)), self.index))

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """A linear expression ``sum coef_i * var_i + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[int, float] | None = None, constant: float = 0.0):
        self.terms: dict[int, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    @staticmethod
    def from_terms(pairs: Iterable[tuple[Variable, Number]], constant: float = 0.0) -> "LinExpr":
        """Build an expression from (variable, coefficient) pairs."""
        terms: dict[int, float] = {}
        for variable, coefficient in pairs:
            if coefficient == 0:
                continue
            terms[variable.index] = terms.get(variable.index, 0.0) + float(coefficient)
        return LinExpr(terms, constant)

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant)

    def _coerce(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        if isinstance(other, Variable):
            return other.to_expr()
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, (int, float)):
            return LinExpr(constant=float(other))
        raise SolverError(f"cannot combine LinExpr with {type(other).__name__}")

    def __add__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        rhs = self._coerce(other)
        result = self.copy()
        for index, coefficient in rhs.terms.items():
            result.terms[index] = result.terms.get(index, 0.0) + coefficient
        result.constant += rhs.constant
        return result

    def __radd__(self, other: Number) -> "LinExpr":
        return self + other

    def __sub__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other: Number) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            raise SolverError("LinExpr can only be multiplied by a scalar")
        return LinExpr(
            {index: coefficient * scalar for index, coefficient in self.terms.items()},
            self.constant * scalar,
        )

    def __rmul__(self, scalar: Number) -> "LinExpr":
        return self * scalar

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons ----------------------------------------------------
    def __le__(self, other: "Variable | LinExpr | Number") -> "Constraint":
        return Constraint._build(self, Sense.LE, self._coerce(other))

    def __ge__(self, other: "Variable | LinExpr | Number") -> "Constraint":
        return Constraint._build(self, Sense.GE, self._coerce(other))

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return Constraint._build(self, Sense.EQ, self._coerce(other))
        return NotImplemented

    def __hash__(self) -> int:  # keep LinExpr usable in sets despite __eq__
        return id(self)

    def value(self, assignment) -> float:
        """Evaluate under ``assignment`` (indexable by variable index)."""
        total = self.constant
        for index, coefficient in self.terms.items():
            total += coefficient * float(assignment[index])
        return total

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*v{index}" for index, coef in sorted(self.terms.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return "LinExpr(" + " ".join(parts) + ")"


class Constraint:
    """A linear constraint ``lhs (sense) rhs`` in normalised form.

    Normalised so that all variables are on the left and the right-hand
    side is a constant: ``sum coef_i * var_i  (sense)  rhs``.
    """

    __slots__ = ("terms", "sense", "rhs", "name")

    def __init__(self, terms: Mapping[int, float], sense: Sense, rhs: float, name: str = ""):
        self.terms = dict(terms)
        self.sense = sense
        self.rhs = float(rhs)
        self.name = name

    @classmethod
    def _build(cls, lhs: LinExpr, sense: Sense, rhs: LinExpr) -> "Constraint":
        merged = lhs - rhs
        constant = merged.constant
        merged.constant = 0.0
        return cls(merged.terms, sense, -constant)

    def with_name(self, name: str) -> "Constraint":
        self.name = name
        return self

    def violation(self, assignment, tolerance: float = 1e-7) -> float:
        """How much ``assignment`` violates this constraint (0 if satisfied)."""
        value = sum(
            coefficient * float(assignment[index])
            for index, coefficient in self.terms.items()
        )
        if self.sense is Sense.LE:
            return max(0.0, value - self.rhs - tolerance)
        if self.sense is Sense.GE:
            return max(0.0, self.rhs - value - tolerance)
        return max(0.0, abs(value - self.rhs) - tolerance)

    def __repr__(self) -> str:
        return f"Constraint({self.name or '?'}: {len(self.terms)} terms {self.sense.value} {self.rhs:g})"
