"""Branch-and-bound MIP solver built on the from-scratch simplex.

Best-bound node selection with most-fractional branching, an LP-rounding
primal heuristic, warm-start incumbents and time / node / gap limits —
the features the paper's GLPK runs relied on (30-minute budget, 0.1%
MIP gap, parenthesised incumbents on timeout).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass

import numpy as np

from repro.solver.expr import Sense
from repro.solver.model import StandardArrays
from repro.solver.simplex import SimplexResult, solve_lp_simplex
from repro.solver.solution import MipSolution, SolutionStatus

_INTEGRALITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class BranchAndBoundOptions:
    """Limits and knobs for :func:`solve_mip_bnb`."""

    time_limit: float | None = None
    relative_gap: float = 1e-3
    node_limit: int = 200_000
    lp_backend: str = "simplex"  # "simplex" (from scratch) or "scipy"
    integer_tolerance: float = _INTEGRALITY_TOLERANCE


def _solve_node_lp(
    arrays: StandardArrays,
    lower: np.ndarray,
    upper: np.ndarray,
    backend: str,
) -> SimplexResult:
    if backend == "scipy":
        from repro.solver.scipy_backend import solve_lp_scipy

        return solve_lp_scipy(arrays, lower, upper)
    return solve_lp_simplex(arrays, lower, upper)


def solution_violations(arrays: StandardArrays, values: np.ndarray, tol: float = 1e-6) -> float:
    """Total constraint violation of ``values`` (0 when feasible)."""
    if arrays.num_constraints == 0:
        residual = 0.0
    else:
        lhs = arrays.matrix @ values
        residual = 0.0
        for row, sense in enumerate(arrays.senses):
            if sense is Sense.LE:
                residual += max(0.0, lhs[row] - arrays.rhs[row] - tol)
            elif sense is Sense.GE:
                residual += max(0.0, arrays.rhs[row] - lhs[row] - tol)
            else:
                residual += max(0.0, abs(lhs[row] - arrays.rhs[row]) - tol)
    residual += float(np.maximum(arrays.lower - values - tol, 0.0).sum())
    finite_upper = np.isfinite(arrays.upper)
    residual += float(
        np.maximum(values[finite_upper] - arrays.upper[finite_upper] - tol, 0.0).sum()
    )
    return residual


def _try_rounding(
    arrays: StandardArrays, relaxation: np.ndarray, integer_mask: np.ndarray
) -> tuple[float, np.ndarray] | None:
    """LP-rounding primal heuristic: round integer vars, keep the rest."""
    candidate = relaxation.copy()
    candidate[integer_mask] = np.round(candidate[integer_mask])
    candidate = np.clip(candidate, arrays.lower, np.where(np.isfinite(arrays.upper), arrays.upper, candidate))
    if solution_violations(arrays, candidate) > 0:
        return None
    objective = float(arrays.objective @ candidate + arrays.objective_constant)
    return objective, candidate


def solve_mip_bnb(
    arrays: StandardArrays,
    options: BranchAndBoundOptions | None = None,
    incumbent: np.ndarray | None = None,
) -> MipSolution:
    """Solve a mixed-integer program by branch and bound."""
    options = options or BranchAndBoundOptions()
    started = time.perf_counter()
    integer_mask = arrays.integrality.astype(bool)

    best_values: np.ndarray | None = None
    best_objective = np.inf
    if incumbent is not None:
        incumbent = np.asarray(incumbent, dtype=float)
        rounded = incumbent.copy()
        rounded[integer_mask] = np.round(rounded[integer_mask])
        if solution_violations(arrays, rounded) == 0:
            best_values = rounded
            best_objective = float(
                arrays.objective @ rounded + arrays.objective_constant
            )

    root = _solve_node_lp(arrays, arrays.lower, arrays.upper, options.lp_backend)
    if root.status is SolutionStatus.INFEASIBLE:
        return MipSolution(SolutionStatus.INFEASIBLE, None, None, backend="scratch-bnb")
    if root.status is SolutionStatus.UNBOUNDED:
        return MipSolution(SolutionStatus.UNBOUNDED, None, None, backend="scratch-bnb")

    counter = itertools.count()
    # Heap entries: (lp_bound, tiebreak, lower_bounds, upper_bounds, lp_result)
    heap: list[tuple[float, int, np.ndarray, np.ndarray, SimplexResult]] = []
    heapq.heappush(
        heap, (root.objective, next(counter), arrays.lower.copy(), arrays.upper.copy(), root)
    )

    nodes = 0
    best_bound = root.objective
    hit_limit = False

    while heap:
        bound, _, lower, upper, relaxed = heapq.heappop(heap)
        best_bound = bound
        if best_values is not None:
            gap = (best_objective - best_bound) / max(1.0, abs(best_objective))
            if gap <= options.relative_gap:
                best_bound = max(best_bound, best_objective * (1 - options.relative_gap))
                break
        if bound >= best_objective - 1e-9:
            continue
        nodes += 1
        if nodes > options.node_limit:
            hit_limit = True
            break
        if options.time_limit is not None and time.perf_counter() - started > options.time_limit:
            hit_limit = True
            break

        values = relaxed.values
        fractional = np.abs(values - np.round(values))
        fractional[~integer_mask] = 0.0
        branch_candidates = np.flatnonzero(fractional > options.integer_tolerance)
        if branch_candidates.size == 0:
            if relaxed.objective < best_objective:
                best_objective = relaxed.objective
                best_values = values.copy()
                best_values[integer_mask] = np.round(best_values[integer_mask])
            continue

        rounded = _try_rounding(arrays, values, integer_mask)
        if rounded is not None and rounded[0] < best_objective:
            best_objective, best_values = rounded

        branch_var = branch_candidates[np.argmax(fractional[branch_candidates])]
        floor_value = np.floor(values[branch_var])
        for child_lower_value, child_upper_value in (
            (lower[branch_var], floor_value),
            (floor_value + 1.0, upper[branch_var]),
        ):
            child_lower = lower.copy()
            child_upper = upper.copy()
            child_lower[branch_var] = child_lower_value
            child_upper[branch_var] = child_upper_value
            if child_lower[branch_var] > child_upper[branch_var]:
                continue
            child = _solve_node_lp(arrays, child_lower, child_upper, options.lp_backend)
            if child.status is not SolutionStatus.OPTIMAL:
                continue
            if child.objective >= best_objective - 1e-9:
                continue
            heapq.heappush(
                heap,
                (child.objective, next(counter), child_lower, child_upper, child),
            )
    else:
        # Heap exhausted: search completed, the incumbent is optimal.
        best_bound = best_objective if best_values is not None else best_bound

    if best_values is None:
        status = SolutionStatus.NO_SOLUTION if hit_limit else SolutionStatus.INFEASIBLE
        return MipSolution(status, None, None, bound=best_bound, nodes=nodes, backend="scratch-bnb")

    if heap or hit_limit:
        open_bound = min((entry[0] for entry in heap), default=best_bound)
        best_bound = min(best_bound, open_bound)
        gap = (best_objective - best_bound) / max(1.0, abs(best_objective))
        status = SolutionStatus.OPTIMAL if gap <= options.relative_gap else SolutionStatus.FEASIBLE
    else:
        status = SolutionStatus.OPTIMAL
        best_bound = best_objective
    return MipSolution(
        status=status,
        objective=best_objective,
        values=best_values,
        bound=best_bound,
        nodes=nodes,
        backend="scratch-bnb",
    )
