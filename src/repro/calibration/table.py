"""The persisted calibration table: per-strategy performance history.

A :class:`CalibrationTable` accumulates :class:`Observation` records —
one per served solve: which strategy ran, on which execution backend,
over which instance-size class, how large the linearised model was, how
long the solve took and what objective quality it reached.  The table
round-trips through JSON exactly (:meth:`CalibrationTable.to_json` /
:meth:`CalibrationTable.from_json`), and merging is a plain keyed union:
every observation is stored under the SHA-256 digest of its canonical
JSON form, so merges are order-independent and idempotent by
construction — replaying a file, merging two overlapping shards, or
merging a table into itself can never double-count a measurement.

Corrupt or unknown-version documents raise a structured
:class:`~repro.exceptions.CalibrationError`; the loader never silently
resets to an empty table, because an empty table silently changes what
the calibrated ``"auto"`` strategy does.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.exceptions import CalibrationError

#: Version stamp of the calibration JSON document.
CALIBRATION_FORMAT_VERSION = 1

#: Placeholder backend for strategies that have no execution backend
#: (the QP solver, the baselines, single-run SA).
NO_BACKEND = "-"


def instance_class(num_attributes: int, num_transactions: int) -> str:
    """The size bucket an instance falls into, e.g. ``"A64xT128"``.

    Both dimensions round up to the next power of two, so observations
    over similarly sized instances pool together while a 64x100 testbed
    and a million-transaction trace land in different classes.  The
    bucketing is pure arithmetic — the same instance always lands in
    the same class, on every machine.
    """
    if num_attributes < 1 or num_transactions < 1:
        raise CalibrationError(
            f"instance_class needs positive dimensions, got "
            f"{num_attributes} attributes x {num_transactions} transactions"
        )

    def bucket(value: int) -> int:
        return 1 << max(0, math.ceil(math.log2(value)))

    return f"A{bucket(num_attributes)}xT{bucket(num_transactions)}"


@dataclass(frozen=True)
class Observation:
    """One solve's worth of calibration evidence.

    ``quality`` is the solved objective divided by the single-site
    baseline objective on the same coefficients — dimensionless, so
    observations from different instances of one class are comparable
    (lower is better; 1.0 means no improvement over one site).
    ``variables`` is the linearised model size when known (``None`` for
    strategies that never build the model).
    """

    strategy: str
    backend: str
    instance_class: str
    num_sites: int
    wall_time: float
    objective: float
    quality: float | None = None
    variables: int | None = None
    restarts: int = 1
    seed: int | None = None
    request_key: str = ""

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Observation":
        if not isinstance(payload, Mapping):
            raise CalibrationError(
                f"observation must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = set(payload) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise CalibrationError(
                f"observation carries unknown fields {sorted(unknown)}"
            )
        try:
            observation = cls(
                strategy=str(payload["strategy"]),
                backend=str(payload.get("backend", NO_BACKEND)),
                instance_class=str(payload["instance_class"]),
                num_sites=int(payload["num_sites"]),
                wall_time=float(payload["wall_time"]),
                objective=float(payload["objective"]),
                quality=(
                    None if payload.get("quality") is None
                    else float(payload["quality"])
                ),
                variables=(
                    None if payload.get("variables") is None
                    else int(payload["variables"])
                ),
                restarts=int(payload.get("restarts", 1)),
                seed=(
                    None if payload.get("seed") is None
                    else int(payload["seed"])
                ),
                request_key=str(payload.get("request_key", "")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CalibrationError(
                f"malformed observation {dict(payload)!r}: {error}"
            ) from None
        if observation.wall_time < 0:
            raise CalibrationError(
                f"observation wall_time must be >= 0, got "
                f"{observation.wall_time}"
            )
        if observation.num_sites < 1:
            raise CalibrationError(
                f"observation num_sites must be >= 1, got "
                f"{observation.num_sites}"
            )
        return observation

    def key(self) -> str:
        """Content-addressed identity: the digest of the canonical JSON.

        Two observations are the same record iff every field matches, so
        keyed storage makes merges idempotent without any sequencing.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Recommendation:
    """What the table advises ``"auto"`` to run for one instance class.

    ``strategy`` is the calibrated pick; ``restarts`` is the best
    observed SA portfolio size (``None`` when the pick is not SA or only
    single runs were observed); ``time_limit`` is an observed-time
    budget with 2x headroom for QP picks (``None`` for SA picks —
    truncating an anneal would make fixed-seed runs machine-dependent).
    ``observations`` counts the evidence behind the pick.
    """

    strategy: str
    restarts: int | None
    time_limit: float | None
    observations: int
    mean_quality: float


class CalibrationTable:
    """Keyed set of :class:`Observation` records with summaries on top."""

    def __init__(self, observations: Iterable[Observation] = ()):
        self._observations: dict[str, Observation] = {}
        for observation in observations:
            self.add(observation)

    # ------------------------------------------------------------------
    # container basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._observations)

    def __iter__(self) -> Iterator[Observation]:
        """Observations in deterministic (key-sorted) order."""
        for key in sorted(self._observations):
            yield self._observations[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CalibrationTable):
            return NotImplemented
        return self._observations == other._observations

    def add(self, observation: Observation) -> bool:
        """Insert one observation; ``False`` if it was already present."""
        if not isinstance(observation, Observation):
            raise CalibrationError(
                f"can only add Observation records, got "
                f"{type(observation).__name__}"
            )
        key = observation.key()
        if key in self._observations:
            return False
        self._observations[key] = observation
        return True

    def merge(self, other: "CalibrationTable") -> int:
        """Union ``other`` into this table; returns newly added count.

        Order-independent and idempotent: ``a.merge(b)`` then
        ``a.merge(b)`` again equals a single merge, and
        ``a ∪ b == b ∪ a`` record for record.
        """
        if not isinstance(other, CalibrationTable):
            raise CalibrationError(
                f"can only merge CalibrationTable, got "
                f"{type(other).__name__}"
            )
        added = 0
        for observation in other:
            if self.add(observation):
                added += 1
        return added

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "format_version": CALIBRATION_FORMAT_VERSION,
            "observations": [obs.to_dict() for obs in self],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CalibrationTable":
        if not isinstance(payload, Mapping):
            raise CalibrationError(
                f"calibration document must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        version = payload.get("format_version")
        if version != CALIBRATION_FORMAT_VERSION:
            raise CalibrationError(
                f"unsupported calibration format_version {version!r} "
                f"(this build reads version {CALIBRATION_FORMAT_VERSION})"
            )
        observations = payload.get("observations")
        if not isinstance(observations, list):
            raise CalibrationError(
                "calibration document misses its 'observations' list"
            )
        return cls(Observation.from_dict(entry) for entry in observations)

    def to_json(self, **dumps_kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "CalibrationTable":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise CalibrationError(
                f"calibration document is not valid JSON: {error}"
            ) from None
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str | Path) -> "CalibrationTable":
        """Read a table from disk (:class:`CalibrationError` on corruption)."""
        try:
            text = Path(path).read_text()
        except OSError as error:
            raise CalibrationError(
                f"cannot read calibration table {path}: {error}"
            ) from None
        return cls.from_json(text)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json(indent=2) + "\n")

    # ------------------------------------------------------------------
    # summaries and the calibrated-auto recommendation
    # ------------------------------------------------------------------
    def select(
        self,
        *,
        strategy: str | None = None,
        backend: str | None = None,
        instance_class: str | None = None,
    ) -> list[Observation]:
        """Observations matching every given filter, key-sorted."""
        return [
            obs for obs in self
            if (strategy is None or obs.strategy == strategy)
            and (backend is None or obs.backend == backend)
            and (instance_class is None or obs.instance_class == instance_class)
        ]

    def summary(self) -> list[dict[str, Any]]:
        """Per (strategy, backend, instance class) aggregate rows.

        Deterministically ordered by the grouping key; rows carry the
        observation count, mean wall time, and mean/best quality (the
        quality means skip observations without a baseline).
        """
        groups: dict[tuple[str, str, str], list[Observation]] = {}
        for obs in self:
            groups.setdefault(
                (obs.strategy, obs.backend, obs.instance_class), []
            ).append(obs)
        rows = []
        for (strategy, backend, klass) in sorted(groups):
            members = groups[(strategy, backend, klass)]
            qualities = [o.quality for o in members if o.quality is not None]
            rows.append({
                "strategy": strategy,
                "backend": backend,
                "instance_class": klass,
                "observations": len(members),
                "mean_wall_time": sum(o.wall_time for o in members)
                / len(members),
                "mean_quality": (
                    sum(qualities) / len(qualities) if qualities else None
                ),
                "best_quality": min(qualities) if qualities else None,
            })
        return rows

    def recommend(
        self,
        instance_class: str,
        *,
        num_sites: int | None = None,
        candidates: Iterable[str] = ("qp", "sa"),
    ) -> Recommendation | None:
        """The calibrated pick for one instance class, or ``None``.

        Considers only strategies in ``candidates`` (what the caller can
        actually run) with at least one quality-bearing observation in
        the class; picks the best mean quality, breaking ties by lower
        mean wall time and then by name, so the recommendation is a pure
        function of the table's contents.  ``None`` — meaning "no
        evidence, fall back to the model-size cutoff" — is returned for
        empty tables, unknown classes, and classes observed only under
        other strategies.
        """
        candidates = tuple(candidates)
        scored = []
        for name in sorted(set(candidates)):
            members = [
                obs for obs in self.select(
                    strategy=name, instance_class=instance_class
                )
                if obs.quality is not None
                and (num_sites is None or obs.num_sites == num_sites)
            ]
            if not members:
                continue
            mean_quality = sum(o.quality for o in members) / len(members)
            mean_time = sum(o.wall_time for o in members) / len(members)
            scored.append((mean_quality, mean_time, name, members))
        if not scored:
            return None
        mean_quality, mean_time, name, members = min(
            scored, key=lambda entry: (entry[0], entry[1], entry[2])
        )
        restarts = None
        time_limit = None
        if name == "qp":
            # Budget the MIP at twice the slowest observed solve so a
            # regression times out instead of hanging a serving path.
            time_limit = 2.0 * max(o.wall_time for o in members)
        else:
            # The best-quality observation's portfolio size is the
            # budget knob for SA: restart counts are deterministic,
            # wall-clock truncation is not.
            best = min(
                members,
                key=lambda o: (o.quality, o.wall_time, o.key()),
            )
            if best.restarts > 1:
                restarts = best.restarts
        return Recommendation(
            strategy=name,
            restarts=restarts,
            time_limit=time_limit,
            observations=sum(len(entry[3]) for entry in scored),
            mean_quality=mean_quality,
        )
