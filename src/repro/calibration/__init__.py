"""Calibrated auto-routing: a persisted per-strategy performance history.

The paper's Section VI scalability cutoff says *when* the exact QP
solver stops being practical; this package records what actually
happened — per strategy, per execution backend, per instance-size class
— so the ``"auto"`` strategy can route on measured evidence instead of
a variable count alone:

* :class:`CalibrationTable` — a JSON-round-trippable, content-addressed
  set of :class:`Observation` records whose merge is order-independent
  and idempotent,
* :func:`record` / :func:`observation_from_report` — the opt-in hook an
  :class:`~repro.api.advisor.Advisor` threads through every serve
  (``Advisor(calibration=table)``; off by default, so canonical request
  JSON and cache keys stay byte-stable),
* :meth:`CalibrationTable.recommend` — the calibrated pick (strategy
  *and* budget) consumed by ``"auto"``; with no evidence it returns
  ``None`` and ``auto`` falls back bitwise-identically to the
  model-size cutoff.

The ``bench calibrate`` target (:mod:`repro.bench.calibrate`) persists a
table plus equal-CPU-budget portfolio ratios as ``BENCH_calibration.json``;
:mod:`repro.reporting` renders that artifact as publication tables.
"""

from repro.calibration.record import observation_from_report, record
from repro.calibration.table import (
    CALIBRATION_FORMAT_VERSION,
    NO_BACKEND,
    CalibrationTable,
    Observation,
    Recommendation,
    instance_class,
)

__all__ = [
    "CALIBRATION_FORMAT_VERSION",
    "NO_BACKEND",
    "CalibrationTable",
    "Observation",
    "Recommendation",
    "instance_class",
    "observation_from_report",
    "record",
]
