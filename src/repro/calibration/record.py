"""Turning a served :class:`~repro.api.report.SolveReport` into evidence.

:func:`observation_from_report` is the single place that knows how to
read calibration signals out of a report: the resolved strategy chain,
the portfolio execution backend, the linearised model size (when any
stage computed one), the end-to-end wall time and the objective
normalised by the single-site baseline.  The advisor's opt-in recording
hook (``Advisor(calibration=...)``) calls it after every serve; the
``bench calibrate`` target calls it for its equal-budget sweeps.

Recording never touches the request: calibration is advisor-side state,
so request canonical JSON — and with it the service's coalescing and
result-cache keys — stays byte-stable whether or not a table is
attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.calibration.table import (
    NO_BACKEND,
    CalibrationTable,
    Observation,
    instance_class,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.report import SolveReport


def observation_from_report(report: "SolveReport") -> Observation:
    """Distil one report into an :class:`Observation`.

    ``quality`` is ``objective / single-site objective`` on the report's
    own coefficients (the baseline every bench table already prints);
    ``variables`` comes from the result metadata when a stage estimated
    or built the linearised model (``auto``'s cutoff probe, the QP's
    model-size stamp), else ``None``.
    """
    from repro.partition.assignment import single_site_partitioning

    request = report.request
    result = report.result
    metadata = result.metadata
    variables = metadata.get("auto_model_variables", metadata.get("variables"))
    quality = None
    try:
        baseline = single_site_partitioning(result.coefficients).objective
    except Exception:
        baseline = 0.0  # e.g. exotic coefficients; skip the normalisation
    if baseline > 0:
        quality = result.objective / baseline
    return Observation(
        strategy=report.strategy,
        backend=str(metadata.get("executor", NO_BACKEND)),
        instance_class=instance_class(
            request.instance.num_attributes, request.instance.num_transactions
        ),
        num_sites=request.num_sites,
        wall_time=report.wall_time,
        objective=result.objective,
        quality=quality,
        variables=None if variables is None else int(variables),
        restarts=int(metadata.get("restarts", 1)),
        seed=request.seed,
        request_key=request.canonical_key(),
    )


def record(table: CalibrationTable, report: "SolveReport") -> Observation:
    """Record one report into ``table``; returns the stored observation."""
    observation = observation_from_report(report)
    table.add(observation)
    return observation
