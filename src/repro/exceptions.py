"""Exception hierarchy for the repro library.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema definition is invalid (duplicate names, bad widths, ...)."""


class WorkloadError(ReproError):
    """A workload definition is invalid (unknown attributes, empty sets, ...)."""


class InstanceError(ReproError):
    """A problem instance is inconsistent (schema/workload mismatch)."""


class SolverError(ReproError):
    """A solver failed (infeasible model, numerical trouble, bad options)."""


class OptionsError(SolverError):
    """Solver options are invalid (caught eagerly, before any solve starts)."""


class UnknownStrategyError(SolverError):
    """A strategy name was not found in the solver registry."""


class InfeasibleError(SolverError):
    """The optimisation model has no feasible solution."""


class UnboundedError(SolverError):
    """The optimisation model is unbounded."""


class SolverLimitError(SolverError):
    """A solver hit a resource limit before producing any solution."""


class RejectedError(ReproError):
    """The advisor service refused to admit a request.

    Admission control answers overload with a *structured* rejection —
    never a silent drop: ``reason`` is a machine-readable tag
    (``"queue-full"`` or ``"rate-limited"``) and ``retry_after``, when
    known, is the seconds a polite client should wait before retrying.
    """

    def __init__(self, reason: str, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class CalibrationError(ReproError):
    """A calibration table could not be read or merged.

    Raised for corrupt files, unknown format versions and malformed
    observations — always as a *structured* failure the caller can
    catch, never a silent reset to an empty table (which would quietly
    discard the accumulated performance history).
    """


class ArtifactError(ReproError):
    """A benchmark artifact (``BENCH_*.json``) is malformed.

    Raised by the reporting loader and the artifact-schema validator
    when a document is not valid JSON, misses required fields, or
    carries fields of the wrong shape for its artifact family.
    """


class TransportError(ReproError):
    """A socket-transport failure (framing, handshake, or connection)."""


class ConnectionClosedError(TransportError):
    """The peer closed (or abruptly lost) a transport connection."""


class ParseError(ReproError):
    """A SQL workload/schema text could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SimulationError(ReproError):
    """The execution simulator was asked to do something impossible."""
