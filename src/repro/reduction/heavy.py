"""The 20/80 rule (Section 4): solve heavy transactions first.

Assuming 20% of the transactions generate 80% of the load, the problem
can be solved iteratively over ``T``: partition for the heaviest subset
with the (expensive) exact solver, then extend to the full workload —
either by warm-starting a full QP or, cheaply, by alternating greedy
sub-solves for the remaining transactions around the fixed heavy core.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.advisor import Advisor
from repro.api.request import SolveRequest
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.model.instance import ProblemInstance
from repro.model.workload import Workload
from repro.partition.assignment import PartitioningResult
from repro.sa.subsolve import SubproblemSolver


class IterativeRefinement:
    """Two-stage heavy-first solve.

    Stage 1 solves the QP restricted to the heaviest
    ``heavy_fraction`` of transactions. Stage 2 fixes those placements,
    greedily inserts the light transactions one by one (cheapest
    feasible site under the blended objective) and re-optimises ``y``;
    optionally a full QP is warm-started from this solution.

    Both QP stages are served through the registry's ``"qp"`` strategy;
    pass a long-lived :class:`~repro.api.Advisor` to share its caches
    with other requests (a fresh one is created otherwise).
    """

    def __init__(
        self,
        instance: ProblemInstance,
        num_sites: int,
        parameters: CostParameters | None = None,
        heavy_fraction: float = 0.2,
        advisor: Advisor | None = None,
    ):
        self.instance = instance
        self.num_sites = num_sites
        self.parameters = parameters or CostParameters()
        self.heavy_fraction = heavy_fraction
        self.advisor = advisor or Advisor()
        self.coefficients = self.advisor.coefficient_cache(instance).coefficients(
            self.parameters
        )

    def transaction_loads(self) -> np.ndarray:
        """Total access weight of each transaction (read + its writes)."""
        coefficients = self.coefficients
        indicators = coefficients.indicators
        per_query = (coefficients.weights * indicators.beta).sum(axis=0)  # (|Q|,)
        return per_query @ indicators.gamma  # (|T|,)

    def heavy_transactions(self) -> list[int]:
        loads = self.transaction_loads()
        count = max(1, int(round(self.heavy_fraction * loads.shape[0])))
        return sorted(np.argsort(-loads)[:count].tolist())

    def _sub_instance(self, transaction_indices: list[int]) -> ProblemInstance:
        transactions = tuple(
            self.instance.transactions[t] for t in transaction_indices
        )
        workload = Workload(transactions, name=f"{self.instance.workload.name}/heavy")
        return ProblemInstance(
            self.instance.schema, workload, name=f"{self.instance.name} (heavy)"
        )

    def solve(
        self,
        time_limit: float | None = None,
        gap: float = 1e-3,
        backend: str = "auto",
        final_qp: bool = False,
    ) -> PartitioningResult:
        started = time.perf_counter()
        heavy = self.heavy_transactions()
        sub_instance = self._sub_instance(heavy)

        def qp_request(instance: ProblemInstance) -> SolveRequest:
            return SolveRequest(
                instance=instance,
                num_sites=self.num_sites,
                parameters=self.parameters,
                strategy="qp",
                options={"gap": gap, "backend": backend},
                time_limit=time_limit,
            )

        sub_result = self.advisor.advise(qp_request(sub_instance)).result

        # Lift: heavy transactions keep their sites; light ones greedy.
        num_transactions = self.coefficients.num_transactions
        x = np.zeros((num_transactions, self.num_sites), dtype=bool)
        for position, t_index in enumerate(heavy):
            x[t_index] = sub_result.x[position]
        subsolver = SubproblemSolver(self.coefficients, self.num_sites)
        y = sub_result.y.copy()
        light = [t for t in range(num_transactions) if t not in set(heavy)]
        # Insert light transactions at their cheapest site given y, then
        # alternate a few greedy improvement rounds.
        for t_index in light:
            x[t_index] = _cheapest_site(subsolver, y, t_index)
        y = subsolver.optimize_y_greedy(x)
        for _ in range(3):
            x = subsolver.optimize_x_greedy(y)
            y = subsolver.optimize_y_greedy(x)

        evaluator = SolutionEvaluator(self.coefficients)
        result = PartitioningResult(
            coefficients=self.coefficients,
            x=x,
            y=y,
            objective=evaluator.objective4(x, y),
            solver="qp-heavy",
            wall_time=time.perf_counter() - started,
            proven_optimal=False,
            metadata={
                "heavy_transactions": [
                    self.instance.transactions[t].name for t in heavy
                ],
                "stage1_objective": sub_result.objective,
            },
        )
        if final_qp:
            refined = self.advisor.advise(
                qp_request(self.instance), warm_start=result
            ).result
            refined.metadata["warm_start_objective"] = result.objective
            refined.wall_time += result.wall_time
            return refined
        return result


def _cheapest_site(
    subsolver: SubproblemSolver, y: np.ndarray, t_index: int
) -> np.ndarray:
    """One-hot site row minimising the transaction's placement cost."""
    ys = y.astype(float)
    cost = subsolver.lam * (subsolver.c1[:, t_index] @ ys)  # (|S|,)
    missing = subsolver.phi[:, t_index] @ (1.0 - ys)  # (|S|,)
    allowed = np.flatnonzero(missing < 0.5)
    candidates = allowed if allowed.size else np.arange(y.shape[1])
    best = candidates[np.argmin(cost[candidates])]
    row = np.zeros(y.shape[1], dtype=bool)
    row[best] = True
    return row


def solve_iterative(
    instance: ProblemInstance,
    num_sites: int,
    parameters: CostParameters | None = None,
    heavy_fraction: float = 0.2,
    time_limit: float | None = None,
    final_qp: bool = False,
) -> PartitioningResult:
    """One-call wrapper around :class:`IterativeRefinement`."""
    refinement = IterativeRefinement(
        instance, num_sites, parameters=parameters, heavy_fraction=heavy_fraction
    )
    return refinement.solve(time_limit=time_limit, final_qp=final_qp)
