"""Workload compression: signature-clustered super-transactions.

The paper's Section 4 shrinks the *attribute* side of the problem
(reasonable cuts, :mod:`repro.reduction.cuts`); million-transaction OLTP
traces need the *transaction* side shrunk too, because many transactions
are access-identical and differ only in frequency.  This module clusters
transactions by access signature into weighted super-transactions:

* **Lossless tier** — transactions whose query multisets are
  bit-identical (kind, attribute set, extra tables, row statistics and
  frequency all equal — the same (alpha, beta, gamma) columns) merge by
  summing frequencies.  ``W[a,q] = w_a * f_q * n_{a,q}`` is linear in
  frequency, so evaluating any placement on the compressed view gives
  exactly the total the original view gives when the members share their
  super's site; under pure cost minimisation (``lambda = 1``) the merged
  transactions' placement-cost columns are proportional, so the optimum
  itself is preserved and the reported error bound is ``0.0``.
* **Lossy tier** — transactions whose *access* signatures match but
  whose frequencies or row counts differ merge under a caller-set
  tolerance.  Frequencies sum and row counts are frequency-averaged, so
  total access weight is still preserved exactly; the only loss is the
  forced co-location of members whose cost columns are no longer
  proportional.  Each candidate merge carries a sound, computable bound
  on that co-location penalty, and merges are accepted greedily while
  the cumulative bound stays within ``tolerance * single_site_cost``.

Either way the result is a :class:`~repro.model.compressed.
CompressedInstance` whose :class:`~repro.model.compressed.LiftingMap`
fans compressed placements back out to the original transactions;
:func:`lift_result` re-evaluates the lifted placement on the original
instance, so reported objectives are always true original-instance
costs, never compressed-view estimates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.exceptions import InstanceError
from repro.model.compressed import (
    COMPRESSION_TIERS,
    TIER_LOSSLESS,
    CompressedInstance,
    LiftingMap,
)
from repro.model.instance import ProblemInstance
from repro.model.workload import Query, Transaction, Workload
from repro.partition.assignment import PartitioningResult


# ----------------------------------------------------------------------
# Signatures (the clustering keys)
# ----------------------------------------------------------------------
def query_access_signature(query: Query) -> tuple:
    """The access shape of a query: what it touches, not how much.

    Two queries with equal access signatures induce identical
    ``alpha`` / ``beta`` / ``delta`` columns; only the magnitudes
    (frequency, row counts) may differ.
    """
    return (
        query.kind.value,
        tuple(sorted(query.attributes)),
        tuple(sorted(query.extra_tables)),
    )


def query_signature(query: Query) -> tuple:
    """The full query signature: access shape plus exact magnitudes.

    Row statistics are canonicalised over the *touched* tables (with
    the 1.0 default filled in), so queries that spell the same
    statistics differently still match.
    """
    rows = tuple(sorted((table, query.rows_for(table)) for table in query.tables))
    return query_access_signature(query) + (rows, query.frequency)


def transaction_access_signature(transaction: Transaction) -> tuple:
    """Sorted multiset of the transaction's query access signatures."""
    return tuple(sorted(query_access_signature(query) for query in transaction))


def transaction_signature(transaction: Transaction) -> tuple:
    """Sorted multiset of the transaction's full query signatures."""
    return tuple(sorted(query_signature(query) for query in transaction))


def _cluster(
    instance: ProblemInstance, key_of
) -> list[list[int]]:
    """Group transaction indices by a signature key, preserving the
    canonical order of each group's first member."""
    groups: dict[tuple, list[int]] = {}
    for t_index, transaction in enumerate(instance.transactions):
        groups.setdefault(key_of(transaction), []).append(t_index)
    return sorted(groups.values(), key=lambda members: members[0])


# ----------------------------------------------------------------------
# Error bounds
# ----------------------------------------------------------------------
def _query_sort_orders(
    transactions: Sequence[Transaction],
) -> list[list[int]]:
    """Per member, its query indices sorted by full signature — the
    cross-member pairing used when merging (members of one group have
    equal sorted signature multisets, so position ``j`` pairs)."""
    return [
        sorted(range(len(t)), key=lambda j, t=t: query_signature(t.queries[j]))
        for t in transactions
    ]


def _group_error_bound(
    coefficients: CostCoefficients, members: Sequence[int]
) -> float:
    """A sound upper bound on the blended-objective (6) increase caused
    by forcing ``members`` onto one site instead of letting each pick
    its own.

    Cost term: members with bit-identical full signatures (a *class*)
    have equal placement-cost columns, so co-locating within a class is
    free; co-locating the classes costs at most the summed placement
    spread of all but one class, and the spread of a class on any
    ``y`` is at most ``sum_a |c1[a, class]|``.  Load term (only when
    ``lambda < 1``): the max site load can exceed the released
    placement's by at most the read load of all but one member.
    """
    instance = coefficients.instance
    lam = coefficients.parameters.load_balance_lambda
    classes: dict[tuple, list[int]] = {}
    for t_index in members:
        signature = transaction_signature(instance.transactions[t_index])
        classes.setdefault(signature, []).append(t_index)
    spreads = [
        float(np.abs(coefficients.c1[:, class_members].sum(axis=1)).sum())
        for class_members in classes.values()
    ]
    bound = lam * (sum(spreads) - max(spreads))
    if lam < 1.0:
        loads = [float(coefficients.c3[:, t].sum()) for t in members]
        bound += (1.0 - lam) * (sum(loads) - max(loads))
    return bound


# ----------------------------------------------------------------------
# Building the compressed instance
# ----------------------------------------------------------------------
def _merge_group(
    instance: ProblemInstance, members: Sequence[int], lossless: bool
) -> Transaction:
    """One super-transaction for ``members`` (first member = representative).

    Queries pair across members by sorted full signature; each merged
    query keeps the representative's name, kind and access sets, sums
    the paired frequencies and (lossy tier) frequency-averages the
    paired per-table row counts — which preserves the summed access
    weight ``sum_i w_a * f_i * n_i`` exactly, since ``W`` is linear in
    frequency.
    """
    transactions = [instance.transactions[t] for t in members]
    orders = _query_sort_orders(transactions)
    representative = transactions[0]
    merged: dict[int, Query] = {}
    for slot in range(len(representative)):
        paired = [
            transactions[m].queries[orders[m][slot]]
            for m in range(len(transactions))
        ]
        rep_query = paired[0]
        frequency = float(sum(query.frequency for query in paired))
        if lossless:
            rows = {table: rep_query.rows_for(table) for table in rep_query.tables}
        else:
            rows = {
                table: sum(q.frequency * q.rows_for(table) for q in paired)
                / frequency
                for table in rep_query.tables
            }
        merged[orders[0][slot]] = Query(
            name=rep_query.name,
            kind=rep_query.kind,
            attributes=rep_query.attributes,
            rows=rows,
            frequency=frequency,
            extra_tables=rep_query.extra_tables,
        )
    queries = tuple(merged[position] for position in range(len(representative)))
    return Transaction(f"{representative.name}__x{len(members)}", queries)


def _build_compressed(
    instance: ProblemInstance,
    groups: list[list[int]],
    tier: str,
    tolerance: float,
    objective_error_bound: float,
) -> CompressedInstance:
    lifting = LiftingMap(
        groups=tuple(tuple(members) for members in groups),
        num_original_transactions=instance.num_transactions,
    )
    if lifting.num_super_transactions == instance.num_transactions:
        # Nothing merged: share the original instance so the pipeline
        # can serve it without any detour.
        return CompressedInstance(
            original=instance,
            compressed=instance,
            lifting=lifting,
            tier=tier,
            tolerance=tolerance,
            objective_error_bound=0.0,
        )
    transactions = tuple(
        instance.transactions[members[0]]
        if len(members) == 1
        else _merge_group(instance, members, lossless=tier == TIER_LOSSLESS)
        for members in groups
    )
    workload = Workload(
        transactions, name=f"{instance.workload.name}/compressed"
    )
    compressed = ProblemInstance(
        instance.schema, workload, name=f"{instance.name} ({tier}-compressed)"
    )
    return CompressedInstance(
        original=instance,
        compressed=compressed,
        lifting=lifting,
        tier=tier,
        tolerance=tolerance,
        objective_error_bound=objective_error_bound,
    )


def compress_instance(
    instance: ProblemInstance,
    tier: str = TIER_LOSSLESS,
    tolerance: float = 0.0,
    parameters: CostParameters | None = None,
    coefficients: CostCoefficients | None = None,
) -> CompressedInstance:
    """Cluster ``instance``'s transactions into super-transactions.

    Parameters
    ----------
    instance:
        The workload to compress.
    tier:
        ``"lossless"`` merges only bit-identical signatures;
        ``"lossy"`` also merges access-identical near-duplicates while
        the cumulative error bound stays within
        ``tolerance * single_site_cost``.
    tolerance:
        The lossy budget, relative to the instance's single-site cost
        (ignored by the lossless tier).
    parameters:
        Cost parameters the error bounds are computed under (default:
        :class:`~repro.costmodel.config.CostParameters`).
    coefficients:
        Prebuilt coefficients for ``instance`` (e.g. from an advisor's
        cache) to avoid rebuilding them for the bounds; must match
        ``parameters`` when both are given.
    """
    if tier not in COMPRESSION_TIERS:
        raise InstanceError(
            f"unknown compression tier {tier!r}; "
            f"known: {', '.join(COMPRESSION_TIERS)}"
        )
    if tolerance < 0:
        raise InstanceError(f"tolerance must be >= 0, got {tolerance!r}")
    if coefficients is not None:
        if parameters is not None and coefficients.parameters != parameters:
            raise InstanceError(
                "compress_instance got coefficients built under different "
                "parameters than the ones passed"
            )
        parameters = coefficients.parameters
    parameters = parameters or CostParameters()
    lam = parameters.load_balance_lambda

    def bounds_coefficients() -> CostCoefficients:
        nonlocal coefficients
        if coefficients is None:
            coefficients = build_coefficients(instance, parameters)
        return coefficients

    lossless_groups = _cluster(instance, transaction_signature)
    if tier == TIER_LOSSLESS:
        groups = lossless_groups
        bound = 0.0
        if lam < 1.0 and any(len(members) > 1 for members in groups):
            # Pure cost is preserved exactly; the load-balance term of
            # objective (6) can still degrade when identical
            # transactions are forced together instead of spread.
            bound = float(
                sum(
                    _group_error_bound(bounds_coefficients(), members)
                    for members in groups
                    if len(members) > 1
                )
            )
        return _build_compressed(instance, groups, tier, 0.0, bound)

    # Lossy tier: cluster by access signature, then accept the cheapest
    # cross-class merges while the cumulative bound fits the budget.
    access_groups = _cluster(instance, transaction_access_signature)
    lossless_of: dict[int, list[list[int]]] = {}
    candidates: list[tuple[float, int]] = []
    for g_index, members in enumerate(access_groups):
        classes: dict[tuple, list[int]] = {}
        for t_index in members:
            signature = transaction_signature(instance.transactions[t_index])
            classes.setdefault(signature, []).append(t_index)
        lossless_of[g_index] = sorted(
            classes.values(), key=lambda group: group[0]
        )
        if len(lossless_of[g_index]) > 1:
            candidates.append(
                (_group_error_bound(bounds_coefficients(), members), g_index)
            )
    budget = tolerance * bounds_coefficients().single_site_cost()
    accepted: set[int] = set()
    spent = 0.0
    for group_bound, g_index in sorted(candidates):
        if spent + group_bound <= budget:
            accepted.add(g_index)
            spent += group_bound
    groups = []
    for g_index, members in enumerate(access_groups):
        if g_index in accepted or len(lossless_of[g_index]) == 1:
            groups.append(members)
        else:
            groups.extend(lossless_of[g_index])
    groups.sort(key=lambda members: members[0])
    bound = spent
    if lam < 1.0:
        bound += float(
            sum(
                _group_error_bound(bounds_coefficients(), members)
                for g_index, members in enumerate(access_groups)
                if g_index not in accepted
                for members in lossless_of[g_index]
                if len(members) > 1
            )
        )
    return _build_compressed(instance, groups, tier, tolerance, bound)


# ----------------------------------------------------------------------
# Moving solutions between the views
# ----------------------------------------------------------------------
def lift_result(
    compressed: CompressedInstance,
    result: PartitioningResult,
    coefficients: CostCoefficients | None = None,
) -> PartitioningResult:
    """Lift a compressed-view solution to the original instance.

    Every member transaction takes its super-transaction's site;
    attribute placements transfer verbatim.  The returned objective is
    re-evaluated on the *original* instance, so it is the true cost —
    for the lossless tier under ``lambda = 1`` it equals the compressed
    objective exactly (the paper's ``W`` is linear in frequency).
    """
    if coefficients is None:
        coefficients = build_coefficients(
            compressed.original, result.coefficients.parameters
        )
    x = compressed.lifting.lift_x(result.x)
    y = result.y
    evaluator = SolutionEvaluator(coefficients)
    # Optimality transfers only when the merge provably preserved the
    # optimum (lossless tier, zero reported bound).
    proven = (
        result.proven_optimal
        and compressed.tier == TIER_LOSSLESS
        and compressed.objective_error_bound == 0.0
    )
    return PartitioningResult(
        coefficients=coefficients,
        x=x,
        y=y,
        objective=evaluator.objective4(x, y),
        solver=result.solver if compressed.is_identity
        else f"{result.solver}+compress",
        wall_time=result.wall_time,
        proven_optimal=proven,
        metadata={
            **result.metadata,
            "compression_tier": compressed.tier,
            "compression_ratio": compressed.compression_ratio,
            "compressed_transactions": compressed.num_super_transactions,
            "original_transactions": compressed.num_original_transactions,
            "compressed_objective": result.objective,
            "objective_error_bound": compressed.objective_error_bound,
        },
    )


def compress_result(
    compressed: CompressedInstance,
    result: PartitioningResult,
    coefficients: CostCoefficients,
) -> PartitioningResult:
    """Restrict an original-view solution to the compressed view (used
    to carry warm starts into a compressed solve).

    Each group keeps its first member's site row.  Feasibility is
    preserved: group members share their access signature, so the
    representative's read set is covered wherever the original
    placement was feasible.
    """
    x = compressed.lifting.compress_x(result.x)
    y = result.y
    evaluator = SolutionEvaluator(coefficients)
    return PartitioningResult(
        coefficients=coefficients,
        x=x,
        y=y,
        objective=evaluator.objective4(x, y),
        solver=result.solver,
        wall_time=result.wall_time,
        proven_optimal=False,
        metadata=dict(result.metadata),
    )
