"""Problem-size reductions (Section 4 of the paper).

* :mod:`repro.reduction.cuts` — "reasonable cuts": attributes of one
  table accessed by exactly the same set of queries can be fused into an
  atomic group, shrinking ``|A|`` without changing the optimum.
* :mod:`repro.reduction.heavy` — the 20/80 rule: solve the heaviest
  transactions first and extend the solution to the full workload.
"""

from repro.reduction.cuts import attribute_groups, GroupedInstance, group_instance
from repro.reduction.heavy import IterativeRefinement, solve_iterative

__all__ = [
    "attribute_groups",
    "GroupedInstance",
    "group_instance",
    "IterativeRefinement",
    "solve_iterative",
]
