"""Problem-size reductions (Section 4 of the paper).

* :mod:`repro.reduction.cuts` — "reasonable cuts": attributes of one
  table accessed by exactly the same set of queries can be fused into an
  atomic group, shrinking ``|A|`` without changing the optimum.
* :mod:`repro.reduction.heavy` — the 20/80 rule: solve the heaviest
  transactions first and extend the solution to the full workload.
* :mod:`repro.reduction.compress` — workload compression: cluster
  access-identical transactions into weighted super-transactions
  (lossless or tolerance-bounded lossy) and lift solutions back.
"""

from repro.reduction.cuts import attribute_groups, GroupedInstance, group_instance
from repro.reduction.heavy import IterativeRefinement, solve_iterative
from repro.reduction.compress import (
    compress_instance,
    compress_result,
    lift_result,
    query_access_signature,
    query_signature,
    transaction_access_signature,
    transaction_signature,
)

__all__ = [
    "attribute_groups",
    "GroupedInstance",
    "group_instance",
    "IterativeRefinement",
    "solve_iterative",
    "compress_instance",
    "compress_result",
    "lift_result",
    "query_access_signature",
    "query_signature",
    "transaction_access_signature",
    "transaction_signature",
]
