"""Reasonable cuts: fuse identically-accessed attributes (Section 4).

If two attributes belong to the same table and every query either
accesses both or neither, any solution can be rearranged so they share
the same replica sites without changing its cost; it therefore suffices
to distribute the *groups* induced by query-access overlaps. The paper
notes this does not improve the worst case but can shrink instances
dramatically (TPC-C's 92 attributes collapse to a few dozen groups).

The grouped problem is represented as a plain :class:`ProblemInstance`
whose "attributes" are the groups (width = sum of member widths), so
every solver runs on it unchanged; :meth:`GroupedInstance.expand`
lifts a grouped solution back to the original instance with identical
cost (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.constants import build_indicators
from repro.costmodel.evaluator import SolutionEvaluator
from repro.model.instance import ProblemInstance
from repro.model.schema import Attribute, Schema, Table
from repro.model.workload import Query, Transaction, Workload
from repro.partition.assignment import PartitioningResult


def attribute_groups(instance: ProblemInstance) -> list[list[int]]:
    """Partition attribute indices into co-access groups.

    Two attributes are grouped iff they belong to the same table and
    have identical access columns ``alpha[a, :]`` (then ``beta``,
    ``rows`` and ``phi`` agree automatically because those are
    table-level).
    """
    indicators = build_indicators(instance)
    signature_to_group: dict[tuple, list[int]] = {}
    for a_index, attribute in enumerate(instance.attributes):
        signature = (attribute.table, tuple(indicators.alpha[a_index].astype(bool)))
        signature_to_group.setdefault(signature, []).append(a_index)
    # Preserve canonical ordering by the first member of each group.
    return sorted(signature_to_group.values(), key=lambda members: members[0])


@dataclass
class GroupedInstance:
    """A reduced instance plus the bookkeeping to expand solutions."""

    original: ProblemInstance
    grouped: ProblemInstance
    groups: list[list[int]]
    #: original attribute index -> group index
    group_of: np.ndarray

    @property
    def reduction_ratio(self) -> float:
        """``#groups / |A|`` — lower is a stronger reduction."""
        return len(self.groups) / self.original.num_attributes

    def expand(
        self,
        result: PartitioningResult,
        coefficients: CostCoefficients | None = None,
    ) -> PartitioningResult:
        """Lift a grouped solution to the original attribute space.

        The expanded solution has exactly the same objective value
        (grouping is lossless for the cost model).
        """
        coefficients = coefficients or build_coefficients(
            self.original, result.coefficients.parameters
        )
        y = result.y[self.group_of]  # fan the group row out to members
        evaluator = SolutionEvaluator(coefficients)
        return PartitioningResult(
            coefficients=coefficients,
            x=result.x,
            y=y,
            objective=evaluator.objective4(result.x, y),
            solver=f"{result.solver}+cuts",
            wall_time=result.wall_time,
            proven_optimal=result.proven_optimal,
            metadata={
                **result.metadata,
                "groups": len(self.groups),
                "original_attributes": self.original.num_attributes,
            },
        )


def group_instance(instance: ProblemInstance) -> GroupedInstance:
    """Build the reduced instance whose attributes are co-access groups."""
    groups = attribute_groups(instance)
    group_of = np.empty(instance.num_attributes, dtype=int)
    group_names: list[str] = []
    # Representative (grouped) attribute name per group: the first
    # member's name with a multiplicity marker for readability.
    for g_index, members in enumerate(groups):
        for member in members:
            group_of[member] = g_index
        first = instance.attributes[members[0]]
        if len(members) == 1:
            group_names.append(first.name)
        else:
            group_names.append(f"{first.name}__g{len(members)}")

    # Grouped schema: same tables, one attribute per group.
    table_groups: dict[str, list[int]] = {}
    for g_index, members in enumerate(groups):
        table = instance.attributes[members[0]].table
        table_groups.setdefault(table, []).append(g_index)
    tables = []
    for table in instance.schema.tables:
        attributes = tuple(
            Attribute(
                table=table.name,
                name=group_names[g_index],
                width=sum(instance.attributes[m].width for m in groups[g_index]),
            )
            for g_index in table_groups[table.name]
        )
        tables.append(Table(table.name, attributes))
    grouped_schema = Schema(tables, name=f"{instance.schema.name}/grouped")

    def grouped_name(a_index: int) -> str:
        g_index = group_of[a_index]
        table = instance.attributes[groups[g_index][0]].table
        return f"{table}.{group_names[g_index]}"

    attribute_index = instance.attribute_index
    transactions = []
    for transaction in instance.workload:
        queries = []
        for query in transaction:
            mapped = frozenset(
                grouped_name(attribute_index[qualified])
                for qualified in query.attributes
            )
            queries.append(
                Query(
                    name=query.name,
                    kind=query.kind,
                    attributes=mapped,
                    rows=dict(query.rows),
                    frequency=query.frequency,
                    extra_tables=query.extra_tables,
                )
            )
        transactions.append(Transaction(transaction.name, tuple(queries)))
    grouped_workload = Workload(transactions, name=f"{instance.workload.name}/grouped")
    grouped = ProblemInstance(
        grouped_schema, grouped_workload, name=f"{instance.name} (grouped)"
    )
    return GroupedInstance(
        original=instance, grouped=grouped, groups=groups, group_of=group_of
    )
