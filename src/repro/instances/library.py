"""Named instances: the paper's Table 2 plus the Table 1 sweep defaults.

The ``rndA...`` class (many attributes per table, few attribute
references per query) has large cost-reduction potential; the
``rndB...`` class (few attributes per table, many references) has
little — Table 3 confirms this split.

The Table-3 rows also include ``...t64x...`` instances not listed in
Table 2; they follow the same parameter pattern with 64 tables.
"""

from __future__ import annotations

from repro.exceptions import InstanceError
from repro.instances.random_gen import InstanceParameters, generate_instance
from repro.instances.tpcc import tpcc_instance
from repro.model.instance import ProblemInstance

#: Default seed so named instances are reproducible across runs.
DEFAULT_SEED = 20100116  # the paper's arXiv v3 date

#: Bold defaults of Table 1 (parameters A-F).
TABLE1_DEFAULTS = InstanceParameters(
    name="table1-default",
    num_transactions=20,
    num_tables=20,
    max_queries_per_transaction=3,  # A
    update_percent=10.0,  # B
    max_attributes_per_table=15,  # C
    max_table_refs_per_query=5,  # D
    max_attribute_refs_per_query=15,  # E
    attribute_widths=(4.0, 8.0),  # F
)


def _rnd_a(num_tables: int, num_transactions: int, update_percent: float = 10.0) -> InstanceParameters:
    """Class rndA: large expected cost reduction (Table 2, upper block)."""
    suffix = f"u{int(update_percent)}" if update_percent != 10.0 else ""
    return InstanceParameters(
        name=f"rndAt{num_tables}x{num_transactions}{suffix}",
        num_transactions=num_transactions,
        num_tables=num_tables,
        max_queries_per_transaction=3,
        update_percent=update_percent,
        max_attributes_per_table=30,
        max_table_refs_per_query=3,
        max_attribute_refs_per_query=8,
        attribute_widths=(2.0, 4.0, 8.0, 16.0),
    )


def _rnd_b(num_tables: int, num_transactions: int, update_percent: float = 10.0) -> InstanceParameters:
    """Class rndB: small expected cost reduction (Table 2, lower block)."""
    suffix = f"u{int(update_percent)}" if update_percent != 10.0 else ""
    return InstanceParameters(
        name=f"rndBt{num_tables}x{num_transactions}{suffix}",
        num_transactions=num_transactions,
        num_tables=num_tables,
        max_queries_per_transaction=3,
        update_percent=update_percent,
        max_attributes_per_table=5,
        max_table_refs_per_query=6,
        max_attribute_refs_per_query=28,
        attribute_widths=(2.0, 4.0, 8.0, 16.0),
    )


#: All named random instances of Tables 2, 3, 5 and 6.
TABLE2_INSTANCES: dict[str, InstanceParameters] = {
    parameters.name: parameters
    for parameters in (
        [_rnd_a(tables, 15) for tables in (4, 8, 16, 32, 64)]
        + [_rnd_a(8, 15, update_percent=50.0)]
        + [_rnd_a(tables, 100) for tables in (4, 8, 16, 32, 64)]
        + [_rnd_b(tables, 15) for tables in (4, 8, 16, 32, 64)]
        + [_rnd_b(16, 15, update_percent=50.0)]
        + [_rnd_b(tables, 100) for tables in (4, 8, 16, 32, 64)]
    )
}


def _rnd_dup(
    num_transactions: int, duplicate_jitter: float = 0.0
) -> InstanceParameters:
    """Class rndDup: duplicate-heavy rndA-style workloads for the
    compression layer (:mod:`repro.reduction.compress`).

    ``duplicate_rate=0.85`` makes ~85% of the transactions clones of a
    skewed template pool, giving the lossless tier roughly a
    ``1 / (1 - rate)`` transaction-count reduction; the ``j`` variant
    redraws half the clones' frequencies/row counts so only the lossy
    tier can merge them.
    """
    suffix = "j" if duplicate_jitter else ""
    return _rnd_a(8, num_transactions).with_(
        name=f"rndDupAt8x{num_transactions}{suffix}",
        duplicate_rate=0.85,
        duplicate_skew=1.0,
        duplicate_jitter=duplicate_jitter,
    )


#: Duplicate-heavy instances (not part of the paper's tables; testbeds
#: for workload compression).
DUPLICATE_INSTANCES: dict[str, InstanceParameters] = {
    parameters.name: parameters
    for parameters in (
        _rnd_dup(120),
        _rnd_dup(120, duplicate_jitter=0.5),
        _rnd_dup(400),
    )
}


def instance_catalog() -> tuple[str, ...]:
    """Names accepted by :func:`named_instance`."""
    from repro.instances.testbed import TESTBED_INSTANCES

    return (
        ("tpcc",)
        + tuple(TESTBED_INSTANCES)
        + tuple(TABLE2_INSTANCES)
        + tuple(DUPLICATE_INSTANCES)
    )


def named_instance(name: str, seed: int = DEFAULT_SEED) -> ProblemInstance:
    """Materialise a named instance ("tpcc", a testbed name, or a
    Table-2 name)."""
    from repro.instances.testbed import TESTBED_INSTANCES

    if name == "tpcc":
        return tpcc_instance()
    if name in TESTBED_INSTANCES:
        return TESTBED_INSTANCES[name]()
    parameters = TABLE2_INSTANCES.get(name) or DUPLICATE_INSTANCES.get(name)
    if parameters is None:
        known = ", ".join(instance_catalog())
        raise InstanceError(f"unknown instance {name!r}; known: {known}") from None
    return generate_instance(parameters, seed=seed)
