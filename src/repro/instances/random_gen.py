"""The random OLTP instance generator of Section 5.3.

Instances are described by upper bounds on seven parameters (the paper's
Table 1 labels them A-F plus the sizes); each individual value is drawn
uniformly between 1 and its bound:

* A — max queries per transaction,
* B — percentage of queries being updates,
* C — max attributes per table,
* D — max tables referenced by a single query,
* E — max individual attributes referenced by a single query,
* F — the set of allowed attribute widths,

plus the number of transactions |T| and the number of tables.

The paper does not state distributions for query frequencies and row
counts; we use ``f_q ~ U[1, max_frequency]`` and per-table row counts
``~ U[1, max_rows]`` (documented substitution, see DESIGN.md). Both
bounds are parameters, so alternative conventions are one argument away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import InstanceError
from repro.model.instance import ProblemInstance
from repro.model.schema import Attribute, Schema, Table
from repro.model.workload import Query, QueryKind, Transaction, Workload


@dataclass(frozen=True)
class InstanceParameters:
    """Upper bounds defining a class of random instances (Section 5.3)."""

    name: str = "random"
    num_transactions: int = 20
    num_tables: int = 20
    max_queries_per_transaction: int = 3  # A
    update_percent: float = 10.0  # B
    max_attributes_per_table: int = 15  # C
    max_table_refs_per_query: int = 5  # D
    max_attribute_refs_per_query: int = 15  # E
    attribute_widths: tuple[float, ...] = (4.0, 8.0)  # F
    max_frequency: int = 100
    max_rows: int = 10
    #: Probability that a transaction is a clone of an earlier template
    #: instead of freshly drawn.  Realistic OLTP traces are dominated by
    #: a few transaction shapes repeated at scale; raising this produces
    #: the duplicate-heavy workloads the compression layer
    #: (:mod:`repro.reduction.compress`) targets.  ``0.0`` reproduces
    #: the paper's generator draw-for-draw.
    duplicate_rate: float = 0.0
    #: Template-popularity skew: clone templates are drawn with weight
    #: ``1 / rank**duplicate_skew`` (rank = template age, oldest first).
    #: ``0.0`` is uniform; larger values concentrate the clones on a few
    #: hot templates, Zipf-style.
    duplicate_skew: float = 1.0
    #: Probability that a clone redraws its frequency and row counts
    #: (keeping the access shape).  ``0.0`` makes clones bit-identical
    #: (lossless-tier mergeable); larger values create near-duplicates
    #: only the lossy tier can merge.
    duplicate_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.num_transactions < 1 or self.num_tables < 1:
            raise InstanceError("need at least one transaction and one table")
        if not 0.0 <= self.update_percent <= 100.0:
            raise InstanceError(
                f"update_percent must be in [0, 100], got {self.update_percent!r}"
            )
        for rate_name in ("duplicate_rate", "duplicate_jitter"):
            if not 0.0 <= getattr(self, rate_name) <= 1.0:
                raise InstanceError(
                    f"{rate_name} must be in [0, 1], got "
                    f"{getattr(self, rate_name)!r}"
                )
        if self.duplicate_skew < 0.0:
            raise InstanceError(
                f"duplicate_skew must be >= 0, got {self.duplicate_skew!r}"
            )
        if not self.attribute_widths:
            raise InstanceError("attribute_widths must be non-empty")
        for bound_name in (
            "max_queries_per_transaction",
            "max_attributes_per_table",
            "max_table_refs_per_query",
            "max_attribute_refs_per_query",
            "max_frequency",
            "max_rows",
        ):
            if getattr(self, bound_name) < 1:
                raise InstanceError(f"{bound_name} must be >= 1")

    def with_(self, **overrides) -> "InstanceParameters":
        """A copy with some fields replaced (used by the Table-1 sweep)."""
        return replace(self, **overrides)


class RandomInstanceGenerator:
    """Draws concrete instances from an :class:`InstanceParameters` class."""

    def __init__(self, parameters: InstanceParameters, seed: int | None = None):
        self.parameters = parameters
        self._rng = np.random.default_rng(seed)

    def generate(self) -> ProblemInstance:
        schema = self._generate_schema()
        workload = self._generate_workload(schema)
        return ProblemInstance(schema, workload, name=self.parameters.name)

    # ------------------------------------------------------------------
    def _generate_schema(self) -> Schema:
        parameters = self.parameters
        rng = self._rng
        tables = []
        for table_number in range(parameters.num_tables):
            table_name = f"T{table_number}"
            num_attributes = int(rng.integers(1, parameters.max_attributes_per_table + 1))
            attributes = tuple(
                Attribute(
                    table=table_name,
                    name=f"a{attr_number}",
                    width=float(rng.choice(parameters.attribute_widths)),
                )
                for attr_number in range(num_attributes)
            )
            tables.append(Table(table_name, attributes))
        return Schema(tables, name=parameters.name)

    def _generate_workload(self, schema: Schema) -> Workload:
        parameters = self.parameters
        rng = self._rng
        transactions = []
        templates: list[Transaction] = []
        for txn_number in range(parameters.num_transactions):
            # Short-circuit before drawing so duplicate_rate=0.0 leaves
            # the paper generator's rng stream untouched draw-for-draw.
            if (
                parameters.duplicate_rate > 0.0
                and templates
                and rng.random() < parameters.duplicate_rate
            ):
                transactions.append(self._clone_transaction(templates, txn_number))
                continue
            num_queries = int(rng.integers(1, parameters.max_queries_per_transaction + 1))
            queries = tuple(
                self._generate_query(schema, f"t{txn_number}.q{query_number}")
                for query_number in range(num_queries)
            )
            transaction = Transaction(f"txn{txn_number}", queries)
            transactions.append(transaction)
            templates.append(transaction)
        return Workload(transactions, name=f"{parameters.name}-workload")

    def _clone_transaction(
        self, templates: list[Transaction], txn_number: int
    ) -> Transaction:
        """A clone of a (skew-weighted) earlier template transaction.

        The clone keeps the template's access shape exactly; with
        probability ``duplicate_jitter`` its frequencies and row counts
        are redrawn, producing a near-duplicate instead of an exact one.
        """
        parameters = self.parameters
        rng = self._rng
        ranks = np.arange(1, len(templates) + 1, dtype=float)
        weights = ranks ** -parameters.duplicate_skew
        template = templates[
            int(rng.choice(len(templates), p=weights / weights.sum()))
        ]
        jitter = rng.random() < parameters.duplicate_jitter
        queries = []
        for query_number, query in enumerate(template.queries):
            if jitter:
                rows = {
                    table: float(rng.integers(1, parameters.max_rows + 1))
                    for table in query.rows
                }
                frequency = float(rng.integers(1, parameters.max_frequency + 1))
            else:
                rows = dict(query.rows)
                frequency = query.frequency
            queries.append(
                Query(
                    name=f"t{txn_number}.q{query_number}",
                    kind=query.kind,
                    attributes=query.attributes,
                    rows=rows,
                    frequency=frequency,
                    extra_tables=query.extra_tables,
                )
            )
        return Transaction(f"txn{txn_number}", tuple(queries))

    def _generate_query(self, schema: Schema, name: str) -> Query:
        parameters = self.parameters
        rng = self._rng
        is_update = rng.random() * 100.0 < parameters.update_percent

        max_tables = min(parameters.max_table_refs_per_query, len(schema))
        num_tables = int(rng.integers(1, max_tables + 1))
        table_choice = rng.choice(len(schema), size=num_tables, replace=False)
        chosen_tables = [schema.tables[int(index)] for index in table_choice]

        # Candidate attributes: the union over the chosen tables; at least
        # one attribute per chosen table so each reference is real.
        num_refs = int(rng.integers(1, parameters.max_attribute_refs_per_query + 1))
        num_refs = max(num_refs, num_tables)
        attributes: set[str] = set()
        for table in chosen_tables:
            pick = int(rng.integers(0, len(table.attributes)))
            attributes.add(table.attributes[pick].qualified_name)
        pool = [
            attribute.qualified_name
            for table in chosen_tables
            for attribute in table.attributes
            if attribute.qualified_name not in attributes
        ]
        remaining = min(num_refs - len(attributes), len(pool))
        if remaining > 0:
            extra = rng.choice(len(pool), size=remaining, replace=False)
            attributes.update(pool[int(index)] for index in extra)

        rows = {
            table.name: float(rng.integers(1, parameters.max_rows + 1))
            for table in chosen_tables
        }
        frequency = float(rng.integers(1, parameters.max_frequency + 1))
        return Query(
            name=name,
            kind=QueryKind.WRITE if is_update else QueryKind.READ,
            attributes=frozenset(attributes),
            rows=rows,
            frequency=frequency,
        )


def generate_instance(
    parameters: InstanceParameters, seed: int | None = None
) -> ProblemInstance:
    """Generate one random instance from ``parameters``."""
    return RandomInstanceGenerator(parameters, seed=seed).generate()
