"""The TPC-C v5 problem instance (Section 5.2 of the paper).

The full TPC-C 5.10.1 schema — 9 tables, 92 attributes — and the five
transactions, modelled with the paper's simplifying conventions:

* every query runs with frequency 1,
* every query accesses 1 row, except where the TPC-C specification
  aggregates or iterates over results, in which case 10 rows,
* every SQL UPDATE becomes two sub-queries: a read accessing the
  attributes the statement reads (WHERE columns and any right-hand-side
  columns other than self-references such as ``S_YTD = S_YTD + ?``,
  whose read was already issued by the transaction's SELECTs) and a
  write accessing only the attributes actually written,
* INSERTs and DELETEs write complete rows.

Attribute widths follow the TPC-C data types (integers 4 bytes,
timestamps/decimals 8, ``char(n)``/``varchar(n)`` n bytes).
"""

from __future__ import annotations

from functools import lru_cache

from repro.model.instance import ProblemInstance
from repro.model.schema import Schema, SchemaBuilder
from repro.model.workload import Query, Transaction, Workload, split_update

#: Row count the paper assigns to aggregate / iterated queries.
ITERATED_ROWS = 10.0


def tpcc_schema() -> Schema:
    """The 9-table, 92-attribute TPC-C v5 schema."""
    return (
        SchemaBuilder("tpcc")
        .table(
            "Warehouse",
            W_ID=4, W_NAME=10, W_STREET_1=20, W_STREET_2=20, W_CITY=20,
            W_STATE=2, W_ZIP=9, W_TAX=4, W_YTD=8,
        )
        .table(
            "District",
            D_ID=4, D_W_ID=4, D_NAME=10, D_STREET_1=20, D_STREET_2=20,
            D_CITY=20, D_STATE=2, D_ZIP=9, D_TAX=4, D_YTD=8, D_NEXT_O_ID=4,
        )
        .table(
            "Customer",
            C_ID=4, C_D_ID=4, C_W_ID=4, C_FIRST=16, C_MIDDLE=2, C_LAST=16,
            C_STREET_1=20, C_STREET_2=20, C_CITY=20, C_STATE=2, C_ZIP=9,
            C_PHONE=16, C_SINCE=8, C_CREDIT=2, C_CREDIT_LIM=8, C_DISCOUNT=4,
            C_BALANCE=8, C_YTD_PAYMENT=8, C_PAYMENT_CNT=4, C_DELIVERY_CNT=4,
            C_DATA=500,
        )
        .table(
            "History",
            H_C_ID=4, H_C_D_ID=4, H_C_W_ID=4, H_D_ID=4, H_W_ID=4,
            H_DATE=8, H_AMOUNT=8, H_DATA=24,
        )
        .table("NewOrder", NO_O_ID=4, NO_D_ID=4, NO_W_ID=4)
        .table(
            "Order",
            O_ID=4, O_D_ID=4, O_W_ID=4, O_C_ID=4, O_ENTRY_D=8,
            O_CARRIER_ID=4, O_OL_CNT=4, O_ALL_LOCAL=4,
        )
        .table(
            "OrderLine",
            OL_O_ID=4, OL_D_ID=4, OL_W_ID=4, OL_NUMBER=4, OL_I_ID=4,
            OL_SUPPLY_W_ID=4, OL_DELIVERY_D=8, OL_QUANTITY=4, OL_AMOUNT=8,
            OL_DIST_INFO=24,
        )
        .table("Item", I_ID=4, I_IM_ID=4, I_NAME=24, I_PRICE=4, I_DATA=50)
        .table(
            "Stock",
            S_I_ID=4, S_W_ID=4, S_QUANTITY=4,
            S_DIST_01=24, S_DIST_02=24, S_DIST_03=24, S_DIST_04=24,
            S_DIST_05=24, S_DIST_06=24, S_DIST_07=24, S_DIST_08=24,
            S_DIST_09=24, S_DIST_10=24,
            S_YTD=8, S_ORDER_CNT=4, S_REMOTE_CNT=4, S_DATA=50,
        )
        .build()
    )


def _new_order_transaction() -> Transaction:
    """TPC-C 2.4: the New-Order transaction."""
    queries: list[Query] = [
        Query.read("NewOrder.getWarehouseTax", ["Warehouse.W_ID", "Warehouse.W_TAX"]),
        Query.read(
            "NewOrder.getDistrict",
            ["District.D_W_ID", "District.D_ID", "District.D_TAX",
             "District.D_NEXT_O_ID"],
        ),
    ]
    # UPDATE DISTRICT SET D_NEXT_O_ID = D_NEXT_O_ID + 1 WHERE D_W_ID=? AND D_ID=?
    queries.extend(
        split_update(
            "NewOrder.incrementNextOrderId",
            read_attributes=["District.D_W_ID", "District.D_ID"],
            written_attributes=["District.D_NEXT_O_ID"],
        )
    )
    queries.append(
        Query.read(
            "NewOrder.getCustomer",
            ["Customer.C_W_ID", "Customer.C_D_ID", "Customer.C_ID",
             "Customer.C_DISCOUNT", "Customer.C_LAST", "Customer.C_CREDIT"],
        )
    )
    queries.append(
        Query.write(
            "NewOrder.insertOrder",
            ["Order.O_ID", "Order.O_D_ID", "Order.O_W_ID", "Order.O_C_ID",
             "Order.O_ENTRY_D", "Order.O_CARRIER_ID", "Order.O_OL_CNT",
             "Order.O_ALL_LOCAL"],
        )
    )
    queries.append(
        Query.write(
            "NewOrder.insertNewOrder",
            ["NewOrder.NO_O_ID", "NewOrder.NO_D_ID", "NewOrder.NO_W_ID"],
        )
    )
    # Per order line (~10 items; iterated -> 10 rows).
    queries.append(
        Query.read(
            "NewOrder.getItems",
            ["Item.I_ID", "Item.I_PRICE", "Item.I_NAME", "Item.I_DATA"],
            rows=ITERATED_ROWS,
        )
    )
    queries.append(
        Query.read(
            "NewOrder.getStock",
            ["Stock.S_I_ID", "Stock.S_W_ID", "Stock.S_QUANTITY", "Stock.S_DATA",
             "Stock.S_DIST_01", "Stock.S_DIST_02", "Stock.S_DIST_03",
             "Stock.S_DIST_04", "Stock.S_DIST_05", "Stock.S_DIST_06",
             "Stock.S_DIST_07", "Stock.S_DIST_08", "Stock.S_DIST_09",
             "Stock.S_DIST_10"],
            rows=ITERATED_ROWS,
        )
    )
    # UPDATE STOCK SET S_QUANTITY=?, S_YTD=S_YTD+?, S_ORDER_CNT=S_ORDER_CNT+1,
    # S_REMOTE_CNT=S_REMOTE_CNT+? WHERE S_I_ID=? AND S_W_ID=?
    queries.extend(
        split_update(
            "NewOrder.updateStock",
            read_attributes=["Stock.S_I_ID", "Stock.S_W_ID"],
            written_attributes=["Stock.S_QUANTITY", "Stock.S_YTD",
                                "Stock.S_ORDER_CNT", "Stock.S_REMOTE_CNT"],
            rows=ITERATED_ROWS,
        )
    )
    queries.append(
        Query.write(
            "NewOrder.insertOrderLine",
            ["OrderLine.OL_O_ID", "OrderLine.OL_D_ID", "OrderLine.OL_W_ID",
             "OrderLine.OL_NUMBER", "OrderLine.OL_I_ID",
             "OrderLine.OL_SUPPLY_W_ID", "OrderLine.OL_DELIVERY_D",
             "OrderLine.OL_QUANTITY", "OrderLine.OL_AMOUNT",
             "OrderLine.OL_DIST_INFO"],
            rows=ITERATED_ROWS,
        )
    )
    return Transaction("NewOrder", tuple(queries))


def _payment_transaction() -> Transaction:
    """TPC-C 2.5: the Payment transaction."""
    queries: list[Query] = []
    # UPDATE WAREHOUSE SET W_YTD = W_YTD + ? WHERE W_ID = ?
    queries.extend(
        split_update(
            "Payment.updateWarehouse",
            read_attributes=["Warehouse.W_ID"],
            written_attributes=["Warehouse.W_YTD"],
        )
    )
    queries.append(
        Query.read(
            "Payment.getWarehouse",
            ["Warehouse.W_ID", "Warehouse.W_NAME", "Warehouse.W_STREET_1",
             "Warehouse.W_STREET_2", "Warehouse.W_CITY", "Warehouse.W_STATE",
             "Warehouse.W_ZIP"],
        )
    )
    queries.extend(
        split_update(
            "Payment.updateDistrict",
            read_attributes=["District.D_W_ID", "District.D_ID"],
            written_attributes=["District.D_YTD"],
        )
    )
    queries.append(
        Query.read(
            "Payment.getDistrict",
            ["District.D_W_ID", "District.D_ID", "District.D_NAME",
             "District.D_STREET_1", "District.D_STREET_2", "District.D_CITY",
             "District.D_STATE", "District.D_ZIP"],
        )
    )
    # Customer selected by last name, sorted by C_FIRST: iterated.
    queries.append(
        Query.read(
            "Payment.getCustomerByLastName",
            ["Customer.C_W_ID", "Customer.C_D_ID", "Customer.C_LAST",
             "Customer.C_ID", "Customer.C_FIRST", "Customer.C_MIDDLE",
             "Customer.C_STREET_1", "Customer.C_STREET_2", "Customer.C_CITY",
             "Customer.C_STATE", "Customer.C_ZIP", "Customer.C_PHONE",
             "Customer.C_CREDIT", "Customer.C_CREDIT_LIM",
             "Customer.C_DISCOUNT", "Customer.C_BALANCE", "Customer.C_SINCE"],
            rows=ITERATED_ROWS,
        )
    )
    # Bad-credit branch reads C_DATA.
    queries.append(
        Query.read(
            "Payment.getCustomerData",
            ["Customer.C_W_ID", "Customer.C_D_ID", "Customer.C_ID",
             "Customer.C_DATA"],
        )
    )
    # UPDATE CUSTOMER SET C_BALANCE=?, C_YTD_PAYMENT=?, C_PAYMENT_CNT=?,
    # C_DATA=? WHERE C_W_ID=? AND C_D_ID=? AND C_ID=?
    queries.extend(
        split_update(
            "Payment.updateCustomer",
            read_attributes=["Customer.C_W_ID", "Customer.C_D_ID",
                             "Customer.C_ID"],
            written_attributes=["Customer.C_BALANCE", "Customer.C_YTD_PAYMENT",
                                "Customer.C_PAYMENT_CNT", "Customer.C_DATA"],
        )
    )
    queries.append(
        Query.write(
            "Payment.insertHistory",
            ["History.H_C_ID", "History.H_C_D_ID", "History.H_C_W_ID",
             "History.H_D_ID", "History.H_W_ID", "History.H_DATE",
             "History.H_AMOUNT", "History.H_DATA"],
        )
    )
    return Transaction("Payment", tuple(queries))


def _order_status_transaction() -> Transaction:
    """TPC-C 2.6: the Order-Status transaction."""
    return Transaction(
        "OrderStatus",
        (
            Query.read(
                "OrderStatus.getCustomerByLastName",
                ["Customer.C_W_ID", "Customer.C_D_ID", "Customer.C_LAST",
                 "Customer.C_ID", "Customer.C_FIRST", "Customer.C_MIDDLE",
                 "Customer.C_BALANCE"],
                rows=ITERATED_ROWS,
            ),
            Query.read(
                "OrderStatus.getLastOrder",
                ["Order.O_W_ID", "Order.O_D_ID", "Order.O_C_ID", "Order.O_ID",
                 "Order.O_ENTRY_D", "Order.O_CARRIER_ID"],
            ),
            Query.read(
                "OrderStatus.getOrderLines",
                ["OrderLine.OL_W_ID", "OrderLine.OL_D_ID", "OrderLine.OL_O_ID",
                 "OrderLine.OL_I_ID", "OrderLine.OL_SUPPLY_W_ID",
                 "OrderLine.OL_QUANTITY", "OrderLine.OL_AMOUNT",
                 "OrderLine.OL_DELIVERY_D"],
                rows=ITERATED_ROWS,
            ),
        ),
    )


def _delivery_transaction() -> Transaction:
    """TPC-C 2.7: the Delivery transaction (iterates over 10 districts)."""
    queries: list[Query] = [
        Query.read(
            "Delivery.getNewOrder",
            ["NewOrder.NO_W_ID", "NewOrder.NO_D_ID", "NewOrder.NO_O_ID"],
            rows=ITERATED_ROWS,
        ),
        # DELETE removes complete rows.
        Query.write(
            "Delivery.deleteNewOrder",
            ["NewOrder.NO_W_ID", "NewOrder.NO_D_ID", "NewOrder.NO_O_ID"],
            rows=ITERATED_ROWS,
        ),
        Query.read(
            "Delivery.getCustomerId",
            ["Order.O_ID", "Order.O_D_ID", "Order.O_W_ID", "Order.O_C_ID"],
            rows=ITERATED_ROWS,
        ),
    ]
    queries.extend(
        split_update(
            "Delivery.updateCarrier",
            read_attributes=["Order.O_ID", "Order.O_D_ID", "Order.O_W_ID"],
            written_attributes=["Order.O_CARRIER_ID"],
            rows=ITERATED_ROWS,
        )
    )
    queries.extend(
        split_update(
            "Delivery.updateDeliveryDate",
            read_attributes=["OrderLine.OL_O_ID", "OrderLine.OL_D_ID",
                             "OrderLine.OL_W_ID"],
            written_attributes=["OrderLine.OL_DELIVERY_D"],
            rows=ITERATED_ROWS,
        )
    )
    queries.append(
        Query.read(
            "Delivery.sumOrderAmount",
            ["OrderLine.OL_O_ID", "OrderLine.OL_D_ID", "OrderLine.OL_W_ID",
             "OrderLine.OL_AMOUNT"],
            rows=ITERATED_ROWS,
        )
    )
    queries.extend(
        split_update(
            "Delivery.updateCustomer",
            read_attributes=["Customer.C_ID", "Customer.C_D_ID",
                             "Customer.C_W_ID"],
            written_attributes=["Customer.C_BALANCE",
                                "Customer.C_DELIVERY_CNT"],
            rows=ITERATED_ROWS,
        )
    )
    return Transaction("Delivery", tuple(queries))


def _stock_level_transaction() -> Transaction:
    """TPC-C 2.8: the Stock-Level transaction (aggregate join)."""
    return Transaction(
        "StockLevel",
        (
            Query.read(
                "StockLevel.getNextOrderId",
                ["District.D_W_ID", "District.D_ID", "District.D_NEXT_O_ID"],
            ),
            Query.read(
                "StockLevel.countLowStock",
                ["OrderLine.OL_W_ID", "OrderLine.OL_D_ID", "OrderLine.OL_O_ID",
                 "OrderLine.OL_I_ID", "Stock.S_W_ID", "Stock.S_I_ID",
                 "Stock.S_QUANTITY"],
                rows=ITERATED_ROWS,
            ),
        ),
    )


def tpcc_workload() -> Workload:
    """The five TPC-C transactions."""
    return Workload(
        (
            _new_order_transaction(),
            _payment_transaction(),
            _order_status_transaction(),
            _delivery_transaction(),
            _stock_level_transaction(),
        ),
        name="tpcc-v5",
    )


@lru_cache(maxsize=1)
def tpcc_instance() -> ProblemInstance:
    """The full TPC-C v5 problem instance (|A| = 92, |T| = 5)."""
    return ProblemInstance(tpcc_schema(), tpcc_workload(), name="TPC-C v5")
