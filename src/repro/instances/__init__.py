"""Problem-instance sources: TPC-C, random generator, named library."""

from repro.instances.tpcc import tpcc_instance, tpcc_schema, tpcc_workload
from repro.instances.random_gen import (
    InstanceParameters,
    RandomInstanceGenerator,
    generate_instance,
)
from repro.instances.library import (
    TABLE1_DEFAULTS,
    TABLE2_INSTANCES,
    instance_catalog,
    named_instance,
)
from repro.instances.testbed import (
    TESTBED_INSTANCES,
    smallbank_instance,
    tatp_instance,
    voter_instance,
)

__all__ = [
    "TESTBED_INSTANCES",
    "tatp_instance",
    "smallbank_instance",
    "voter_instance",
    "tpcc_instance",
    "tpcc_schema",
    "tpcc_workload",
    "InstanceParameters",
    "RandomInstanceGenerator",
    "generate_instance",
    "TABLE1_DEFAULTS",
    "TABLE2_INSTANCES",
    "instance_catalog",
    "named_instance",
]
