"""An OLTP testbed: realistic schemas, workloads and statistics.

The paper's conclusion laments that "an official OLTP testbed — a
library containing realistic OLTP workloads, schemas and statistics"
does not exist. This module provides one: three widely used OLTP
benchmarks beyond TPC-C, modelled with the same conventions as
Section 5.2 (UPDATE split into read/write sub-queries, row counts from
the specifications, frequencies from the official transaction mixes).

* **TATP** — the Telecom Application Transaction Processing benchmark
  (Nokia/IBM): 4 tables, read-dominated (80% reads), tiny rows except
  the wide SUBSCRIBER table. Mix: GET_SUBSCRIBER_DATA 35%,
  GET_NEW_DESTINATION 10%, GET_ACCESS_DATA 35%, UPDATE_SUBSCRIBER_DATA
  2%, UPDATE_LOCATION 14%, INSERT/DELETE_CALL_FORWARDING 2% each.
* **SmallBank** (Alomari et al., ICDE 2008): 3 tables, 6 short
  transactions over checking/savings balances, update-heavy.
* **Voter** (the VoltDB benchmark): phone-in voting, one dominant
  insert-heavy transaction plus leaderboard reads.
"""

from __future__ import annotations

from functools import lru_cache

from repro.model.instance import ProblemInstance
from repro.model.schema import Schema, SchemaBuilder
from repro.model.workload import Query, Transaction, Workload, split_update


# ----------------------------------------------------------------------
# TATP
# ----------------------------------------------------------------------
def tatp_schema() -> Schema:
    """TATP: SUBSCRIBER (33 attrs, bit/hex/byte2 flag groups modelled as
    10+2 compact columns each to stay readable), ACCESS_INFO,
    SPECIAL_FACILITY and CALL_FORWARDING."""
    builder = SchemaBuilder("tatp")
    subscriber: dict[str, float] = {"S_ID": 4, "SUB_NBR": 15}
    for i in range(1, 11):
        subscriber[f"BIT_{i}"] = 1
        subscriber[f"HEX_{i}"] = 1
        subscriber[f"BYTE2_{i}"] = 2
    subscriber["MSC_LOCATION"] = 4
    subscriber["VLR_LOCATION"] = 4
    builder.table_from_widths("Subscriber", subscriber)
    builder.table(
        "AccessInfo",
        AI_S_ID=4, AI_TYPE=1, DATA1=1, DATA2=1, DATA3=3, DATA4=5,
    )
    builder.table(
        "SpecialFacility",
        SF_S_ID=4, SF_TYPE=1, IS_ACTIVE=1, ERROR_CNTRL=1, DATA_A=1, DATA_B=5,
    )
    builder.table(
        "CallForwarding",
        CF_S_ID=4, CF_SF_TYPE=1, START_TIME=1, END_TIME=1, NUMBERX=15,
    )
    return builder.build()


def tatp_workload() -> Workload:
    subscriber_attrs = [
        attribute.qualified_name
        for attribute in tatp_schema().table("Subscriber")
    ]
    transactions = [
        Transaction(
            "GetSubscriberData",
            (Query.read("GetSubscriberData.get", subscriber_attrs,
                        frequency=35.0),),
        ),
        Transaction(
            "GetNewDestination",
            (
                Query.read(
                    "GetNewDestination.join",
                    ["SpecialFacility.SF_S_ID", "SpecialFacility.SF_TYPE",
                     "SpecialFacility.IS_ACTIVE", "CallForwarding.CF_S_ID",
                     "CallForwarding.CF_SF_TYPE", "CallForwarding.START_TIME",
                     "CallForwarding.END_TIME", "CallForwarding.NUMBERX"],
                    rows={"SpecialFacility": 1.0, "CallForwarding": 2.0},
                    frequency=10.0,
                ),
            ),
        ),
        Transaction(
            "GetAccessData",
            (
                Query.read(
                    "GetAccessData.get",
                    ["AccessInfo.AI_S_ID", "AccessInfo.AI_TYPE",
                     "AccessInfo.DATA1", "AccessInfo.DATA2",
                     "AccessInfo.DATA3", "AccessInfo.DATA4"],
                    frequency=35.0,
                ),
            ),
        ),
        Transaction(
            "UpdateSubscriberData",
            (
                *split_update(
                    "UpdateSubscriberData.bit",
                    read_attributes=["Subscriber.S_ID"],
                    written_attributes=["Subscriber.BIT_1"],
                    frequency=2.0,
                ),
                *split_update(
                    "UpdateSubscriberData.sf",
                    read_attributes=["SpecialFacility.SF_S_ID",
                                     "SpecialFacility.SF_TYPE"],
                    written_attributes=["SpecialFacility.DATA_A"],
                    frequency=2.0,
                ),
            ),
        ),
        Transaction(
            "UpdateLocation",
            (
                *split_update(
                    "UpdateLocation.move",
                    read_attributes=["Subscriber.SUB_NBR"],
                    written_attributes=["Subscriber.VLR_LOCATION"],
                    frequency=14.0,
                ),
            ),
        ),
        Transaction(
            "InsertCallForwarding",
            (
                Query.read(
                    "InsertCallForwarding.lookup",
                    ["Subscriber.SUB_NBR", "Subscriber.S_ID",
                     "SpecialFacility.SF_S_ID", "SpecialFacility.SF_TYPE"],
                    frequency=2.0,
                ),
                Query.write(
                    "InsertCallForwarding.insert",
                    ["CallForwarding.CF_S_ID", "CallForwarding.CF_SF_TYPE",
                     "CallForwarding.START_TIME", "CallForwarding.END_TIME",
                     "CallForwarding.NUMBERX"],
                    frequency=2.0,
                ),
            ),
        ),
        Transaction(
            "DeleteCallForwarding",
            (
                Query.read(
                    "DeleteCallForwarding.lookup",
                    ["Subscriber.SUB_NBR", "Subscriber.S_ID"],
                    frequency=2.0,
                ),
                Query.write(
                    "DeleteCallForwarding.delete",
                    ["CallForwarding.CF_S_ID", "CallForwarding.CF_SF_TYPE",
                     "CallForwarding.START_TIME", "CallForwarding.END_TIME",
                     "CallForwarding.NUMBERX"],
                    frequency=2.0,
                ),
            ),
        ),
    ]
    return Workload(transactions, name="tatp")


@lru_cache(maxsize=1)
def tatp_instance() -> ProblemInstance:
    """The TATP benchmark (|A| = 54, |T| = 7, 80% read mix)."""
    return ProblemInstance(tatp_schema(), tatp_workload(), name="TATP")


# ----------------------------------------------------------------------
# SmallBank
# ----------------------------------------------------------------------
def smallbank_schema() -> Schema:
    return (
        SchemaBuilder("smallbank")
        .table("Accounts", CUSTID=8, NAME=64)
        .table("Savings", SAV_CUSTID=8, SAV_BAL=8)
        .table("Checking", CHK_CUSTID=8, CHK_BAL=8)
        .build()
    )


def smallbank_workload() -> Workload:
    account_lookup = ["Accounts.CUSTID", "Accounts.NAME"]
    transactions = [
        Transaction(
            "Balance",
            (
                Query.read("Balance.account", account_lookup, frequency=15.0),
                Query.read("Balance.savings",
                           ["Savings.SAV_CUSTID", "Savings.SAV_BAL"],
                           frequency=15.0),
                Query.read("Balance.checking",
                           ["Checking.CHK_CUSTID", "Checking.CHK_BAL"],
                           frequency=15.0),
            ),
        ),
        Transaction(
            "DepositChecking",
            (
                Query.read("DepositChecking.account", account_lookup,
                           frequency=15.0),
                *split_update(
                    "DepositChecking.deposit",
                    read_attributes=["Checking.CHK_CUSTID"],
                    written_attributes=["Checking.CHK_BAL"],
                    frequency=15.0,
                ),
            ),
        ),
        Transaction(
            "TransactSavings",
            (
                Query.read("TransactSavings.account", account_lookup,
                           frequency=15.0),
                *split_update(
                    "TransactSavings.update",
                    read_attributes=["Savings.SAV_CUSTID", "Savings.SAV_BAL"],
                    written_attributes=["Savings.SAV_BAL"],
                    frequency=15.0,
                ),
            ),
        ),
        Transaction(
            "Amalgamate",
            (
                Query.read("Amalgamate.accounts", account_lookup,
                           rows=2.0, frequency=15.0),
                Query.read("Amalgamate.readBalances",
                           ["Savings.SAV_CUSTID", "Savings.SAV_BAL",
                            "Checking.CHK_CUSTID", "Checking.CHK_BAL"],
                           frequency=15.0),
                Query.write("Amalgamate.zeroSavings", ["Savings.SAV_BAL"],
                            frequency=15.0),
                Query.write("Amalgamate.creditChecking", ["Checking.CHK_BAL"],
                            frequency=15.0),
            ),
        ),
        Transaction(
            "WriteCheck",
            (
                Query.read("WriteCheck.account", account_lookup,
                           frequency=25.0),
                Query.read("WriteCheck.balances",
                           ["Savings.SAV_CUSTID", "Savings.SAV_BAL",
                            "Checking.CHK_CUSTID", "Checking.CHK_BAL"],
                           frequency=25.0),
                Query.write("WriteCheck.debit", ["Checking.CHK_BAL"],
                            frequency=25.0),
            ),
        ),
        Transaction(
            "SendPayment",
            (
                Query.read("SendPayment.accounts", account_lookup,
                           rows=2.0, frequency=15.0),
                *split_update(
                    "SendPayment.move",
                    read_attributes=["Checking.CHK_CUSTID",
                                     "Checking.CHK_BAL"],
                    written_attributes=["Checking.CHK_BAL"],
                    rows=2.0,
                    frequency=15.0,
                ),
            ),
        ),
    ]
    return Workload(transactions, name="smallbank")


@lru_cache(maxsize=1)
def smallbank_instance() -> ProblemInstance:
    """The SmallBank benchmark (|A| = 6, |T| = 6, update-heavy)."""
    return ProblemInstance(
        smallbank_schema(), smallbank_workload(), name="SmallBank"
    )


# ----------------------------------------------------------------------
# Voter
# ----------------------------------------------------------------------
def voter_schema() -> Schema:
    return (
        SchemaBuilder("voter")
        .table(
            "Contestants",
            CONTESTANT_NUMBER=4, CONTESTANT_NAME=50,
        )
        .table(
            "AreaCodeState",
            AREA_CODE=2, STATE=2,
        )
        .table(
            "Votes",
            VOTE_ID=8, PHONE_NUMBER=8, V_STATE=2,
            V_CONTESTANT_NUMBER=4, CREATED=8,
        )
        .build()
    )


def voter_workload() -> Workload:
    transactions = [
        Transaction(
            "Vote",
            (
                Query.read("Vote.validateContestant",
                           ["Contestants.CONTESTANT_NUMBER"], frequency=90.0),
                Query.read("Vote.lookupState",
                           ["AreaCodeState.AREA_CODE", "AreaCodeState.STATE"],
                           frequency=90.0),
                Query.read("Vote.checkVoteCount",
                           ["Votes.PHONE_NUMBER"], frequency=90.0),
                Query.write("Vote.insert",
                            ["Votes.VOTE_ID", "Votes.PHONE_NUMBER",
                             "Votes.V_STATE", "Votes.V_CONTESTANT_NUMBER",
                             "Votes.CREATED"],
                            frequency=90.0),
            ),
        ),
        Transaction(
            "Leaderboard",
            (
                Query.read("Leaderboard.tally",
                           ["Votes.V_CONTESTANT_NUMBER"],
                           rows=100.0, frequency=9.0),
                Query.read("Leaderboard.names",
                           ["Contestants.CONTESTANT_NUMBER",
                            "Contestants.CONTESTANT_NAME"],
                           rows=6.0, frequency=9.0),
            ),
        ),
        Transaction(
            "StateBreakdown",
            (
                Query.read("StateBreakdown.tally",
                           ["Votes.V_STATE", "Votes.V_CONTESTANT_NUMBER"],
                           rows=100.0, frequency=1.0),
            ),
        ),
    ]
    return Workload(transactions, name="voter")


@lru_cache(maxsize=1)
def voter_instance() -> ProblemInstance:
    """The Voter benchmark (|A| = 9, |T| = 3, insert-dominated)."""
    return ProblemInstance(voter_schema(), voter_workload(), name="Voter")


#: All testbed instances by name (extends the paper's wished-for library).
TESTBED_INSTANCES = {
    "tatp": tatp_instance,
    "smallbank": smallbank_instance,
    "voter": voter_instance,
}
