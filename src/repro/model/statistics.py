"""Descriptive statistics of problem instances.

Used by the benchmark harness to print the instance columns of the
paper's tables (|A|, |T|, query/update counts, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.instance import ProblemInstance


@dataclass(frozen=True)
class InstanceStatistics:
    """Summary counts of a problem instance."""

    name: str
    num_tables: int
    num_attributes: int
    num_transactions: int
    num_queries: int
    num_read_queries: int
    num_write_queries: int
    total_row_width: float
    mean_attributes_per_table: float
    mean_queries_per_transaction: float
    update_fraction: float

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "tables": self.num_tables,
            "|A|": self.num_attributes,
            "|T|": self.num_transactions,
            "queries": self.num_queries,
            "reads": self.num_read_queries,
            "writes": self.num_write_queries,
            "row width": self.total_row_width,
            "attrs/table": round(self.mean_attributes_per_table, 2),
            "queries/txn": round(self.mean_queries_per_transaction, 2),
            "update %": round(100.0 * self.update_fraction, 1),
        }


def describe_instance(instance: ProblemInstance) -> InstanceStatistics:
    """Compute :class:`InstanceStatistics` for ``instance``."""
    queries = instance.queries
    writes = sum(1 for query in queries if query.is_write)
    num_tables = len(instance.schema)
    return InstanceStatistics(
        name=instance.name,
        num_tables=num_tables,
        num_attributes=instance.num_attributes,
        num_transactions=instance.num_transactions,
        num_queries=len(queries),
        num_read_queries=len(queries) - writes,
        num_write_queries=writes,
        total_row_width=instance.schema.total_width,
        mean_attributes_per_table=instance.num_attributes / num_tables,
        mean_queries_per_transaction=len(queries) / instance.num_transactions,
        update_fraction=writes / len(queries) if queries else 0.0,
    )
