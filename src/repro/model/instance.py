"""A problem instance: schema + workload + canonical index maps.

The instance fixes the canonical ordering of attributes, transactions
and queries that every numpy array in the cost model and the solvers
refers to. Index 0..|A|-1 for attributes, 0..|T|-1 for transactions and
0..|Q|-1 for queries.
"""

from __future__ import annotations

from functools import cached_property

from repro.model.schema import Attribute, Schema
from repro.model.workload import Query, Transaction, Workload


class ProblemInstance:
    """Schema and workload bundled with canonical index maps.

    Parameters
    ----------
    schema:
        The database schema.
    workload:
        The transaction workload; validated against the schema.
    name:
        Human-readable instance name (used in benchmark tables).
    """

    def __init__(self, schema: Schema, workload: Workload, name: str | None = None):
        workload.validate_against(schema)
        self.schema = schema
        self.workload = workload
        self.name = name or f"{schema.name}/{workload.name}"

    # ------------------------------------------------------------------
    # Canonical orderings
    # ------------------------------------------------------------------
    @cached_property
    def attributes(self) -> tuple[Attribute, ...]:
        """All attributes in canonical order (index = position)."""
        return self.schema.attributes

    @cached_property
    def transactions(self) -> tuple[Transaction, ...]:
        return self.workload.transactions

    @cached_property
    def queries(self) -> tuple[Query, ...]:
        return self.workload.queries

    @cached_property
    def attribute_index(self) -> dict[str, int]:
        """Map qualified attribute name -> canonical index."""
        return {
            attribute.qualified_name: index
            for index, attribute in enumerate(self.attributes)
        }

    @cached_property
    def transaction_index(self) -> dict[str, int]:
        return {
            transaction.name: index
            for index, transaction in enumerate(self.transactions)
        }

    @cached_property
    def query_index(self) -> dict[str, int]:
        return {query.name: index for index, query in enumerate(self.queries)}

    @cached_property
    def query_transaction(self) -> tuple[int, ...]:
        """For each query index, the index of its owning transaction."""
        owner: list[int] = []
        for t_index, transaction in enumerate(self.transactions):
            owner.extend([t_index] * len(transaction))
        return tuple(owner)

    @cached_property
    def table_attributes(self) -> dict[str, tuple[int, ...]]:
        """Map table name -> canonical indices of its attributes."""
        result: dict[str, list[int]] = {table.name: [] for table in self.schema.tables}
        for index, attribute in enumerate(self.attributes):
            result[attribute.table].append(index)
        return {table: tuple(indices) for table, indices in result.items()}

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_attributes(self) -> int:
        return len(self.attributes)

    @property
    def num_transactions(self) -> int:
        return len(self.transactions)

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def attribute_widths(self) -> list[float]:
        """Widths ``w_a`` in canonical attribute order."""
        return [attribute.width for attribute in self.attributes]

    def __repr__(self) -> str:
        return (
            f"ProblemInstance({self.name!r}, |A|={self.num_attributes}, "
            f"|T|={self.num_transactions}, |Q|={self.num_queries})"
        )
