"""Compressed-workload representations: super-transactions + lifting.

Realistic OLTP traces contain many transactions that are access-identical
and differ only in frequency.  The compression layer
(:mod:`repro.reduction.compress`) clusters them into weighted
*super-transactions*; this module holds the two value types the rest of
the pipeline passes around:

* :class:`LiftingMap` — the invertible mapping between original
  transaction indices and super-transaction indices.  Lifting a
  compressed placement fans each super-transaction's site row out to its
  members; compressing a placement keeps the first member's row per
  group.
* :class:`CompressedInstance` — the compressed
  :class:`~repro.model.instance.ProblemInstance` bundled with its
  original, the lifting map, the tier that produced it and the computed
  objective-error bound.

Both are JSON round-trippable (``to_dict``/``from_dict``), like every
other value in :mod:`repro.model`, so a compressed view can be queued,
shipped and replayed exactly.

The attribute side is untouched by workload compression: the compressed
instance shares the original schema, so attribute placements ``y``
transfer between the views verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Mapping

import numpy as np

from repro.exceptions import InstanceError
from repro.model.instance import ProblemInstance
from repro.model.serialize import instance_from_dict, instance_to_dict

#: Version stamp of the compressed-instance JSON document.
COMPRESSED_FORMAT_VERSION = 1

#: The recognised compression tiers.
TIER_LOSSLESS = "lossless"
TIER_LOSSY = "lossy"
COMPRESSION_TIERS = (TIER_LOSSLESS, TIER_LOSSY)


@dataclass(frozen=True)
class LiftingMap:
    """Original-transaction ↔ super-transaction index mapping.

    ``groups[g]`` lists the original transaction indices merged into
    super-transaction ``g``, in canonical (ascending) order; groups are
    ordered by their first member, matching the compressed instance's
    canonical transaction order.
    """

    groups: tuple[tuple[int, ...], ...]
    num_original_transactions: int

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for members in self.groups:
            if not members:
                raise InstanceError("lifting map contains an empty group")
            seen.update(members)
        expected = set(range(self.num_original_transactions))
        if seen != expected:
            raise InstanceError(
                f"lifting map covers {len(seen)} of "
                f"{self.num_original_transactions} original transactions"
            )

    @property
    def num_super_transactions(self) -> int:
        return len(self.groups)

    @cached_property
    def super_of(self) -> np.ndarray:
        """Super-transaction index per original transaction (|T|,)."""
        owner = np.empty(self.num_original_transactions, dtype=np.intp)
        for g_index, members in enumerate(self.groups):
            for member in members:
                owner[member] = g_index
        return owner

    def lift_x(self, x_compressed: np.ndarray) -> np.ndarray:
        """Fan a compressed placement ``(|T_c|, |S|)`` out to the
        original transactions: every member takes its super's site."""
        x_compressed = np.asarray(x_compressed)
        if x_compressed.shape[0] != self.num_super_transactions:
            raise InstanceError(
                f"compressed placement has {x_compressed.shape[0]} rows, "
                f"expected {self.num_super_transactions} super-transactions"
            )
        return x_compressed[self.super_of]

    def compress_x(self, x_original: np.ndarray) -> np.ndarray:
        """Restrict an original placement to one row per group (the
        first member's); the left inverse of :meth:`lift_x`."""
        x_original = np.asarray(x_original)
        if x_original.shape[0] != self.num_original_transactions:
            raise InstanceError(
                f"original placement has {x_original.shape[0]} rows, "
                f"expected {self.num_original_transactions} transactions"
            )
        representatives = np.asarray(
            [members[0] for members in self.groups], dtype=np.intp
        )
        return x_original[representatives]

    def to_dict(self) -> dict[str, Any]:
        return {
            "groups": [list(members) for members in self.groups],
            "num_original_transactions": self.num_original_transactions,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LiftingMap":
        try:
            return cls(
                groups=tuple(
                    tuple(int(member) for member in members)
                    for members in payload["groups"]
                ),
                num_original_transactions=int(
                    payload["num_original_transactions"]
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise InstanceError(
                f"malformed lifting-map payload: {error}"
            ) from error


@dataclass
class CompressedInstance:
    """A compressed problem instance plus everything needed to lift.

    Attributes
    ----------
    original:
        The uncompressed instance.
    compressed:
        The instance whose transactions are the super-transactions
        (shares the original schema, so ``y`` placements transfer
        verbatim).
    lifting:
        The transaction index mapping between the two views.
    tier:
        ``"lossless"`` (bit-identical signature merges, summed
        frequencies) or ``"lossy"`` (near-duplicate merges under a
        tolerance).
    tolerance:
        The caller-set lossy tolerance (0.0 for the lossless tier).
    objective_error_bound:
        A sound upper bound on the blended-objective (6) degradation the
        merges can cause relative to releasing every merged transaction
        to its own best site.  Exactly ``0.0`` for the lossless tier
        under pure cost minimisation (``lambda = 1``).
    """

    original: ProblemInstance
    compressed: ProblemInstance
    lifting: LiftingMap
    tier: str = TIER_LOSSLESS
    tolerance: float = 0.0
    objective_error_bound: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tier not in COMPRESSION_TIERS:
            raise InstanceError(
                f"unknown compression tier {self.tier!r}; "
                f"known: {', '.join(COMPRESSION_TIERS)}"
            )
        if self.lifting.num_original_transactions != self.original.num_transactions:
            raise InstanceError(
                "lifting map does not cover the original workload"
            )
        if self.lifting.num_super_transactions != self.compressed.num_transactions:
            raise InstanceError(
                "lifting map does not match the compressed workload"
            )

    @property
    def num_original_transactions(self) -> int:
        return self.original.num_transactions

    @property
    def num_super_transactions(self) -> int:
        return self.compressed.num_transactions

    @property
    def compression_ratio(self) -> float:
        """``|T| / |T_c|`` — higher is a stronger compression."""
        return self.num_original_transactions / self.num_super_transactions

    @property
    def query_ratio(self) -> float:
        """``|Q| / |Q_c|`` of the two views."""
        return self.original.num_queries / self.compressed.num_queries

    @property
    def is_identity(self) -> bool:
        """True when nothing merged (every group is a singleton)."""
        return self.num_super_transactions == self.num_original_transactions

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dictionary (exact inverse of
        :meth:`from_dict`)."""
        return {
            "format_version": COMPRESSED_FORMAT_VERSION,
            "tier": self.tier,
            "tolerance": self.tolerance,
            "objective_error_bound": self.objective_error_bound,
            "original": instance_to_dict(self.original),
            "compressed": instance_to_dict(self.compressed),
            "lifting": self.lifting.to_dict(),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CompressedInstance":
        version = payload.get("format_version")
        if version != COMPRESSED_FORMAT_VERSION:
            raise InstanceError(
                f"unsupported compressed-instance format version {version!r} "
                f"(expected {COMPRESSED_FORMAT_VERSION})"
            )
        try:
            return cls(
                original=instance_from_dict(payload["original"]),
                compressed=instance_from_dict(payload["compressed"]),
                lifting=LiftingMap.from_dict(payload["lifting"]),
                tier=payload.get("tier", TIER_LOSSLESS),
                tolerance=float(payload.get("tolerance", 0.0)),
                objective_error_bound=float(
                    payload.get("objective_error_bound", 0.0)
                ),
                metadata=dict(payload.get("metadata") or {}),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise InstanceError(
                f"malformed compressed-instance payload: {error}"
            ) from error

    def __repr__(self) -> str:
        return (
            f"CompressedInstance({self.tier}, "
            f"|T|={self.num_original_transactions} -> "
            f"{self.num_super_transactions} "
            f"({self.compression_ratio:.1f}x), "
            f"bound={self.objective_error_bound:.6g})"
        )
