"""Schema, workload and problem-instance data model.

The model mirrors the paper's inputs: a relational schema (tables with
attributes, each attribute has an average width ``w_a``), and a workload
of transactions, each a sequence of queries with statistics (frequency
``f_q`` and per-table row counts ``n_{a,q}``).
"""

from repro.model.schema import Attribute, Table, Schema, SchemaBuilder
from repro.model.workload import Query, QueryKind, Transaction, Workload, split_update
from repro.model.instance import ProblemInstance
from repro.model.serialize import (
    instance_to_dict,
    instance_from_dict,
    dump_instance,
    load_instance,
)
from repro.model.statistics import InstanceStatistics, describe_instance
from repro.model.compressed import (
    COMPRESSION_TIERS,
    TIER_LOSSLESS,
    TIER_LOSSY,
    CompressedInstance,
    LiftingMap,
)

__all__ = [
    "Attribute",
    "Table",
    "Schema",
    "SchemaBuilder",
    "Query",
    "QueryKind",
    "Transaction",
    "Workload",
    "split_update",
    "ProblemInstance",
    "instance_to_dict",
    "instance_from_dict",
    "dump_instance",
    "load_instance",
    "InstanceStatistics",
    "describe_instance",
    "CompressedInstance",
    "LiftingMap",
    "COMPRESSION_TIERS",
    "TIER_LOSSLESS",
    "TIER_LOSSY",
]
