"""Workload model: queries, transactions and the workload container.

Each query carries the statistics the paper's cost model needs:

* ``kind`` — read or write (the indicator ``delta_q``),
* ``attributes`` — the attributes the query itself accesses (``alpha``),
* ``rows`` — per-table average row count (``n_{a,q}`` for every
  attribute ``a`` of that table),
* ``frequency`` — ``f_q``.

The set of *tables* a query touches (which drives ``beta``) is derived
from the accessed attributes, optionally widened via ``extra_tables``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.exceptions import WorkloadError
from repro.model.schema import Schema


class QueryKind(enum.Enum):
    """Whether a query reads or writes (the paper's ``delta_q``)."""

    READ = "read"
    WRITE = "write"


DEFAULT_ROWS = 1.0


@dataclass(frozen=True)
class Query:
    """A single query template with its runtime statistics.

    Parameters
    ----------
    name:
        Identifier, unique within the workload.
    kind:
        :attr:`QueryKind.READ` or :attr:`QueryKind.WRITE`.
    attributes:
        Qualified names of attributes the query accesses (``alpha``).
        For writes these are the attributes actually *written*.
    rows:
        Mapping from table name to the average number of rows retrieved
        from / written to that table (``n_{a,q}``). Tables touched but
        absent from the mapping default to ``1.0``.
    frequency:
        Relative execution frequency ``f_q`` (> 0).
    extra_tables:
        Tables the query touches without the attribute set showing it
        (rare; used when an access pattern scans a table fraction whose
        attributes are not in ``attributes``).
    """

    name: str
    kind: QueryKind
    attributes: frozenset[str]
    rows: Mapping[str, float] = field(default_factory=dict)
    frequency: float = 1.0
    extra_tables: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("query name must be non-empty")
        if not self.attributes and not self.extra_tables:
            raise WorkloadError(f"query {self.name!r} accesses no attributes")
        if self.frequency <= 0:
            raise WorkloadError(
                f"query {self.name!r} must have positive frequency, "
                f"got {self.frequency!r}"
            )
        for qualified in self.attributes:
            if "." not in qualified:
                raise WorkloadError(
                    f"query {self.name!r}: attribute {qualified!r} must be "
                    f"qualified as 'Table.attribute'"
                )
        for table, count in self.rows.items():
            if count <= 0:
                raise WorkloadError(
                    f"query {self.name!r}: row count for table {table!r} must "
                    f"be positive, got {count!r}"
                )
        # Normalise to frozen containers so Query is safely hashable.
        object.__setattr__(self, "attributes", frozenset(self.attributes))
        object.__setattr__(self, "extra_tables", frozenset(self.extra_tables))
        object.__setattr__(self, "rows", dict(self.rows))

    @property
    def is_write(self) -> bool:
        """The paper's ``delta_q`` indicator."""
        return self.kind is QueryKind.WRITE

    @property
    def tables(self) -> frozenset[str]:
        """All tables this query touches (drives ``beta_{a,q}``)."""
        derived = {qualified.split(".", 1)[0] for qualified in self.attributes}
        return frozenset(derived | set(self.extra_tables))

    def rows_for(self, table: str) -> float:
        """``n_{a,q}`` for attributes of ``table`` (default 1.0)."""
        return float(self.rows.get(table, DEFAULT_ROWS))

    @staticmethod
    def read(
        name: str,
        attributes: Iterable[str],
        rows: Mapping[str, float] | float | None = None,
        frequency: float = 1.0,
    ) -> "Query":
        """Convenience constructor for a read query.

        ``rows`` may be a single number, applied to every touched table.
        """
        return Query(
            name=name,
            kind=QueryKind.READ,
            attributes=frozenset(attributes),
            rows=_normalise_rows(attributes, rows),
            frequency=frequency,
        )

    @staticmethod
    def write(
        name: str,
        attributes: Iterable[str],
        rows: Mapping[str, float] | float | None = None,
        frequency: float = 1.0,
    ) -> "Query":
        """Convenience constructor for a write query."""
        return Query(
            name=name,
            kind=QueryKind.WRITE,
            attributes=frozenset(attributes),
            rows=_normalise_rows(attributes, rows),
            frequency=frequency,
        )


def _normalise_rows(
    attributes: Iterable[str], rows: Mapping[str, float] | float | None
) -> dict[str, float]:
    if rows is None:
        return {}
    if isinstance(rows, Mapping):
        return dict(rows)
    tables = {qualified.split(".", 1)[0] for qualified in attributes}
    return {table: float(rows) for table in tables}


def split_update(
    name: str,
    read_attributes: Iterable[str],
    written_attributes: Iterable[str],
    rows: Mapping[str, float] | float | None = None,
    frequency: float = 1.0,
) -> tuple[Query, ...]:
    """Model an SQL UPDATE per Section 5.2 of the paper.

    An UPDATE is split into a read sub-query accessing the attributes
    the statement *reads* (WHERE predicates and right-hand-side columns
    other than pure self-references like ``ytd = ytd + ?``) and a write
    sub-query accessing only the attributes actually written (whose new
    values must be shipped to every replica).

    Written attributes deliberately do NOT force read co-location: the
    paper's Table 4 places write-only attributes (``S_YTD``,
    ``C_PAYMENT_CNT``, ...) away from their updating transaction's site,
    which is only feasible if the read sub-query excludes them.

    Returns ``(read_query, write_query)``, or just ``(write_query,)``
    when the update reads nothing (no WHERE clause, self-references
    only).
    """
    read_attrs = frozenset(read_attributes)
    write_attrs = frozenset(written_attributes)
    if not write_attrs:
        raise WorkloadError(f"update {name!r} writes no attributes")
    write_query = Query.write(f"{name}:write", write_attrs, rows=rows, frequency=frequency)
    if not read_attrs:
        return (write_query,)
    read_query = Query.read(f"{name}:read", read_attrs, rows=rows, frequency=frequency)
    return read_query, write_query


@dataclass(frozen=True)
class Transaction:
    """A named sequence of queries executed as a unit (the paper's ``t``)."""

    name: str
    queries: tuple[Query, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("transaction name must be non-empty")
        if not self.queries:
            raise WorkloadError(f"transaction {self.name!r} has no queries")
        object.__setattr__(self, "queries", tuple(self.queries))

    @property
    def read_attributes(self) -> frozenset[str]:
        """Attributes read by any query of the transaction (``phi_{a,t}``)."""
        read: set[str] = set()
        for query in self.queries:
            if not query.is_write:
                read |= query.attributes
        return frozenset(read)

    @property
    def written_attributes(self) -> frozenset[str]:
        written: set[str] = set()
        for query in self.queries:
            if query.is_write:
                written |= query.attributes
        return frozenset(written)

    @property
    def tables(self) -> frozenset[str]:
        tables: set[str] = set()
        for query in self.queries:
            tables |= query.tables
        return frozenset(tables)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)


class Workload:
    """All transactions of a problem instance.

    Every query belongs to exactly one transaction (the paper's
    ``gamma_{q,t}`` is a function of ``q``); query names must therefore
    be globally unique.
    """

    def __init__(self, transactions: Iterable[Transaction], name: str = "workload"):
        self.name = name
        self._transactions: tuple[Transaction, ...] = tuple(transactions)
        if not self._transactions:
            raise WorkloadError("workload must contain at least one transaction")
        seen_transactions: set[str] = set()
        seen_queries: dict[str, str] = {}
        for transaction in self._transactions:
            if transaction.name in seen_transactions:
                raise WorkloadError(f"duplicate transaction {transaction.name!r}")
            seen_transactions.add(transaction.name)
            for query in transaction:
                if query.name in seen_queries:
                    raise WorkloadError(
                        f"query {query.name!r} appears in both "
                        f"{seen_queries[query.name]!r} and {transaction.name!r}; "
                        f"query names must be unique across the workload"
                    )
                seen_queries[query.name] = transaction.name

    @property
    def transactions(self) -> tuple[Transaction, ...]:
        return self._transactions

    @property
    def queries(self) -> tuple[Query, ...]:
        """All queries in canonical (transaction, position) order."""
        return tuple(query for transaction in self._transactions for query in transaction)

    def transaction(self, name: str) -> Transaction:
        for transaction in self._transactions:
            if transaction.name == name:
                return transaction
        raise WorkloadError(f"workload has no transaction {name!r}")

    def transaction_of(self, query_name: str) -> Transaction:
        """Return the transaction owning ``query_name``."""
        for transaction in self._transactions:
            for query in transaction:
                if query.name == query_name:
                    return transaction
        raise WorkloadError(f"workload has no query {query_name!r}")

    def validate_against(self, schema: Schema) -> None:
        """Check that every referenced attribute/table exists in ``schema``."""
        for transaction in self._transactions:
            for query in transaction:
                for qualified in query.attributes:
                    if not schema.has_attribute(qualified):
                        raise WorkloadError(
                            f"query {query.name!r} references unknown attribute "
                            f"{qualified!r}"
                        )
                for table in query.extra_tables:
                    if not schema.has_table(table):
                        raise WorkloadError(
                            f"query {query.name!r} references unknown table {table!r}"
                        )
                for table in query.rows:
                    if not schema.has_table(table):
                        raise WorkloadError(
                            f"query {query.name!r} has row statistics for unknown "
                            f"table {table!r}"
                        )

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)

    def __repr__(self) -> str:
        return (
            f"Workload({self.name!r}, transactions={len(self)}, "
            f"queries={len(self.queries)})"
        )
