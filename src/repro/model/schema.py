"""Relational schema: attributes, tables and the schema container.

Attributes are globally identified by their *qualified name*
``"Table.attribute"``; the vertical-partitioning problem distributes
these qualified attributes (the paper's set ``A``) over sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.exceptions import SchemaError


@dataclass(frozen=True)
class Attribute:
    """A single column of a table.

    Parameters
    ----------
    table:
        Name of the owning table.
    name:
        Column name, unique within the table.
    width:
        Average width ``w_a`` in bytes; must be positive.
    """

    table: str
    name: str
    width: float

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if not self.table:
            raise SchemaError("attribute table must be non-empty")
        if self.width <= 0:
            raise SchemaError(
                f"attribute {self.table}.{self.name} must have positive width, "
                f"got {self.width!r}"
            )

    @property
    def qualified_name(self) -> str:
        """The globally unique ``Table.attribute`` identifier."""
        return f"{self.table}.{self.name}"

    def __str__(self) -> str:
        return self.qualified_name


@dataclass(frozen=True)
class Table:
    """A relational table: an ordered collection of attributes."""

    name: str
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        if not self.attributes:
            raise SchemaError(f"table {self.name!r} must have at least one attribute")
        seen: set[str] = set()
        for attribute in self.attributes:
            if attribute.table != self.name:
                raise SchemaError(
                    f"attribute {attribute.qualified_name!r} does not belong to "
                    f"table {self.name!r}"
                )
            if attribute.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attribute.name!r} in table {self.name!r}"
                )
            seen.add(attribute.name)

    @property
    def row_width(self) -> float:
        """Total width of a full (unpartitioned) row of this table."""
        return sum(attribute.width for attribute in self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called ``name``.

        Raises :class:`SchemaError` if no such attribute exists.
        """
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"table {self.name!r} has no attribute {name!r}")

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)


class Schema:
    """A database schema: an ordered set of tables.

    The ordering of tables (and of attributes within a table) is
    significant: it defines the canonical index of each attribute in the
    numpy arrays used by the cost model.
    """

    def __init__(self, tables: Iterable[Table], name: str = "schema"):
        self.name = name
        self._tables: dict[str, Table] = {}
        for table in tables:
            if table.name in self._tables:
                raise SchemaError(f"duplicate table {table.name!r} in schema")
            self._tables[table.name] = table
        if not self._tables:
            raise SchemaError("schema must contain at least one table")
        self._attributes: tuple[Attribute, ...] = tuple(
            attribute for table in self._tables.values() for attribute in table
        )
        self._by_qualified: dict[str, Attribute] = {
            attribute.qualified_name: attribute for attribute in self._attributes
        }

    @property
    def tables(self) -> tuple[Table, ...]:
        return tuple(self._tables.values())

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """All attributes of all tables, in canonical order."""
        return self._attributes

    def table(self, name: str) -> Table:
        """Return the table called ``name`` (raises :class:`SchemaError`)."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"schema has no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def attribute(self, qualified_name: str) -> Attribute:
        """Look up an attribute by its ``Table.attribute`` name."""
        try:
            return self._by_qualified[qualified_name]
        except KeyError:
            raise SchemaError(f"schema has no attribute {qualified_name!r}") from None

    def has_attribute(self, qualified_name: str) -> bool:
        return qualified_name in self._by_qualified

    def resolve(self, name: str, tables: Iterable[str] | None = None) -> Attribute:
        """Resolve a possibly unqualified attribute name.

        If ``name`` contains a dot it is treated as qualified; otherwise
        every table in ``tables`` (or the whole schema) is searched and
        the name must match exactly one attribute.
        """
        if "." in name:
            return self.attribute(name)
        search = [self.table(t) for t in tables] if tables is not None else self.tables
        matches = [
            table.attribute(name)
            for table in search
            if name in table.attribute_names
        ]
        if not matches:
            raise SchemaError(f"no table contains attribute {name!r}")
        if len(matches) > 1:
            owners = ", ".join(match.table for match in matches)
            raise SchemaError(f"attribute {name!r} is ambiguous (tables: {owners})")
        return matches[0]

    @property
    def total_width(self) -> float:
        return sum(table.row_width for table in self.tables)

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return (
            f"Schema({self.name!r}, tables={len(self)}, "
            f"attributes={len(self._attributes)})"
        )


class SchemaBuilder:
    """Fluent helper for constructing schemas in examples and tests.

    >>> schema = (SchemaBuilder("shop")
    ...           .table("Customer", id=4, name=16, address=40)
    ...           .table("Orders", id=4, customer_id=4, total=8)
    ...           .build())
    >>> len(schema.attributes)
    6
    """

    def __init__(self, name: str = "schema"):
        self._name = name
        self._tables: list[Table] = []

    def table(self, name: str, /, **widths: float) -> "SchemaBuilder":
        """Add a table whose attributes are given as ``name=width`` pairs."""
        if not widths:
            raise SchemaError(f"table {name!r} needs at least one attribute")
        attributes = tuple(
            Attribute(table=name, name=attr, width=width)
            for attr, width in widths.items()
        )
        self._tables.append(Table(name=name, attributes=attributes))
        return self

    def table_from_widths(self, name: str, widths: Mapping[str, float]) -> "SchemaBuilder":
        """Like :meth:`table` but takes an explicit mapping (for generated names)."""
        return self.table(name, **dict(widths))

    def build(self) -> Schema:
        return Schema(self._tables, name=self._name)
