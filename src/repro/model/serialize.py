"""JSON (de)serialisation of problem instances.

The on-disk format is a plain JSON document so instances can be shared,
versioned and diffed. ``instance_to_dict``/``instance_from_dict`` are
exact inverses (round-trip tested).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.exceptions import InstanceError
from repro.model.instance import ProblemInstance
from repro.model.schema import Attribute, Schema, Table
from repro.model.workload import Query, QueryKind, Transaction, Workload

FORMAT_VERSION = 1


def instance_to_dict(instance: ProblemInstance) -> dict[str, Any]:
    """Serialise an instance to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": instance.name,
        "schema": {
            "name": instance.schema.name,
            "tables": [
                {
                    "name": table.name,
                    "attributes": [
                        {"name": attribute.name, "width": attribute.width}
                        for attribute in table
                    ],
                }
                for table in instance.schema.tables
            ],
        },
        "workload": {
            "name": instance.workload.name,
            "transactions": [
                {
                    "name": transaction.name,
                    "queries": [
                        {
                            "name": query.name,
                            "kind": query.kind.value,
                            "attributes": sorted(query.attributes),
                            "rows": dict(query.rows),
                            "frequency": query.frequency,
                            "extra_tables": sorted(query.extra_tables),
                        }
                        for query in transaction
                    ],
                }
                for transaction in instance.workload
            ],
        },
    }


def instance_from_dict(payload: dict[str, Any]) -> ProblemInstance:
    """Reconstruct an instance from :func:`instance_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise InstanceError(
            f"unsupported instance format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        schema_payload = payload["schema"]
        tables = [
            Table(
                name=table_payload["name"],
                attributes=tuple(
                    Attribute(
                        table=table_payload["name"],
                        name=attr_payload["name"],
                        width=float(attr_payload["width"]),
                    )
                    for attr_payload in table_payload["attributes"]
                ),
            )
            for table_payload in schema_payload["tables"]
        ]
        schema = Schema(tables, name=schema_payload.get("name", "schema"))
        workload_payload = payload["workload"]
        transactions = [
            Transaction(
                name=txn_payload["name"],
                queries=tuple(
                    Query(
                        name=query_payload["name"],
                        kind=QueryKind(query_payload["kind"]),
                        attributes=frozenset(query_payload["attributes"]),
                        rows={
                            table: float(count)
                            for table, count in query_payload.get("rows", {}).items()
                        },
                        frequency=float(query_payload.get("frequency", 1.0)),
                        extra_tables=frozenset(query_payload.get("extra_tables", ())),
                    )
                    for query_payload in txn_payload["queries"]
                ),
            )
            for txn_payload in workload_payload["transactions"]
        ]
        workload = Workload(transactions, name=workload_payload.get("name", "workload"))
        return ProblemInstance(schema, workload, name=payload.get("name"))
    except (KeyError, TypeError, ValueError) as error:
        raise InstanceError(f"malformed instance payload: {error}") from error


def dump_instance(instance: ProblemInstance, path: str | Path) -> None:
    """Write an instance to ``path`` as pretty-printed JSON."""
    Path(path).write_text(
        json.dumps(instance_to_dict(instance), indent=2, sort_keys=True)
    )


def load_instance(path: str | Path) -> ProblemInstance:
    """Read an instance previously written by :func:`dump_instance`."""
    return instance_from_dict(json.loads(Path(path).read_text()))
