#!/usr/bin/env python
"""Execute the fenced ``python`` code blocks of README.md and docs/.

Documentation that does not run rots: entry points get renamed, options
change shape, imports move. This checker extracts every fenced
``python`` block from the given markdown files (default: README.md and
docs/*.md) and executes each one in its own subprocess with
``PYTHONPATH=src``, failing loudly with the file and line of any block
that errors.

A block can opt out by being immediately preceded (blank lines allowed)
by the marker comment::

    <!-- snippet: no-run -->

for fragments that are illustrative rather than self-contained (e.g.
pseudo-code or snippets requiring optional dependencies). Non-python
fences (bash, text, ...) are ignored.

Run locally with::

    python tools/check_doc_snippets.py [files...]
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
NO_RUN_MARKER = "<!-- snippet: no-run -->"
FENCE = re.compile(r"^```(\S*)\s*$")
#: Per-snippet wall-clock cap: docs examples must stay instant.
TIMEOUT_SECONDS = 120


@dataclass
class Snippet:
    path: Path
    line: int  # 1-based line of the opening fence
    language: str
    code: str
    no_run: bool

    @property
    def label(self) -> str:
        try:
            shown = self.path.relative_to(REPO_ROOT)
        except ValueError:  # an out-of-tree file passed on the CLI
            shown = self.path
        return f"{shown}:{self.line}"


def extract_snippets(path: Path) -> list[Snippet]:
    """All fenced code blocks of one markdown file, in order."""
    snippets: list[Snippet] = []
    lines = path.read_text().splitlines()
    index = 0
    pending_no_run = False
    while index < len(lines):
        stripped = lines[index].strip()
        if stripped == NO_RUN_MARKER:
            pending_no_run = True
            index += 1
            continue
        match = FENCE.match(lines[index])
        if match is None:
            if stripped:
                pending_no_run = False
            index += 1
            continue
        language = match.group(1).lower()
        start = index
        index += 1
        body: list[str] = []
        while index < len(lines) and not lines[index].strip().startswith("```"):
            body.append(lines[index])
            index += 1
        index += 1  # closing fence
        snippets.append(
            Snippet(
                path=path,
                line=start + 1,
                language=language,
                code="\n".join(body) + "\n",
                no_run=pending_no_run,
            )
        )
        pending_no_run = False
    return snippets


def run_snippet(snippet: Snippet) -> tuple[bool, str]:
    """Execute one snippet; returns (ok, captured output)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    try:
        completed = subprocess.run(
            [sys.executable, "-c", snippet.code],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=TIMEOUT_SECONDS,
        )
    except subprocess.TimeoutExpired:
        return False, f"timed out after {TIMEOUT_SECONDS}s"
    output = (completed.stdout + completed.stderr).strip()
    return completed.returncode == 0, output


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [Path(name).resolve() for name in argv]
    else:
        files = [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))
    failures = 0
    executed = 0
    skipped = 0
    for path in files:
        for snippet in extract_snippets(path):
            if snippet.language != "python":
                continue
            if snippet.no_run:
                skipped += 1
                print(f"SKIP  {snippet.label} (marked no-run)")
                continue
            ok, output = run_snippet(snippet)
            executed += 1
            if ok:
                print(f"ok    {snippet.label}")
            else:
                failures += 1
                print(f"FAIL  {snippet.label}")
                for line in output.splitlines():
                    print(f"      {line}")
    print(
        f"\n{executed} snippet(s) executed, {skipped} skipped, "
        f"{failures} failed"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
