"""MipModel construction and array conversion."""

import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.solver.expr import Sense
from repro.solver.model import MipModel
from repro.solver.solution import SolutionStatus


@pytest.fixture
def model():
    return MipModel("test")


class TestConstruction:
    def test_duplicate_variable_names_rejected(self, model):
        model.add_variable("x")
        with pytest.raises(SolverError, match="duplicate"):
            model.add_variable("x")

    def test_binary_variable_bounds(self, model):
        b = model.binary_variable("b")
        assert b.lower == 0.0 and b.upper == 1.0 and b.is_integer

    def test_boolean_comparison_caught(self, model):
        """A common bug: comparing two plain floats folds to bool."""
        with pytest.raises(SolverError, match="Constraint"):
            model.add_constraint(1 <= 2)  # type: ignore[arg-type]

    def test_counts(self, model):
        x = model.add_variable("x")
        b = model.binary_variable("b")
        model.add_constraint(x + b <= 1)
        assert model.num_variables == 2
        assert model.num_integer_variables == 1
        assert model.num_constraints == 1


class TestStandardArrays:
    def test_objective_vector(self, model):
        x = model.add_variable("x")
        y = model.add_variable("y")
        model.minimize(2 * x - y + 7)
        arrays = model.to_standard_arrays()
        np.testing.assert_array_equal(arrays.objective, [2.0, -1.0])
        assert arrays.objective_constant == 7.0

    def test_maximization_negated(self, model):
        x = model.add_variable("x")
        model.maximize(3 * x + 1)
        arrays = model.to_standard_arrays()
        np.testing.assert_array_equal(arrays.objective, [-3.0])
        assert arrays.objective_constant == -1.0

    def test_matrix_and_senses(self, model):
        x = model.add_variable("x", upper=4)
        y = model.add_variable("y")
        model.add_constraint(x + 2 * y <= 3)
        model.add_constraint(x - y >= 1)
        model.add_constraint(x + y == 2)
        arrays = model.to_standard_arrays()
        assert arrays.senses == (Sense.LE, Sense.GE, Sense.EQ)
        np.testing.assert_array_equal(
            arrays.matrix.toarray(), [[1, 2], [1, -1], [1, 1]]
        )
        np.testing.assert_array_equal(arrays.rhs, [3, 1, 2])
        assert arrays.upper[0] == 4 and np.isinf(arrays.upper[1])

    def test_integrality_mask(self, model):
        model.add_variable("x")
        model.binary_variable("b")
        arrays = model.to_standard_arrays()
        np.testing.assert_array_equal(arrays.integrality, [False, True])


class TestSolve:
    def test_maximize_reports_original_sign(self, model):
        x = model.add_variable("x", upper=5)
        model.maximize(x)
        for backend in ("scratch", "scipy"):
            solution = model.solve(backend=backend)
            assert solution.status is SolutionStatus.OPTIMAL
            assert solution.objective == pytest.approx(5.0)

    def test_unknown_backend(self, model):
        model.add_variable("x", upper=1)
        model.minimize(model.variables[0].to_expr())
        with pytest.raises(SolverError, match="unknown backend"):
            model.solve(backend="gurobi")

    def test_auto_picks_scratch_for_tiny_models(self, model):
        x = model.add_variable("x", upper=1)
        model.minimize(-x)
        solution = model.solve(backend="auto")
        assert solution.backend in ("scratch-bnb",)

    def test_solution_value_accessor(self, model):
        x = model.add_variable("x", upper=2)
        model.maximize(x)
        solution = model.solve(backend="scratch")
        assert solution.value(x) == pytest.approx(2.0)

    def test_no_values_raises(self, model):
        x = model.add_variable("x", upper=2)
        model.add_constraint(x >= 5)
        model.minimize(x)
        solution = model.solve(backend="scratch")
        assert solution.status is SolutionStatus.INFEASIBLE
        with pytest.raises(ValueError, match="no values"):
            solution.value(x)

    def test_gap_property(self):
        from repro.solver.solution import MipSolution

        solution = MipSolution(
            status=SolutionStatus.FEASIBLE, objective=100.0, values=None, bound=95.0
        )
        assert solution.gap == pytest.approx(0.05)
