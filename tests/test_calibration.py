"""The calibration table, its recording hook, and calibrated auto-routing.

Three contracts pinned here:

* the table's JSON round-trip is exact, and merging is order-independent
  and idempotent (property-tested) — replaying shards can never
  double-count;
* corrupt and unknown-version documents raise a structured
  :class:`~repro.exceptions.CalibrationError`, never a silent reset;
* calibrated ``"auto"`` with an empty (or absent) table is
  bitwise-identical to the cutoff-only ``"auto"`` for every pick the
  strategy can make, per pinned seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Advisor, SolveRequest
from repro.calibration import (
    CALIBRATION_FORMAT_VERSION,
    CalibrationTable,
    Observation,
    instance_class,
    observation_from_report,
)
from repro.costmodel.config import CostParameters, WriteAccounting
from repro.exceptions import CalibrationError
from repro.instances.library import named_instance

SA_TEST_OPTIONS = {"inner_loops": 4, "max_outer_loops": 6, "patience": 4}


def small_instance():
    return named_instance("rndBt4x15")


def observation(**overrides):
    base = dict(
        strategy="sa", backend="-", instance_class="A16xT16", num_sites=2,
        wall_time=0.5, objective=100.0, quality=0.8, variables=120,
        restarts=1, seed=7, request_key="k",
    )
    base.update(overrides)
    return Observation(**base)


# ----------------------------------------------------------------------
# JSON round-trip + merge properties
# ----------------------------------------------------------------------
observation_strategy = st.builds(
    Observation,
    strategy=st.sampled_from(["qp", "sa", "sa-portfolio", "greedy"]),
    backend=st.sampled_from(["-", "serial", "process", "queue"]),
    instance_class=st.sampled_from(["A16xT16", "A128xT16", "A1024xT128"]),
    num_sites=st.integers(min_value=1, max_value=8),
    wall_time=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    objective=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    quality=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
    ),
    variables=st.one_of(st.none(), st.integers(min_value=0, max_value=10**6)),
    restarts=st.integers(min_value=1, max_value=16),
    seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
    request_key=st.text(
        alphabet="0123456789abcdef", min_size=0, max_size=8
    ),
)


class TestRoundTripAndMerge:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(observation_strategy, max_size=12))
    def test_json_round_trip_exact(self, observations):
        table = CalibrationTable(observations)
        assert CalibrationTable.from_json(table.to_json()) == table

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(observation_strategy, max_size=10),
        st.randoms(use_true_random=False),
    )
    def test_merge_is_order_independent(self, observations, rng):
        shuffled = list(observations)
        rng.shuffle(shuffled)
        assert CalibrationTable(shuffled) == CalibrationTable(observations)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(observation_strategy, max_size=10),
        st.lists(observation_strategy, max_size=10),
    )
    def test_merge_is_idempotent_and_commutative(self, left, right):
        a, b = CalibrationTable(left), CalibrationTable(right)
        once = CalibrationTable(left)
        once.merge(b)
        twice = CalibrationTable(left)
        twice.merge(b)
        assert twice.merge(b) == 0  # third merge adds nothing
        assert once == twice
        flipped = CalibrationTable(right)
        flipped.merge(a)
        assert once == flipped

    def test_self_merge_adds_nothing(self):
        table = CalibrationTable([observation()])
        assert table.merge(table) == 0
        assert len(table) == 1

    def test_duplicate_add_is_a_noop(self):
        table = CalibrationTable()
        assert table.add(observation()) is True
        assert table.add(observation()) is False
        assert len(table) == 1

    def test_save_load_round_trip(self, tmp_path):
        table = CalibrationTable([observation(), observation(seed=8)])
        path = tmp_path / "calibration.json"
        table.save(path)
        assert CalibrationTable.load(path) == table


# ----------------------------------------------------------------------
# Structured failures — never a silent reset
# ----------------------------------------------------------------------
class TestCorruptDocuments:
    def test_invalid_json_raises(self):
        with pytest.raises(CalibrationError, match="not valid JSON"):
            CalibrationTable.from_json("{nope")

    def test_unknown_version_raises(self):
        payload = {"format_version": 99, "observations": []}
        with pytest.raises(CalibrationError, match="format_version 99"):
            CalibrationTable.from_dict(payload)

    def test_missing_version_raises(self):
        with pytest.raises(CalibrationError, match="format_version"):
            CalibrationTable.from_dict({"observations": []})

    def test_non_object_document_raises(self):
        with pytest.raises(CalibrationError, match="JSON object"):
            CalibrationTable.from_json("[1, 2, 3]")

    def test_missing_observations_raises(self):
        with pytest.raises(CalibrationError, match="observations"):
            CalibrationTable.from_dict(
                {"format_version": CALIBRATION_FORMAT_VERSION}
            )

    def test_malformed_observation_raises(self):
        payload = {
            "format_version": CALIBRATION_FORMAT_VERSION,
            "observations": [{"strategy": "sa"}],  # misses required fields
        }
        with pytest.raises(CalibrationError, match="malformed observation"):
            CalibrationTable.from_dict(payload)

    def test_unknown_observation_fields_raise(self):
        entry = observation().to_dict()
        entry["wat"] = 1
        payload = {
            "format_version": CALIBRATION_FORMAT_VERSION,
            "observations": [entry],
        }
        with pytest.raises(CalibrationError, match="unknown fields"):
            CalibrationTable.from_dict(payload)

    def test_negative_wall_time_raises(self):
        entry = observation().to_dict()
        entry["wall_time"] = -1.0
        with pytest.raises(CalibrationError, match="wall_time"):
            Observation.from_dict(entry)

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(CalibrationError, match="cannot read"):
            CalibrationTable.load(tmp_path / "missing.json")

    def test_corrupt_file_raises_not_resets(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{broken")
        with pytest.raises(CalibrationError):
            CalibrationTable.load(path)


# ----------------------------------------------------------------------
# The instance-class bucketing
# ----------------------------------------------------------------------
class TestInstanceClass:
    def test_rounds_up_to_powers_of_two(self):
        assert instance_class(9, 15) == "A16xT16"
        assert instance_class(16, 16) == "A16xT16"
        assert instance_class(17, 16) == "A32xT16"
        assert instance_class(1, 1) == "A1xT1"

    def test_rejects_empty_dimensions(self):
        with pytest.raises(CalibrationError, match="positive"):
            instance_class(0, 5)


# ----------------------------------------------------------------------
# Calibrated auto: empty table is bitwise-identical to the cutoff
# ----------------------------------------------------------------------
def _auto_request(**overrides):
    base = dict(
        instance=small_instance(), num_sites=2, strategy="auto", seed=11,
        options=dict(SA_TEST_OPTIONS),
    )
    base.update(overrides)
    return SolveRequest(**base)


def assert_bitwise_equal(left, right):
    assert np.array_equal(left.result.x, right.result.x)
    assert np.array_equal(left.result.y, right.result.y)
    assert left.result.objective == right.result.objective
    assert left.strategy == right.strategy
    assert left.metadata.get("auto_pick") == right.metadata.get("auto_pick")


class TestEmptyTableContract:
    """Every pick ``auto`` can make, with and without an empty table."""

    @pytest.mark.parametrize("case", ["qp", "sa", "single-site", "forced-sa"])
    def test_empty_table_is_bitwise_identical(self, case):
        if case == "qp":
            request = _auto_request(options={})  # small model -> qp
        elif case == "sa":
            request = _auto_request(
                options={"auto_cutoff": 0, **SA_TEST_OPTIONS}
            )
        elif case == "single-site":
            request = _auto_request(num_sites=1, options={})
        else:  # forced-sa: RELEVANT_ATTRIBUTES accounting has no QP
            request = _auto_request(
                parameters=CostParameters(
                    write_accounting=WriteAccounting.RELEVANT_ATTRIBUTES
                ),
            )
        plain = Advisor().advise(request)
        calibrated = Advisor(calibration=CalibrationTable()).advise(request)
        assert_bitwise_equal(plain, calibrated)

    def test_absent_table_is_the_default(self):
        assert Advisor().calibration is None

    def test_empty_table_recommends_nothing(self):
        assert CalibrationTable().recommend("A16xT16") is None

    def test_requests_stay_byte_stable(self):
        """Calibration is advisor-side state: the request document (the
        service's coalescing / cache key) is identical either way."""
        request = _auto_request()
        before = request.canonical_json()
        Advisor(calibration=CalibrationTable()).advise(request)
        assert request.canonical_json() == before
        assert "calibration" not in before


# ----------------------------------------------------------------------
# The recording hook
# ----------------------------------------------------------------------
class TestRecordingHook:
    def test_advise_records_one_observation(self):
        table = CalibrationTable()
        advisor = Advisor(calibration=table)
        request = _auto_request()
        report = advisor.advise(request)
        assert len(table) == 1
        recorded = next(iter(table))
        assert recorded.strategy == report.strategy
        assert recorded.instance_class == instance_class(
            request.instance.num_attributes,
            request.instance.num_transactions,
        )
        assert recorded.num_sites == 2
        assert recorded.objective == report.objective
        assert recorded.quality is not None and recorded.quality > 0
        assert recorded.request_key == request.canonical_key()

    def test_nested_serves_record_top_level_only(self):
        """Compression re-enters advise() on the compressed view; only
        the caller's request may land in the table."""
        table = CalibrationTable()
        advisor = Advisor(calibration=table)
        request = SolveRequest(
            small_instance(), num_sites=2, strategy="sa", seed=3,
            options=dict(SA_TEST_OPTIONS), compression="lossless",
        )
        advisor.advise(request)
        assert len(table) == 1
        assert next(iter(table)).request_key == request.canonical_key()

    def test_off_by_default(self):
        advisor = Advisor()
        advisor.advise(_auto_request())
        assert advisor.calibration is None

    def test_observation_from_report_reads_model_size(self):
        report = Advisor().advise(_auto_request(options={}))
        observation = observation_from_report(report)
        assert observation.variables == report.metadata["auto_model_variables"]


# ----------------------------------------------------------------------
# Calibrated routing: evidence overrides the cutoff, budget applied
# ----------------------------------------------------------------------
class TestCalibratedRouting:
    def klass(self):
        inst = small_instance()
        return instance_class(inst.num_attributes, inst.num_transactions)

    def evidence(self, winner: str, restarts: int = 1):
        klass = self.klass()
        return CalibrationTable([
            Observation(strategy="sa", backend="-", instance_class=klass,
                        num_sites=2, wall_time=0.1, objective=50.0,
                        quality=0.5 if winner == "sa" else 0.9,
                        restarts=restarts),
            Observation(strategy="qp", backend="-", instance_class=klass,
                        num_sites=2, wall_time=2.0, objective=80.0,
                        quality=0.5 if winner == "qp" else 0.9),
        ])

    def test_sa_evidence_overrides_qp_cutoff(self):
        # The cutoff alone would pick qp for this tiny model.
        report = Advisor(calibration=self.evidence("sa", restarts=3)).advise(
            _auto_request()
        )
        assert report.metadata["auto_pick"] == "sa"
        assert report.metadata["auto_source"] == "calibration"
        assert report.metadata["restarts"] == 3  # the calibrated budget

    def test_qp_evidence_keeps_qp_with_budget(self):
        report = Advisor(calibration=self.evidence("qp")).advise(
            _auto_request(options={})
        )
        assert report.metadata["auto_pick"] == "qp"
        assert report.metadata["auto_source"] == "calibration"

    def test_cutoff_pick_reports_its_source(self):
        report = Advisor().advise(_auto_request(options={}))
        assert report.metadata["auto_source"] == "cutoff"

    def test_explicit_options_beat_the_calibrated_budget(self):
        report = Advisor(calibration=self.evidence("sa", restarts=3)).advise(
            _auto_request(options={**SA_TEST_OPTIONS, "restarts": 2})
        )
        assert report.metadata["restarts"] == 2

    def test_recommend_ignores_other_classes(self):
        table = self.evidence("sa")
        assert table.recommend("A1024xT1024") is None

    def test_recommend_breaks_ties_deterministically(self):
        klass = self.klass()
        table = CalibrationTable([
            Observation(strategy="sa", backend="-", instance_class=klass,
                        num_sites=2, wall_time=1.0, objective=10.0,
                        quality=0.5),
            Observation(strategy="qp", backend="-", instance_class=klass,
                        num_sites=2, wall_time=1.0, objective=10.0,
                        quality=0.5),
        ])
        # Equal quality and time: the lexicographically first name wins.
        assert table.recommend(klass).strategy == "qp"

    def test_forced_sa_accounting_ignores_qp_evidence(self):
        request = _auto_request(
            parameters=CostParameters(
                write_accounting=WriteAccounting.RELEVANT_ATTRIBUTES
            ),
        )
        report = Advisor(calibration=self.evidence("qp")).advise(request)
        assert report.metadata["auto_pick"] == "sa"
        assert report.metadata["auto_source"] == "cutoff"


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
class TestSummary:
    def test_summary_groups_and_orders(self):
        table = CalibrationTable([
            observation(strategy="sa", wall_time=1.0, quality=0.6),
            observation(strategy="sa", wall_time=3.0, quality=0.8, seed=9),
            observation(strategy="qp", wall_time=2.0, quality=None),
        ])
        rows = table.summary()
        assert [row["strategy"] for row in rows] == ["qp", "sa"]
        sa_row = rows[1]
        assert sa_row["observations"] == 2
        assert sa_row["mean_wall_time"] == pytest.approx(2.0)
        assert sa_row["mean_quality"] == pytest.approx(0.7)
        assert sa_row["best_quality"] == pytest.approx(0.6)
        assert rows[0]["mean_quality"] is None
