"""Workload statistics estimation from traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import WorkloadError
from repro.stats.estimator import (
    QueryEvent,
    TraceCollector,
    estimate_statistics,
    reestimate_instance,
)


class TestTraceCollector:
    def test_counts_executions(self):
        collector = TraceCollector()
        collector.record("q1")
        collector.record("q1")
        collector.record("q2")
        stats = collector.aggregate()
        assert stats["q1"].executions == 2
        assert stats["q2"].executions == 1
        assert collector.total_events == 3

    def test_mean_rows(self):
        collector = TraceCollector()
        collector.record("q", {"T": 2})
        collector.record("q", {"T": 6})
        collector.record("q", {"U": 10})
        stats = collector.aggregate()["q"]
        assert stats.mean_rows["T"] == 4.0
        assert stats.mean_rows["U"] == 10.0

    def test_frequency_scale(self):
        collector = TraceCollector()
        for _ in range(30):
            collector.record("q")
        stats = collector.aggregate(frequency_scale=10.0)["q"]
        assert stats.frequency == pytest.approx(3.0)

    def test_negative_rows_rejected(self):
        with pytest.raises(WorkloadError, match="negative"):
            QueryEvent("q", {"T": -1})

    def test_estimate_statistics_one_shot(self):
        events = [QueryEvent("a", {"T": 1}), QueryEvent("a", {"T": 3})]
        stats = estimate_statistics(events)
        assert stats["a"].mean_rows["T"] == 2.0


class TestReestimateInstance:
    def test_updates_frequency_and_rows(self, tiny_instance):
        events = []
        for _ in range(7):
            events.append(QueryEvent("Reader.getNarrow", {"Narrow": 4}))
        for _ in range(3):
            events.append(QueryEvent("Writer.update", {"Wide": 5}))
        traced = reestimate_instance(tiny_instance, events)
        get_narrow = next(
            q for q in traced.queries if q.name == "Reader.getNarrow"
        )
        update = next(q for q in traced.queries if q.name == "Writer.update")
        assert get_narrow.frequency == 7.0
        assert get_narrow.rows_for("Narrow") == 4.0
        assert update.frequency == 3.0
        assert update.rows_for("Wide") == 5.0

    def test_missing_queries_keep_old_statistics(self, tiny_instance):
        events = [QueryEvent("Reader.getNarrow", {"Narrow": 2})]
        traced = reestimate_instance(tiny_instance, events)
        untouched = next(
            q for q in traced.queries if q.name == "Reader.getWide"
        )
        original = next(
            q for q in tiny_instance.queries if q.name == "Reader.getWide"
        )
        assert untouched.frequency == original.frequency

    def test_missing_queries_dropped_when_requested(self, tiny_instance):
        events = [
            QueryEvent("Reader.getNarrow"),
            QueryEvent("Reader.getWide"),
        ]
        traced = reestimate_instance(tiny_instance, events, keep_missing=False)
        names = {q.name for q in traced.queries}
        assert names == {"Reader.getNarrow", "Reader.getWide"}
        # The Writer transaction lost all queries and was dropped.
        assert traced.num_transactions == 1

    def test_unknown_template_rejected(self, tiny_instance):
        with pytest.raises(WorkloadError, match="unknown query template"):
            reestimate_instance(tiny_instance, [QueryEvent("nope")])

    def test_foreign_table_rejected(self, tiny_instance):
        events = [QueryEvent("Reader.getNarrow", {"Wide": 2})]
        with pytest.raises(WorkloadError, match="does not touch"):
            reestimate_instance(tiny_instance, events)

    def test_traced_instance_is_solvable(self, tiny_instance):
        from repro.sa.solver import solve_sa

        events = [
            QueryEvent("Reader.getNarrow", {"Narrow": 2}),
            QueryEvent("Writer.update", {"Wide": 8}),
        ]
        traced = reestimate_instance(tiny_instance, events)
        result = solve_sa(traced, 2, seed=0)
        assert result.objective > 0

    @settings(max_examples=20, deadline=None)
    @given(
        counts=st.lists(
            st.integers(min_value=1, max_value=20), min_size=1, max_size=5
        )
    )
    def test_frequencies_proportional_to_counts(self, counts):
        from tests.conftest import small_random_instance

        tiny_instance = small_random_instance(0)
        events = []
        names = [q.name for q in tiny_instance.queries]
        for name, count in zip(names, counts):
            events.extend(QueryEvent(name) for _ in range(count))
        traced = reestimate_instance(tiny_instance, events)
        for name, count in zip(names, counts):
            query = next(q for q in traced.queries if q.name == name)
            assert query.frequency == pytest.approx(float(count))
