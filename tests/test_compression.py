"""Workload compression: signatures, lifting invariants, the pipeline.

The load-bearing properties pinned here:

* **Lossless determinism contract** — compress→solve→lift through
  ``advise()`` returns an objective bitwise-equal to the direct solve
  for *every* registered strategy per master seed (pure cost
  minimisation; integral instance data keeps float sums exact).
* **Evaluation commutes** — for any placement of the compressed view,
  evaluating there equals evaluating its lifting on the original.
* **Lossy soundness** — the measured objective gap of an exact
  (QP) solve never exceeds the tier's reported error bound.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Advisor, SolveRequest, default_registry
from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator, feasibility_violations
from repro.exceptions import InstanceError, OptionsError
from repro.instances.library import DUPLICATE_INSTANCES, named_instance
from repro.instances.random_gen import InstanceParameters, generate_instance
from repro.model.compressed import CompressedInstance, LiftingMap
from repro.reduction.compress import (
    compress_instance,
    compress_result,
    query_access_signature,
    query_signature,
    transaction_signature,
)

#: Integral data + lambda=1 keeps every float sum exact, so equal real
#: objectives are bitwise-equal floats.
PURE_COST = CostParameters(load_balance_lambda=1.0)

#: Fast SA settings for the pipeline parity sweep.
SA_QUICK = {"inner_loops": 5, "max_outer_loops": 8, "patience": 3}


def duplicate_heavy_instance(seed: int = 99, jitter: float = 0.0):
    """A small duplicate-heavy instance (QP-solvable in CI time)."""
    return generate_instance(
        InstanceParameters(
            name=f"dup-prop-{seed}",
            num_transactions=18,
            num_tables=4,
            max_queries_per_transaction=2,
            update_percent=10.0,
            max_attributes_per_table=6,
            max_table_refs_per_query=2,
            max_attribute_refs_per_query=4,
            attribute_widths=(2.0, 4.0, 8.0),
            max_frequency=20,
            max_rows=8,
            duplicate_rate=0.7,
            duplicate_skew=1.0,
            duplicate_jitter=jitter,
        ),
        seed=seed,
    )


def random_placement(rng, num_transactions, num_attributes, num_sites):
    """A feasibility-unchecked random (x, y) pair with full y coverage."""
    x = np.zeros((num_transactions, num_sites), dtype=bool)
    x[np.arange(num_transactions), rng.integers(0, num_sites, num_transactions)] = True
    y = rng.random((num_attributes, num_sites)) < 0.6
    y[:, 0] |= ~y.any(axis=1)
    return x, y


# ----------------------------------------------------------------------
# Signatures and clustering
# ----------------------------------------------------------------------
class TestSignatures:
    def test_lossless_groups_are_bit_identical_transactions(self):
        instance = duplicate_heavy_instance()
        compressed = compress_instance(instance, parameters=PURE_COST)
        assert not compressed.is_identity
        for members in compressed.lifting.groups:
            signatures = {
                transaction_signature(instance.transactions[t])
                for t in members
            }
            assert len(signatures) == 1

    def test_lossless_sums_frequencies_per_paired_query(self):
        instance = duplicate_heavy_instance()
        compressed = compress_instance(instance, parameters=PURE_COST)
        for g_index, members in enumerate(compressed.lifting.groups):
            merged = compressed.compressed.transactions[g_index]
            member_total = sum(
                query.frequency
                for t in members
                for query in instance.transactions[t]
            )
            merged_total = sum(query.frequency for query in merged)
            assert merged_total == member_total

    def test_access_signature_ignores_magnitudes(self):
        instance = duplicate_heavy_instance(jitter=1.0)
        for transaction in instance.transactions:
            for query in transaction:
                access = query_access_signature(query)
                full = query_signature(query)
                assert full[: len(access)] == access

    def test_identity_when_nothing_merges(self):
        instance = named_instance("rndAt8x15")
        compressed = compress_instance(instance, parameters=PURE_COST)
        assert compressed.is_identity
        assert compressed.compressed is instance
        assert compressed.compression_ratio == 1.0
        assert compressed.objective_error_bound == 0.0

    def test_unknown_tier_and_negative_tolerance_rejected(self):
        instance = duplicate_heavy_instance()
        with pytest.raises(InstanceError, match="unknown compression tier"):
            compress_instance(instance, tier="zstd")
        with pytest.raises(InstanceError, match="tolerance"):
            compress_instance(instance, tier="lossy", tolerance=-0.5)

    def test_mismatched_coefficients_rejected(self):
        instance = duplicate_heavy_instance()
        coefficients = build_coefficients(instance, PURE_COST)
        with pytest.raises(InstanceError, match="different"):
            compress_instance(
                instance,
                parameters=CostParameters(load_balance_lambda=0.5),
                coefficients=coefficients,
            )


class TestLiftingMap:
    def test_lift_and_compress_are_inverse_on_super_rows(self):
        instance = duplicate_heavy_instance()
        compressed = compress_instance(instance, parameters=PURE_COST)
        lifting = compressed.lifting
        rng = np.random.default_rng(0)
        x_c = rng.random((lifting.num_super_transactions, 3)) < 0.5
        assert np.array_equal(lifting.compress_x(lifting.lift_x(x_c)), x_c)

    def test_shape_validation(self):
        lifting = LiftingMap(groups=((0, 2), (1,)), num_original_transactions=3)
        with pytest.raises(InstanceError, match="rows"):
            lifting.lift_x(np.zeros((3, 2)))
        with pytest.raises(InstanceError, match="rows"):
            lifting.compress_x(np.zeros((2, 2)))

    def test_coverage_validation(self):
        with pytest.raises(InstanceError, match="covers"):
            LiftingMap(groups=((0, 1),), num_original_transactions=3)
        with pytest.raises(InstanceError, match="empty"):
            LiftingMap(groups=((0,), ()), num_original_transactions=1)

    def test_json_round_trip(self):
        instance = duplicate_heavy_instance()
        compressed = compress_instance(
            instance, tier="lossy", tolerance=0.1, parameters=PURE_COST
        )
        payload = json.loads(json.dumps(compressed.to_dict()))
        restored = CompressedInstance.from_dict(payload)
        assert restored.lifting == compressed.lifting
        assert restored.tier == compressed.tier
        assert restored.tolerance == compressed.tolerance
        assert restored.objective_error_bound == compressed.objective_error_bound
        assert (
            restored.compressed.num_transactions
            == compressed.compressed.num_transactions
        )

    def test_malformed_payload_rejected(self):
        with pytest.raises(InstanceError, match="malformed"):
            LiftingMap.from_dict({"groups": [[0]]})
        with pytest.raises(InstanceError, match="format version"):
            CompressedInstance.from_dict({"format_version": 99})


# ----------------------------------------------------------------------
# Evaluation commutes with lossless compression
# ----------------------------------------------------------------------
class TestEvaluationCommutes:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_compressed_objective_equals_lifted_objective(self, seed):
        instance = duplicate_heavy_instance()
        compressed = compress_instance(instance, parameters=PURE_COST)
        coeff_original = build_coefficients(instance, PURE_COST)
        coeff_compressed = build_coefficients(compressed, PURE_COST)
        assert coeff_compressed.num_transactions < coeff_original.num_transactions
        rng = np.random.default_rng(seed)
        x_c, y = random_placement(
            rng,
            compressed.num_super_transactions,
            instance.num_attributes,
            3,
        )
        on_compressed = SolutionEvaluator(coeff_compressed).objective4(x_c, y)
        on_original = SolutionEvaluator(coeff_original).objective4(
            compressed.lifting.lift_x(x_c), y
        )
        assert on_compressed == on_original

    def test_build_coefficients_view_selection(self):
        instance = duplicate_heavy_instance()
        compressed = compress_instance(instance, parameters=PURE_COST)
        original_view = build_coefficients(compressed, PURE_COST, view="original")
        assert original_view.num_transactions == instance.num_transactions
        with pytest.raises(ValueError, match="view"):
            build_coefficients(compressed, PURE_COST, view="sideways")

    def test_nbytes_shrinks_with_the_transaction_count(self):
        instance = duplicate_heavy_instance()
        compressed = compress_instance(instance, parameters=PURE_COST)
        full = build_coefficients(instance, PURE_COST).nbytes
        small = build_coefficients(compressed, PURE_COST).nbytes
        assert 0 < small < full


# ----------------------------------------------------------------------
# The determinism contract: every strategy, bitwise
# ----------------------------------------------------------------------
class TestLosslessPipelineParity:
    @pytest.mark.parametrize(
        "strategy", sorted(default_registry().names()) + ["sa-portfolio->qp"]
    )
    def test_objective_bitwise_equal_to_direct_solve(self, strategy):
        instance = duplicate_heavy_instance()
        advisor = Advisor()
        num_sites = 1 if strategy == "single-site" else 3
        options: dict = {}
        if strategy in ("sa", "sa-portfolio"):
            options = dict(SA_QUICK)
        elif strategy == "sa-portfolio->qp":
            options = {"sa-portfolio": dict(SA_QUICK), "qp": {}}
        request = SolveRequest(
            instance=instance,
            num_sites=num_sites,
            parameters=PURE_COST,
            strategy=strategy,
            options=options,
            seed=123,
        )
        direct = advisor.advise(request)
        piped = advisor.advise(request.with_(compression="lossless"))
        # The determinism contract: bitwise-equal objective.  (x, y) may
        # differ by a site permutation for stochastic/MIP strategies, so
        # the placement itself is only checked for feasibility.
        assert piped.objective == direct.objective
        assert feasibility_violations(
            piped.result.coefficients, piped.x, piped.y
        ) == []

    def test_lifted_placement_reevaluates_on_the_original(self):
        instance = duplicate_heavy_instance()
        advisor = Advisor()
        request = SolveRequest(
            instance=instance, num_sites=3, parameters=PURE_COST,
            strategy="greedy", compression="lossless",
        )
        report = advisor.advise(request)
        # The report's x covers the *original* transactions, and its
        # objective is the evaluator's verdict on the original view.
        assert report.x.shape[0] == instance.num_transactions
        coefficients = build_coefficients(instance, PURE_COST)
        assert report.objective == SolutionEvaluator(coefficients).objective4(
            report.x, report.y
        )
        assert report.result.solver.endswith("+compress")
        assert report.metadata["compression_ratio"] > 5.0
        assert report.metadata["objective_error_bound"] == 0.0

    def test_round_robin_served_uncompressed(self):
        instance = duplicate_heavy_instance()
        advisor = Advisor()
        request = SolveRequest(
            instance=instance, num_sites=3, parameters=PURE_COST,
            strategy="round-robin",
        )
        direct = advisor.advise(request)
        piped = advisor.advise(request.with_(compression="lossless"))
        assert piped.objective == direct.objective
        assert piped.metadata["compression_skipped"] == "position-based strategy"

    def test_identity_compression_serves_directly(self):
        instance = named_instance("rndAt8x15")
        advisor = Advisor()
        request = SolveRequest(
            instance=instance, num_sites=2, parameters=PURE_COST,
            strategy="greedy", seed=5,
        )
        direct = advisor.advise(request)
        piped = advisor.advise(request.with_(compression="lossless"))
        assert piped.objective == direct.objective
        assert not piped.result.solver.endswith("+compress")
        assert piped.metadata["compression_ratio"] == 1.0

    def test_warm_start_crosses_the_views(self):
        instance = duplicate_heavy_instance()
        advisor = Advisor()
        request = SolveRequest(
            instance=instance, num_sites=3, parameters=PURE_COST,
            strategy="qp", compression="lossless", seed=1,
        )
        seed_report = advisor.advise(request.with_(strategy="greedy"))
        warm = advisor.advise(request, warm_start=seed_report.result)
        cold = advisor.advise(request)
        assert warm.objective == cold.objective

    def test_lossless_with_blended_lambda_reports_honest_bound(self):
        instance = duplicate_heavy_instance()
        blended = CostParameters(load_balance_lambda=0.9)
        compressed = compress_instance(instance, parameters=blended)
        # Cost is preserved exactly, but the load-balance term of
        # objective (6) can degrade; the bound must say so.
        assert compressed.objective_error_bound > 0.0


# ----------------------------------------------------------------------
# Lossy tier: measured gap within the reported bound
# ----------------------------------------------------------------------
class TestLossyTier:
    @pytest.mark.parametrize("tolerance", [0.01, 0.05, 0.25])
    def test_exact_solve_gap_never_exceeds_bound(self, tolerance):
        instance = duplicate_heavy_instance(jitter=0.6)
        advisor = Advisor()
        request = SolveRequest(
            instance=instance, num_sites=2, parameters=PURE_COST,
            strategy="qp", seed=3,
        )
        direct = advisor.advise(request)
        lossy = advisor.advise(
            request.with_(
                compression="lossy", compression_tolerance=tolerance
            )
        )
        bound = lossy.metadata.get("objective_error_bound", 0.0)
        gap = lossy.objective - direct.objective
        assert gap <= bound + 1e-9
        assert feasibility_violations(
            lossy.result.coefficients, lossy.x, lossy.y
        ) == []

    def test_bound_respects_the_budget(self):
        instance = duplicate_heavy_instance(jitter=0.6)
        coefficients = build_coefficients(instance, PURE_COST)
        tolerance = 0.05
        compressed = compress_instance(
            instance, tier="lossy", tolerance=tolerance,
            coefficients=coefficients,
        )
        assert (
            compressed.objective_error_bound
            <= tolerance * coefficients.single_site_cost() + 1e-9
        )

    def test_larger_tolerance_merges_at_least_as_much(self):
        instance = duplicate_heavy_instance(jitter=0.6)
        sizes = [
            compress_instance(
                instance, tier="lossy", tolerance=tolerance,
                parameters=PURE_COST,
            ).num_super_transactions
            for tolerance in (0.0, 0.05, 0.5)
        ]
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_lossy_preserves_total_access_weight(self):
        # Frequency-weighted row averaging keeps sum_i f_i * n_i exact,
        # so the single-site (|S|=1) cost of the two views is equal.
        instance = duplicate_heavy_instance(jitter=0.6)
        compressed = compress_instance(
            instance, tier="lossy", tolerance=1.0, parameters=PURE_COST
        )
        assert not compressed.is_identity
        original = build_coefficients(instance, PURE_COST).single_site_cost()
        merged = build_coefficients(compressed, PURE_COST).single_site_cost()
        assert merged == pytest.approx(original, rel=1e-12)

    def test_compress_result_restricts_feasibly(self):
        instance = duplicate_heavy_instance(jitter=0.6)
        compressed = compress_instance(
            instance, tier="lossy", tolerance=0.5, parameters=PURE_COST
        )
        advisor = Advisor()
        direct = advisor.advise(
            SolveRequest(
                instance=instance, num_sites=2, parameters=PURE_COST,
                strategy="greedy",
            )
        )
        coefficients = build_coefficients(compressed, PURE_COST)
        restricted = compress_result(compressed, direct.result, coefficients)
        assert restricted.x.shape[0] == compressed.num_super_transactions
        assert feasibility_violations(
            coefficients, restricted.x, restricted.y
        ) == []


# ----------------------------------------------------------------------
# Request plumbing and the duplicate-heavy generator
# ----------------------------------------------------------------------
class TestRequestPlumbing:
    def test_compression_fields_round_trip(self, tiny_instance):
        request = SolveRequest(
            tiny_instance, 2, strategy="greedy",
            compression="lossy", compression_tolerance=0.25,
        )
        restored = SolveRequest.from_json(request.to_json())
        assert restored.compression == "lossy"
        assert restored.compression_tolerance == 0.25

    def test_legacy_payload_defaults_to_off(self, tiny_instance):
        payload = SolveRequest(tiny_instance, 2).to_dict()
        del payload["compression"]
        del payload["compression_tolerance"]
        restored = SolveRequest.from_dict(payload)
        assert restored.compression == "off"
        assert restored.compression_tolerance == 0.0

    def test_validation(self, tiny_instance):
        with pytest.raises(OptionsError, match="compression mode"):
            SolveRequest(tiny_instance, 2, compression="zip")
        with pytest.raises(OptionsError, match="compression_tolerance"):
            SolveRequest(
                tiny_instance, 2, compression="lossy",
                compression_tolerance=-1.0,
            )


class TestDuplicateGenerator:
    def test_zero_rate_reproduces_the_paper_generator(self):
        base = InstanceParameters(name="ctl", num_transactions=12, num_tables=5)
        plain = generate_instance(base, seed=7)
        explicit = generate_instance(base.with_(duplicate_rate=0.0), seed=7)
        assert json.dumps(
            [t.name for t in plain.transactions]
        ) == json.dumps([t.name for t in explicit.transactions])
        assert (
            transaction_signature(plain.transactions[3])
            == transaction_signature(explicit.transactions[3])
        )

    def test_duplicate_rate_produces_mergeable_transactions(self):
        instance = duplicate_heavy_instance()
        signatures = [
            transaction_signature(t) for t in instance.transactions
        ]
        assert len(set(signatures)) < len(signatures) / 2

    def test_jitter_keeps_access_shape_but_changes_magnitudes(self):
        instance = duplicate_heavy_instance(seed=5, jitter=1.0)
        compressed_lossless = compress_instance(instance, parameters=PURE_COST)
        compressed_lossy = compress_instance(
            instance, tier="lossy", tolerance=10.0, parameters=PURE_COST
        )
        assert (
            compressed_lossy.num_super_transactions
            < compressed_lossless.num_super_transactions
        )

    def test_library_entries_compress_five_fold(self):
        assert "rndDupAt8x120" in DUPLICATE_INSTANCES
        instance = named_instance("rndDupAt8x120")
        compressed = compress_instance(instance, parameters=PURE_COST)
        assert compressed.compression_ratio >= 5.0

    def test_knob_validation(self):
        with pytest.raises(InstanceError, match="duplicate_rate"):
            InstanceParameters(duplicate_rate=1.5)
        with pytest.raises(InstanceError, match="duplicate_skew"):
            InstanceParameters(duplicate_skew=-1.0)
        with pytest.raises(InstanceError, match="duplicate_jitter"):
            InstanceParameters(duplicate_jitter=-0.1)


class TestCliCompression:
    def test_advise_with_compression_prints_the_ratio(self, capsys):
        from repro.cli import main

        code = main([
            "advise", "--instance", "rndDupAt8x120", "--sites", "2",
            "--solver", "greedy", "--load-balance", "0",
            "--compress", "lossless",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "compression   : lossless 120 -> " in out

    def test_tolerance_requires_lossy(self, capsys):
        from repro.cli import main

        code = main([
            "advise", "--instance", "rndDupAt8x120", "--sites", "2",
            "--solver", "greedy", "--compress", "lossless",
            "--compress-tolerance", "0.1",
        ])
        assert code == 1
        assert "--compress-tolerance" in capsys.readouterr().err
