"""Pluggable portfolio execution backends and the shared incumbent.

Pins the PR-5 acceptance contract: all backends return bitwise-identical
best results per master seed, queue envelopes round-trip and replay
byte-identically, worker faults are retried without losing determinism,
and pruning only ever skips restarts that cannot win.
"""

import json
import math
import os

import numpy as np
import pytest

from repro.api.advisor import advise
from repro.api.request import SolveRequest
from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import (
    SolutionEvaluator,
    objective6_lower_bound,
)
from repro.exceptions import OptionsError, SolverError
from repro.model.instance import ProblemInstance
from repro.model.schema import SchemaBuilder
from repro.model.workload import Query, Transaction, Workload
from repro.sa.backends import (
    BackendRun,
    PortfolioPlan,
    QueueBackend,
    QueueWorker,
    SerialBackend,
    SharedIncumbent,
    backend_names,
    decode_restart_result,
    decode_restart_task,
    encode_restart_task,
    get_backend,
    register_backend,
)
from repro.sa.backends.base import RestartTask, _BACKENDS
from repro.sa.backends.queue import ENVELOPE_FORMAT_VERSION
from repro.sa.options import SaOptions
from repro.sa.portfolio import derive_restart_seeds, run_portfolio
from repro.sa.solver import SaPartitioner
from tests.conftest import random_feasible_solution, small_random_instance

FAST = dict(inner_loops=6, max_outer_loops=6)


@pytest.fixture(scope="module")
def coefficients():
    instance = small_random_instance(5, num_tables=4, max_attributes_per_table=8)
    return build_coefficients(instance, CostParameters())


def read_only_instance() -> ProblemInstance:
    """Read-only, every attribute of a touched table accessed directly.

    Under pure cost weighting (``lambda = 1``) every feasible solution
    pays exactly the forced read floor (all widths/frequencies integral,
    so the arithmetic is exact): objective (6) equals
    :func:`objective6_lower_bound` for *any* placement, which makes the
    incumbent's prune proof fire after the first restart.
    """
    schema = (
        SchemaBuilder("flat")
        .table("U", id=4, name=16)
        .table("V", key=4, val=8)
        .build()
    )
    workload = Workload(
        [
            Transaction("A", (Query.read("A.q", ["U.id", "U.name"]),)),
            Transaction("B", (Query.read("B.q", ["V.key", "V.val"]),)),
            Transaction("C", (Query.read("C.q", ["U.id", "U.name"]),)),
        ],
        name="flat-load",
    )
    return ProblemInstance(schema, workload, name="flat")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestBackendRegistry:
    def test_builtins_registered(self):
        assert {
            "serial", "process", "thread", "queue", "socket"
        } <= set(backend_names())

    def test_get_backend_unknown_raises(self):
        with pytest.raises(OptionsError, match="unknown execution backend"):
            get_backend("carrier-pigeon")

    def test_options_validate_backend_name(self):
        with pytest.raises(OptionsError, match="unknown execution backend"):
            SaOptions(backend="carrier-pigeon")
        assert SaOptions(backend="queue").backend == "queue"

    def test_register_backend_and_run(self, coefficients):
        class CountingSerial(SerialBackend):
            name = "counting"
            calls = 0

            def run(self, plan):
                CountingSerial.calls += 1
                run = super().run(plan)
                run.kind = "counting"
                return run

        register_backend("counting", CountingSerial)
        try:
            portfolio = run_portfolio(
                coefficients, 3,
                SaOptions(seed=1, restarts=2, backend="counting", **FAST),
            )
            assert portfolio.executor == "counting"
            assert CountingSerial.calls == 1
        finally:
            _BACKENDS.pop("counting", None)

    def test_register_rejects_bad_name(self):
        with pytest.raises(OptionsError, match="non-empty string"):
            register_backend("", SerialBackend)


# ----------------------------------------------------------------------
# Cross-backend determinism (the acceptance pin)
# ----------------------------------------------------------------------
class TestBackendParity:
    @pytest.fixture(scope="class")
    def per_backend(self, coefficients):
        results = {}
        for backend, jobs in (("serial", 1), ("process", 2), ("queue", 1)):
            results[backend] = run_portfolio(
                coefficients, 3,
                SaOptions(seed=11, restarts=4, jobs=jobs, backend=backend, **FAST),
            )
        return results

    def test_bitwise_identical_best(self, per_backend):
        serial = per_backend["serial"]
        for backend in ("process", "queue"):
            other = per_backend[backend]
            assert other.objective6 == serial.objective6
            assert other.best_restart == serial.best_restart
            np.testing.assert_array_equal(other.x, serial.x)
            np.testing.assert_array_equal(other.y, serial.y)

    def test_identical_per_restart_records(self, per_backend):
        serial = per_backend["serial"]
        for backend in ("process", "queue"):
            other = per_backend[backend]
            assert other.restart_objectives == serial.restart_objectives
            assert other.restart_seeds == serial.restart_seeds
            assert [o.iterations for o in other.outcomes] == [
                o.iterations for o in serial.outcomes
            ]

    def test_executor_label(self, per_backend):
        assert per_backend["serial"].executor == "serial"
        assert per_backend["queue"].executor == "queue"
        # the pool may legitimately fall back to threads on exotic
        # platforms; on CI/linux it is the process pool.
        assert per_backend["process"].executor in ("process", "thread")

    def test_backend_routes_through_sa_partitioner(self, coefficients):
        result = SaPartitioner(
            coefficients, 3,
            options=SaOptions(seed=11, restarts=2, backend="queue", **FAST),
        ).solve()
        assert result.metadata["executor"] == "queue"
        assert result.metadata["pruned_restarts"] == 0

    def test_explicit_backend_with_single_restart(self, coefficients):
        """backend= routes restarts=1 through the portfolio machinery."""
        single = SaPartitioner(
            coefficients, 3, options=SaOptions(seed=11, **FAST)
        ).solve()
        queued = SaPartitioner(
            coefficients, 3,
            options=SaOptions(seed=11, backend="queue", **FAST),
        ).solve()
        assert queued.metadata["executor"] == "queue"
        assert queued.objective == single.objective
        np.testing.assert_array_equal(queued.x, single.x)
        np.testing.assert_array_equal(queued.y, single.y)

    def test_advise_accepts_backend_option(self):
        instance = small_random_instance(5, num_tables=4, max_attributes_per_table=8)
        reports = {
            backend: advise(
                SolveRequest(
                    instance, 3, strategy="sa-portfolio", seed=11,
                    options={"restarts": 3, "backend": backend, **FAST},
                )
            )
            for backend in ("serial", "queue")
        }
        serial, queue = reports["serial"].result, reports["queue"].result
        assert queue.objective == serial.objective
        np.testing.assert_array_equal(queue.x, serial.x)
        assert queue.metadata["executor"] == "queue"


class TestAutoBackendDisambiguation:
    """"backend" names the MIP backend for "qp" and the execution
    backend for "sa"; the "auto" strategy routes the key by value and
    drops it when it belongs to the road not taken."""

    def test_auto_qp_pick_drops_execution_backend(self):
        instance = small_random_instance(5)  # small: auto picks qp
        report = advise(
            SolveRequest(
                instance, 2, strategy="auto", seed=1,
                options={"backend": "queue", "restarts": 2},
            )
        )
        assert report.result.metadata["auto_pick"] == "qp"

    def test_auto_sa_pick_drops_mip_backend(self):
        instance = small_random_instance(5)
        report = advise(
            SolveRequest(
                instance, 2, strategy="auto", seed=1,
                options={"backend": "scipy", "auto_cutoff": 1, **FAST},
            )
        )
        assert report.result.metadata["auto_pick"] == "sa"
        assert report.result.metadata.get("executor") is None  # no portfolio

    def test_auto_sa_pick_keeps_execution_backend(self):
        instance = small_random_instance(5)
        report = advise(
            SolveRequest(
                instance, 2, strategy="auto", seed=1,
                options={"backend": "queue", "auto_cutoff": 1, **FAST},
            )
        )
        assert report.result.metadata["auto_pick"] == "sa"
        assert report.result.metadata["executor"] == "queue"

    def test_auto_sa_pick_rejects_unknown_backend(self):
        """A typo'd backend must raise, not silently fall back."""
        instance = small_random_instance(5)
        with pytest.raises(OptionsError, match="neither a portfolio"):
            advise(
                SolveRequest(
                    instance, 2, strategy="auto", seed=1,
                    options={"backend": "qeue", "auto_cutoff": 1, **FAST},
                )
            )


# ----------------------------------------------------------------------
# Queue envelopes
# ----------------------------------------------------------------------
class TestQueueEnvelopes:
    def test_task_envelope_round_trips(self, coefficients):
        options = SaOptions(seed=11, restarts=4, **FAST)
        envelope = encode_restart_task(
            coefficients, 3, options, RestartTask(restart=2, seed=77)
        )
        payload = decode_restart_task(envelope)
        assert payload["restart"] == 2
        assert payload["kind"] == "sa-restart"
        request = SolveRequest.from_dict(payload["request"])
        assert request.strategy == "sa"
        assert request.seed == 77
        assert request.options["restarts"] == 1  # single-run options
        assert request.options["jobs"] == 1
        # the request itself keeps its exact JSON round-trip
        assert SolveRequest.from_json(request.to_json()).to_dict() == request.to_dict()

    def test_task_envelope_bytes_stable(self, coefficients):
        options = SaOptions(seed=11, restarts=4, **FAST)
        first = encode_restart_task(coefficients, 3, options, RestartTask(1, 5))
        second = encode_restart_task(coefficients, 3, options, RestartTask(1, 5))
        assert first == second

    def test_replay_is_byte_identical(self, coefficients):
        options = SaOptions(seed=11, **FAST)
        envelope = encode_restart_task(
            coefficients, 3, options, RestartTask(restart=0, seed=11)
        )
        worker = QueueWorker()
        first = worker.run(envelope)
        second = worker.run(envelope)
        assert first == second
        payload = json.loads(first)
        assert payload["kind"] == "sa-restart-result"
        assert "wall_time" not in payload  # transport-dependent, not wire

    def test_result_matches_direct_run(self, coefficients):
        """Decoded queue outcomes equal the in-process annealer's."""
        options = SaOptions(seed=11, **FAST)
        direct = SaPartitioner(coefficients, 3, options=options).solve()
        envelope = encode_restart_task(
            coefficients, 3, options, RestartTask(restart=0, seed=11)
        )
        outcome = decode_restart_result(QueueWorker().run(envelope))
        assert outcome.objective6 == direct.metadata["objective6"]
        np.testing.assert_array_equal(outcome.x, direct.x)
        np.testing.assert_array_equal(outcome.y, direct.y)
        assert outcome.iterations == direct.metadata["iterations"]

    def test_queue_rejects_non_canonical_coefficients(self, coefficients):
        """The wire format ships (instance, parameters) only; edited
        coefficient arrays must be refused, not silently re-derived."""
        import dataclasses

        doctored = dataclasses.replace(coefficients, c1=coefficients.c1 * 2.0)
        with pytest.raises(OptionsError, match="non-canonical"):
            run_portfolio(
                doctored, 3,
                SaOptions(seed=1, restarts=2, backend="queue", **FAST),
            )

    def test_task_version_and_kind_checked(self, coefficients):
        options = SaOptions(seed=1, **FAST)
        envelope = encode_restart_task(
            coefficients, 2, options, RestartTask(0, 1)
        )
        payload = json.loads(envelope)
        payload["format_version"] = 99
        with pytest.raises(OptionsError, match="format_version"):
            decode_restart_task(json.dumps(payload))
        payload["format_version"] = ENVELOPE_FORMAT_VERSION
        payload["kind"] = "sa-restart-result"
        with pytest.raises(OptionsError, match="kind"):
            decode_restart_task(json.dumps(payload))
        with pytest.raises(OptionsError, match="kind"):
            decode_restart_result(envelope)
        # the result leg enforces the version stamp too
        result = QueueWorker().run(envelope)
        tampered = json.loads(result)
        tampered["format_version"] = 99
        with pytest.raises(OptionsError, match="format_version"):
            decode_restart_result(json.dumps(tampered))


# ----------------------------------------------------------------------
# Queue fault paths
# ----------------------------------------------------------------------
class FlakyWorker(QueueWorker):
    """Raises the first ``failures_per_restart`` times a restart runs."""

    def __init__(self, failures_per_restart: dict[int, int]):
        self.failures_per_restart = dict(failures_per_restart)
        self.seen: list[int] = []

    def run(self, envelope: str) -> str:
        restart = json.loads(envelope)["restart"]
        self.seen.append(restart)
        if self.failures_per_restart.get(restart, 0) > 0:
            self.failures_per_restart[restart] -= 1
            raise RuntimeError(f"injected fault on restart {restart}")
        return super().run(envelope)


class TestQueueFaults:
    def test_failed_restart_is_requeued_and_deterministic(self, coefficients):
        options = SaOptions(seed=11, restarts=4, **FAST)
        reference = run_portfolio(coefficients, 3, options, backend="serial")

        worker = FlakyWorker({1: 1, 2: 2})
        backend = QueueBackend(worker=worker, max_retries=2)
        portfolio = run_portfolio(coefficients, 3, options, backend=backend)

        # every restart completed despite the mid-restart faults ...
        assert len(portfolio.outcomes) == 4
        assert backend.failures == {1: 1, 2: 2}
        # ... the failed tasks went to the back of the queue ...
        assert worker.seen == [0, 1, 2, 3, 1, 2, 2]
        # ... and the best is bitwise identical to the serial reference.
        assert portfolio.objective6 == reference.objective6
        assert portfolio.best_restart == reference.best_restart
        np.testing.assert_array_equal(portfolio.x, reference.x)
        np.testing.assert_array_equal(portfolio.y, reference.y)
        assert portfolio.restart_objectives == reference.restart_objectives

    def test_exhausted_retries_raise(self, coefficients):
        worker = FlakyWorker({0: 99})
        backend = QueueBackend(worker=worker, max_retries=1)
        with pytest.raises(SolverError, match="restart 0"):
            run_portfolio(
                coefficients, 3,
                SaOptions(seed=11, restarts=2, **FAST),
                backend=backend,
            )

    def test_negative_max_retries_rejected_at_construction(self):
        """A negative budget is a misconfiguration, not 'never retry' —
        it fails eagerly, before any solve starts."""
        with pytest.raises(OptionsError, match="max_retries"):
            QueueBackend(max_retries=-1)
        with pytest.raises(OptionsError, match="max_retries"):
            SaOptions(max_retries=-1)
        # 0 is legal and means: failed restarts are never retried.
        assert QueueBackend(max_retries=0).max_retries == 0


# ----------------------------------------------------------------------
# Pool worker death
# ----------------------------------------------------------------------
class TestPoolWorkerDeath:
    """A pool worker dying mid-restart must fail the solve loudly,
    naming the restart — there is no envelope to requeue, and a silently
    incomplete best-of-N would change the result."""

    def test_process_pool_worker_death_names_the_restart(
        self, coefficients, monkeypatch
    ):
        import multiprocessing

        from repro.sa.backends import pool

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("death injection relies on fork inheriting the patch")

        real_run_restart = pool.run_restart

        def dying(coeffs, num_sites, options, restart, seed, deadline):
            if restart == 1:
                os._exit(13)  # abrupt death: no exception, no cleanup
            return real_run_restart(
                coeffs, num_sites, options, restart, seed, deadline
            )

        monkeypatch.setattr(pool, "run_restart", dying)
        with pytest.raises(
            SolverError, match=r"process pool worker failed restart \d+"
        ):
            run_portfolio(
                coefficients, 3,
                SaOptions(seed=11, restarts=2, jobs=1, backend="process", **FAST),
            )

    def test_thread_pool_worker_failure_names_the_restart(
        self, coefficients, monkeypatch
    ):
        from repro.sa.backends import pool

        def raising(coeffs, num_sites, options, restart, seed, deadline):
            raise RuntimeError(f"injected death on restart {restart}")

        monkeypatch.setattr(pool, "run_restart", raising)
        with pytest.raises(
            SolverError, match="thread pool worker failed restart"
        ):
            run_portfolio(
                coefficients, 3,
                SaOptions(seed=11, restarts=2, jobs=2, backend="thread", **FAST),
            )


# ----------------------------------------------------------------------
# Shared incumbent + pruning
# ----------------------------------------------------------------------
class TestSharedIncumbent:
    def test_publish_keeps_objective_restart_minimum(self):
        incumbent = SharedIncumbent()
        incumbent.publish(10.0, 3)
        incumbent.publish(10.0, 1)  # same objective, earlier restart wins
        incumbent.publish(12.0, 0)  # worse objective loses
        assert incumbent.snapshot() == (10.0, 1)
        assert incumbent.published == 3

    def test_proof_requires_bound_and_earlier_index(self):
        incumbent = SharedIncumbent(lower_bound=10.0)
        assert not incumbent.proves_unbeatable(5)  # nothing published
        incumbent.publish(11.0, 1)
        assert not incumbent.proves_unbeatable(5)  # bound not reached
        incumbent.publish(10.0, 2)
        assert incumbent.proves_unbeatable(5)
        assert not incumbent.proves_unbeatable(2)  # itself
        assert not incumbent.proves_unbeatable(0)  # earlier index may tie-win

    def test_default_bound_never_proves(self):
        incumbent = SharedIncumbent()
        incumbent.publish(0.0, 0)
        assert incumbent.lower_bound == -math.inf
        assert not incumbent.proves_unbeatable(1)


class TestLowerBound:
    def test_bound_sound_on_random_instances(self):
        """The bound never exceeds any feasible solution's objective."""
        for seed in range(6):
            instance = small_random_instance(seed)
            for lam in (1.0, 0.5):
                coefficients = build_coefficients(
                    instance, CostParameters(load_balance_lambda=lam)
                )
                bound = objective6_lower_bound(coefficients, 3)
                evaluator = SolutionEvaluator(coefficients)
                for solution_seed in range(4):
                    x, y = random_feasible_solution(coefficients, 3, solution_seed)
                    assert bound <= evaluator.objective6(x, y) + 1e-9

    def test_bound_retreats_under_fractional_penalty(self):
        """Fractional network penalties make the evaluator's c1/c2
        einsums inexact (the p*B cancellation rounds), so the bound must
        leave its exact fast-path and retreat below every *reported*
        objective — strictly, no epsilon slop."""
        for penalty in (0.1, 7.9):
            for seed in range(4):
                instance = small_random_instance(seed)
                coefficients = build_coefficients(
                    instance,
                    CostParameters(
                        network_penalty=penalty, load_balance_lambda=1.0
                    ),
                )
                bound = objective6_lower_bound(coefficients, 3)
                evaluator = SolutionEvaluator(coefficients)
                for solution_seed in range(4):
                    x, y = random_feasible_solution(coefficients, 3, solution_seed)
                    assert bound <= evaluator.objective6(x, y)

    def test_bound_sound_on_single_site(self, coefficients):
        """|S| = 1 admits exactly one solution; the bound stays below it
        (strictly, when the instance has table-fraction-only reads that
        co-location never forces)."""
        evaluator = SolutionEvaluator(coefficients)
        x = np.ones((coefficients.num_transactions, 1), dtype=bool)
        y = np.ones((coefficients.num_attributes, 1), dtype=bool)
        assert objective6_lower_bound(coefficients, 1) <= evaluator.objective6(x, y)

    def test_bound_tight_when_all_reads_forced(self):
        """With alpha == beta (every attribute of a touched table is
        read directly) and pure cost weighting, every feasible solution
        pays exactly the floor — the bound is an equality."""
        coefficients = build_coefficients(
            read_only_instance(), CostParameters(load_balance_lambda=1.0)
        )
        bound = objective6_lower_bound(coefficients, 3)
        evaluator = SolutionEvaluator(coefficients)
        for solution_seed in range(4):
            x, y = random_feasible_solution(coefficients, 3, solution_seed)
            assert evaluator.objective6(x, y) == bound


class TestPruning:
    @pytest.fixture(scope="class")
    def flat_coefficients(self):
        return build_coefficients(
            read_only_instance(), CostParameters(load_balance_lambda=1.0)
        )

    @pytest.mark.parametrize("backend", ["serial", "queue"])
    def test_prune_skips_doomed_restarts_bitwise_identically(
        self, flat_coefficients, backend
    ):
        options = dict(seed=3, restarts=5, backend=backend, **FAST)
        pruned = run_portfolio(
            flat_coefficients, 3, SaOptions(prune=True, **options)
        )
        full = run_portfolio(flat_coefficients, 3, SaOptions(**options))
        # restart 0 reaches the provable floor, so 1..4 are skipped ...
        assert pruned.pruned == 4
        assert len(pruned.outcomes) == 1
        assert len(pruned.outcomes) + pruned.pruned + pruned.cancelled == 5
        # ... without changing anything about the returned best.
        assert pruned.objective6 == full.objective6
        assert pruned.best_restart == full.best_restart == 0
        np.testing.assert_array_equal(pruned.x, full.x)
        np.testing.assert_array_equal(pruned.y, full.y)
        assert pruned.objective6 == objective6_lower_bound(flat_coefficients, 3)

    def test_pool_prune_is_best_effort_but_identical(self, flat_coefficients):
        """The pool cancels unstarted futures only; results still match."""
        options = dict(seed=3, restarts=5, jobs=2, backend="process", **FAST)
        pruned = run_portfolio(
            flat_coefficients, 3, SaOptions(prune=True, **options)
        )
        full = run_portfolio(flat_coefficients, 3, SaOptions(**options))
        assert pruned.objective6 == full.objective6
        assert pruned.best_restart == full.best_restart
        np.testing.assert_array_equal(pruned.x, full.x)
        assert 0 <= pruned.pruned <= 4
        assert len(pruned.outcomes) + pruned.pruned == 5

    def test_prune_noop_when_bound_unreachable(self, coefficients):
        """On ordinary instances the proof never fires: zero skips and
        the exact same portfolio as prune=False."""
        options = dict(seed=11, restarts=4, **FAST)
        pruned = run_portfolio(coefficients, 3, SaOptions(prune=True, **options))
        full = run_portfolio(coefficients, 3, SaOptions(**options))
        assert pruned.pruned == 0
        assert pruned.restart_objectives == full.restart_objectives
        np.testing.assert_array_equal(pruned.x, full.x)

    def test_prune_metadata_exposed(self, flat_coefficients):
        result = SaPartitioner(
            flat_coefficients, 3,
            options=SaOptions(seed=3, restarts=5, prune=True, **FAST),
        ).solve()
        assert result.metadata["pruned_restarts"] == 4
        assert result.metadata["executor"] == "serial"


# ----------------------------------------------------------------------
# Plan plumbing
# ----------------------------------------------------------------------
class TestPortfolioPlan:
    def test_tasks_enumerate_seeds(self, coefficients):
        seeds = derive_restart_seeds(7, 3)
        plan = PortfolioPlan(
            coefficients=coefficients, num_sites=2,
            options=SaOptions(seed=7, restarts=3, **FAST), seeds=seeds,
        )
        tasks = plan.tasks()
        assert [task.restart for task in tasks] == [0, 1, 2]
        assert [task.seed for task in tasks] == seeds
        assert plan.jobs == 1
        assert plan.remaining() is None
        assert not plan.expired()

    def test_backend_run_defaults(self):
        run = BackendRun(outcomes=[])
        assert (run.cancelled, run.pruned, run.kind) == (0, 0, "serial")
