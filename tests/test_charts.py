"""ASCII chart rendering of sweep series."""

import pytest

from repro.analysis.charts import bar_chart, render_series, render_series_breakdown
from repro.analysis.sweeps import SweepPoint, SweepSeries


def _series():
    series = SweepSeries("demo", "p", "qp")
    for parameter, objective, local in ((0.0, 100.0, 100.0), (8.0, 160.0, 120.0)):
        series.points.append(
            SweepPoint(
                parameter=parameter,
                objective=objective,
                local_access=local,
                transfer=(objective - local) / 8 if parameter else 0.0,
                max_load=50.0,
                replication_factor=1.2,
                wall_time=0.1,
            )
        )
    return series


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_values_render_empty(self):
        chart = bar_chart(["a", "b"], [0.0, 4.0], width=8)
        assert chart.splitlines()[0].count("#") == 0

    def test_small_positive_values_get_one_char(self):
        chart = bar_chart(["a", "b"], [0.001, 100.0], width=10)
        assert chart.splitlines()[0].count("#") == 1

    def test_title_and_unit(self):
        chart = bar_chart(["x"], [3.0], title="T", unit="s")
        assert chart.startswith("T\n")
        assert "3s" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_chart(self):
        assert "empty" in bar_chart([], [])


class TestSeriesRendering:
    def test_render_series_labels_points(self):
        text = render_series(_series())
        assert "p=0" in text and "p=8" in text
        assert "objective (4)" in text

    def test_breakdown_marks_transfer(self):
        text = render_series_breakdown(_series())
        # The p=8 row has a transfer component rendered as '+'.
        p8_line = next(line for line in text.splitlines() if line.startswith("p=8"))
        assert "+" in p8_line
        p0_line = next(line for line in text.splitlines() if line.startswith("p=0"))
        assert "+" not in p0_line

    def test_empty_series(self):
        empty = SweepSeries("demo", "p", "qp")
        assert "empty" in render_series_breakdown(empty)
