"""The documentation snippet checker (tools/check_doc_snippets.py).

The snippets themselves are executed by the CI docs job; here we pin
the extractor's parsing rules (fences, language filter, the no-run
marker) and that the repository's own docs contain runnable-or-exempt
python blocks only — cheaply, without running them.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "check_doc_snippets", REPO_ROOT / "tools" / "check_doc_snippets.py"
)
check_doc_snippets = importlib.util.module_from_spec(spec)
# dataclass field resolution needs the module visible while executing.
sys.modules[spec.name] = check_doc_snippets
spec.loader.exec_module(check_doc_snippets)

MARKDOWN = """\
# Title

```python
print("first")
```

prose in between

<!-- snippet: no-run -->

```python
this is not even python
```

```bash
echo "ignored: not python"
```

```
plain fence, no language
```

```python
print("second")
```
"""


def test_extract_snippets_parses_fences(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(MARKDOWN)
    snippets = check_doc_snippets.extract_snippets(page)
    assert [s.language for s in snippets] == ["python", "python", "bash", "", "python"]
    assert snippets[0].code == 'print("first")\n'
    assert snippets[0].line == 3
    assert not snippets[0].no_run


def test_no_run_marker_applies_to_next_block_only(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(MARKDOWN)
    python_blocks = [
        s for s in check_doc_snippets.extract_snippets(page) if s.language == "python"
    ]
    assert [s.no_run for s in python_blocks] == [False, True, False]


def test_marker_interrupted_by_prose_does_not_apply(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "<!-- snippet: no-run -->\n\nsome prose resets it\n\n```python\nx = 1\n```\n"
    )
    (snippet,) = check_doc_snippets.extract_snippets(page)
    assert not snippet.no_run


def test_label_handles_out_of_tree_files(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("```python\nx = 1\n```\n")
    (snippet,) = check_doc_snippets.extract_snippets(page)
    assert snippet.label == f"{page}:1"


def test_run_snippet_reports_failures(tmp_path):
    snippet = check_doc_snippets.Snippet(
        path=REPO_ROOT / "README.md", line=1, language="python",
        code="raise SystemExit(3)\n", no_run=False,
    )
    ok, _ = check_doc_snippets.run_snippet(snippet)
    assert not ok
    snippet.code = "import repro  # PYTHONPATH=src is wired in\n"
    ok, output = check_doc_snippets.run_snippet(snippet)
    assert ok, output


def test_repo_docs_have_only_runnable_or_exempt_python_blocks():
    """Every python block in README/docs is either exempt or passed the
    last docs-job run; here we just pin that the files parse and python
    blocks exist (the docs job executes them)."""
    files = [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md") in files
    assert (REPO_ROOT / "docs" / "PAPER_MAP.md") in files
    python_blocks = [
        snippet
        for path in files
        for snippet in check_doc_snippets.extract_snippets(path)
        if snippet.language == "python"
    ]
    assert len(python_blocks) >= 3
