"""The from-scratch branch-and-bound MIP solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.branch_and_bound import (
    BranchAndBoundOptions,
    solution_violations,
    solve_mip_bnb,
)
from repro.solver.model import MipModel
from repro.solver.scipy_backend import solve_mip_scipy
from repro.solver.solution import SolutionStatus


def _knapsack_model():
    # max 10a + 6b + 4c, 5a + 4b + 3c <= 10, binaries -> optimum 16 (a, b).
    model = MipModel("knapsack")
    a = model.binary_variable("a")
    b = model.binary_variable("b")
    c = model.binary_variable("c")
    model.add_constraint(5 * a + 4 * b + 3 * c <= 10)
    model.minimize(-10 * a - 6 * b - 4 * c)
    return model


class TestKnownMips:
    def test_knapsack(self):
        model = _knapsack_model()
        solution = solve_mip_bnb(model.to_standard_arrays())
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(-16.0)

    def test_integer_rounding_not_assumed(self):
        # LP relaxation optimum is fractional; integer optimum differs.
        model = MipModel()
        x = model.add_variable("x", upper=10, integer=True)
        y = model.add_variable("y", upper=10, integer=True)
        model.add_constraint(2 * x + 5 * y <= 16)
        model.minimize(-3 * x - 4 * y)
        solution = solve_mip_bnb(model.to_standard_arrays())
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(-24.0)  # x=8, y=0

    def test_infeasible_mip(self):
        model = MipModel()
        x = model.binary_variable("x")
        model.add_constraint(x >= 2)
        model.minimize(x)
        solution = solve_mip_bnb(model.to_standard_arrays())
        assert solution.status is SolutionStatus.INFEASIBLE

    def test_mixed_integer_continuous(self):
        model = MipModel()
        x = model.add_variable("x", upper=5, integer=True)
        y = model.add_variable("y", upper=5)
        model.add_constraint(x + y <= 4.5)
        model.minimize(-x - 2 * y)
        solution = solve_mip_bnb(model.to_standard_arrays())
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(-9.0)  # y=4.5, x=0

    def test_warm_start_accepted(self):
        model = _knapsack_model()
        arrays = model.to_standard_arrays()
        incumbent = np.array([1.0, 1.0, 0.0])
        solution = solve_mip_bnb(arrays, incumbent=incumbent)
        assert solution.status is SolutionStatus.OPTIMAL
        assert solution.objective == pytest.approx(-16.0)

    def test_infeasible_warm_start_ignored(self):
        model = _knapsack_model()
        arrays = model.to_standard_arrays()
        incumbent = np.array([1.0, 1.0, 1.0])  # violates the capacity
        solution = solve_mip_bnb(arrays, incumbent=incumbent)
        assert solution.objective == pytest.approx(-16.0)

    def test_node_limit_returns_feasible_or_no_solution(self):
        model = _knapsack_model()
        options = BranchAndBoundOptions(node_limit=1)
        solution = solve_mip_bnb(model.to_standard_arrays(), options=options)
        assert solution.status in (
            SolutionStatus.OPTIMAL,  # may solve at the root
            SolutionStatus.FEASIBLE,
            SolutionStatus.NO_SOLUTION,
        )

    def test_bound_is_valid(self):
        model = _knapsack_model()
        solution = solve_mip_bnb(model.to_standard_arrays())
        assert solution.bound is not None
        assert solution.bound <= solution.objective + 1e-9


class TestSolutionViolations:
    def test_counts_bound_and_row_violations(self):
        model = MipModel()
        x = model.add_variable("x", upper=1)
        model.add_constraint(x <= 0.5)
        arrays = model.to_standard_arrays()
        assert solution_violations(arrays, np.array([0.4])) == 0.0
        assert solution_violations(arrays, np.array([0.9])) > 0.0
        assert solution_violations(arrays, np.array([1.5])) > 0.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_matches_highs_on_random_mips(seed):
    """Differential test against scipy.optimize.milp."""
    rng = np.random.default_rng(seed)
    model = MipModel(f"m{seed}")
    n = int(rng.integers(2, 6))
    variables = [
        model.add_variable(
            f"v{i}",
            upper=float(rng.integers(1, 6)),
            integer=bool(rng.integers(0, 2)),
        )
        for i in range(n)
    ]
    for _ in range(int(rng.integers(1, 5))):
        coefficients = rng.integers(-4, 5, size=n).astype(float)
        expr = sum(c * v for c, v in zip(coefficients, variables))
        rhs = float(rng.integers(-10, 11))
        if rng.integers(0, 2):
            model.add_constraint(expr <= rhs)
        else:
            model.add_constraint(expr >= rhs)
    model.minimize(
        sum(float(rng.integers(-5, 6)) * v for v in variables)
    )
    arrays = model.to_standard_arrays()
    ours = solve_mip_bnb(arrays, BranchAndBoundOptions(relative_gap=1e-9))
    reference = solve_mip_scipy(arrays, gap=1e-9)
    assert ours.status.has_solution == reference.status.has_solution
    if ours.objective is not None:
        assert ours.objective == pytest.approx(reference.objective, abs=1e-5)
        assert solution_violations(arrays, ours.values) == 0.0
