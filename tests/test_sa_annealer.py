"""The simulated annealer (Algorithm 1) and its building blocks."""

import dataclasses
import math

import numpy as np
import pytest

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator, check_solution_feasible
from repro.sa.annealer import AnnealingTrace, SimulatedAnnealer, initial_temperature
from repro.sa.neighborhood import (
    extend_replication,
    move_components,
    move_transactions,
    subset_size,
)
from repro.sa.options import SaOptions
from repro.sa.state import (
    component_placement_to_x,
    random_transaction_placement,
    read_sharing_components,
)
from tests.conftest import brute_force_optimum, small_random_instance


class TestInitialTemperature:
    def test_section_5_1_rule(self):
        """tau = -0.05 C* / ln(0.5): a 5%-worse solution is accepted
        with probability 50% initially."""
        reference = 1000.0
        tau = initial_temperature(reference)
        delta = 0.05 * reference
        assert math.exp(-delta / tau) == pytest.approx(0.5)

    def test_guards_zero_cost(self):
        assert initial_temperature(0.0) > 0


class TestNeighborhoods:
    def test_subset_size_at_least_one(self):
        assert subset_size(3, 0.1) == 1
        assert subset_size(100, 0.1) == 10

    def test_move_transactions_keeps_placement_valid(self):
        rng = np.random.default_rng(0)
        x = random_transaction_placement(20, 3, rng)
        moved = move_transactions(x, rng, 0.1)
        assert (moved.sum(axis=1) == 1).all()
        assert (moved != x).any()
        # Exactly 10% (2 of 20) relocated.
        assert (moved != x).any(axis=1).sum() == 2

    def test_move_transactions_single_site_noop(self):
        rng = np.random.default_rng(0)
        x = random_transaction_placement(5, 1, rng)
        np.testing.assert_array_equal(move_transactions(x, rng, 0.5), x)

    def test_extend_replication_only_adds(self):
        rng = np.random.default_rng(1)
        y = np.zeros((30, 3), dtype=bool)
        y[np.arange(30), rng.integers(0, 3, 30)] = True
        extended = extend_replication(y, rng, 0.1)
        assert (extended & ~y).sum() > 0  # something added
        assert not (y & ~extended).any()  # nothing removed
        assert extended.sum() > y.sum()  # strict growth (paper's rule)

    def test_extend_replication_skips_full_rows(self):
        rng = np.random.default_rng(2)
        y = np.ones((4, 2), dtype=bool)
        np.testing.assert_array_equal(extend_replication(y, rng, 1.0), y)

    def test_move_components(self):
        rng = np.random.default_rng(3)
        assignment = np.array([0, 0, 1, 2])
        moved = move_components(assignment, 3, rng, 0.5)
        assert moved.shape == assignment.shape
        assert (moved != assignment).sum() >= 1


class TestComponents:
    def test_read_sharing_components(self, tiny_coefficients):
        labels = read_sharing_components(tiny_coefficients)
        # Reader and Writer share Narrow.key -> one component.
        assert labels[0] == labels[1]

    def test_independent_transactions_split(self):
        instance = small_random_instance(
            0, num_transactions=6, num_tables=4, update_percent=0.0
        )
        coefficients = build_coefficients(instance, CostParameters())
        labels = read_sharing_components(coefficients)
        x = component_placement_to_x(labels, np.zeros(labels.max() + 1, dtype=int), 2)
        assert (x.sum(axis=1) == 1).all()


class TestAnnealer:
    def test_solution_always_feasible(self):
        for seed in range(4):
            instance = small_random_instance(seed)
            coefficients = build_coefficients(instance, CostParameters())
            annealer = SimulatedAnnealer(
                coefficients, 3,
                SaOptions(inner_loops=5, max_outer_loops=5, seed=seed),
            )
            x, y, _ = annealer.run()
            assert check_solution_feasible(coefficients, x, y)

    def test_not_worse_than_single_site_blended(self):
        """The annealer's best blended objective should beat (or match)
        cramming everything on one site."""
        instance = small_random_instance(7)
        coefficients = build_coefficients(instance, CostParameters())
        evaluator = SolutionEvaluator(coefficients)
        num_t, num_a = coefficients.num_transactions, coefficients.num_attributes
        one_site = evaluator.objective6(
            np.pad(np.ones((num_t, 1), dtype=bool), ((0, 0), (0, 1))),
            np.pad(np.ones((num_a, 1), dtype=bool), ((0, 0), (0, 1))),
        )
        annealer = SimulatedAnnealer(
            coefficients, 2, SaOptions(inner_loops=10, max_outer_loops=15, seed=0)
        )
        _, _, best = annealer.run()
        assert best <= one_site + 1e-9

    def test_near_optimal_on_tiny_instances(self):
        """On enumerable instances with lambda = 1 the annealer should
        land within 10% of the brute-force optimum."""
        gaps = []
        for seed in (0, 3, 7):
            instance = small_random_instance(
                seed, num_transactions=3, num_tables=2
            )
            coefficients = build_coefficients(
                instance, CostParameters(load_balance_lambda=1.0)
            )
            optimum, _, _ = brute_force_optimum(coefficients, 2)
            annealer = SimulatedAnnealer(
                coefficients, 2,
                SaOptions(inner_loops=15, max_outer_loops=20, seed=seed),
            )
            _, _, best = annealer.run()
            gaps.append(best / optimum)
        assert min(gaps) <= 1.001  # usually exact on at least one
        assert max(gaps) <= 1.10

    def test_trace_is_populated(self):
        instance = small_random_instance(1)
        coefficients = build_coefficients(instance, CostParameters())
        annealer = SimulatedAnnealer(
            coefficients, 2, SaOptions(inner_loops=4, max_outer_loops=3, seed=1)
        )
        annealer.run()
        assert annealer.trace.iterations > 0
        assert annealer.trace.outer_loops >= 1
        assert len(annealer.trace.best_history) == annealer.trace.outer_loops

    def test_time_limit_respected(self):
        instance = small_random_instance(2, num_transactions=8, num_tables=6)
        coefficients = build_coefficients(instance, CostParameters())
        annealer = SimulatedAnnealer(
            coefficients, 3,
            SaOptions(inner_loops=1000, max_outer_loops=1000,
                      time_limit=0.3, seed=2),
        )
        import time

        started = time.perf_counter()
        annealer.run()
        assert time.perf_counter() - started < 3.0

    def test_disjoint_mode_produces_disjoint_solution(self):
        instance = small_random_instance(4)
        coefficients = build_coefficients(instance, CostParameters())
        annealer = SimulatedAnnealer(
            coefficients, 2,
            SaOptions(inner_loops=5, max_outer_loops=5, seed=4, disjoint=True),
        )
        x, y, _ = annealer.run()
        assert (y.sum(axis=1) == 1).all()
        assert check_solution_feasible(coefficients, x, y)

    def test_exact_subsolver_runs(self):
        instance = small_random_instance(5, num_transactions=3, num_tables=2)
        coefficients = build_coefficients(instance, CostParameters())
        annealer = SimulatedAnnealer(
            coefficients, 2,
            SaOptions(inner_loops=2, max_outer_loops=2, seed=5,
                      subsolver="exact", exact_time_limit=5.0),
        )
        x, y, _ = annealer.run()
        assert check_solution_feasible(coefficients, x, y)


def _collapsed_cost(coefficients, num_sites, disjoint=False):
    """Objective (6) of the trivial all-on-site-0 layout."""
    from repro.costmodel.evaluator import SolutionEvaluator
    from repro.sa.subsolve import SubproblemSolver

    x = np.zeros((coefficients.num_transactions, num_sites), dtype=bool)
    x[:, 0] = True
    subsolver = SubproblemSolver(coefficients, num_sites)
    y = subsolver.optimize_y_greedy(x, disjoint=disjoint)
    return SolutionEvaluator(coefficients).objective6(x, y)


class TestExitPaths:
    """Every exit — including wall-clock timeouts — runs through the
    collapsed one-site guard (regression for the unguarded time-limit
    early returns)."""

    @pytest.mark.parametrize("incremental", [True, False])
    def test_timeout_blended_never_worse_than_collapsed(self, incremental):
        for seed in range(5):
            instance = small_random_instance(seed, num_transactions=8, num_tables=6)
            coefficients = build_coefficients(instance, CostParameters())
            annealer = SimulatedAnnealer(
                coefficients, 3,
                SaOptions(inner_loops=50, max_outer_loops=50, seed=seed,
                          time_limit=0.0, incremental=incremental),
            )
            x, y, cost = annealer.run()
            assert check_solution_feasible(coefficients, x, y)
            assert cost <= _collapsed_cost(coefficients, 3) + 1e-9

    @pytest.mark.parametrize("incremental", [True, False])
    def test_timeout_disjoint_never_worse_than_collapsed(self, incremental):
        for seed in range(5):
            instance = small_random_instance(seed, num_transactions=8, num_tables=6)
            coefficients = build_coefficients(instance, CostParameters())
            annealer = SimulatedAnnealer(
                coefficients, 3,
                SaOptions(inner_loops=50, max_outer_loops=50, seed=seed,
                          time_limit=0.0, disjoint=True, incremental=incremental),
            )
            x, y, cost = annealer.run()
            assert check_solution_feasible(coefficients, x, y)
            assert cost <= _collapsed_cost(coefficients, 3, disjoint=True) + 1e-9

    def test_timeout_guard_actually_bites(self):
        """On at least one seed the unguarded exit would have returned
        a random start strictly worse than the collapsed layout."""
        from repro.costmodel.evaluator import SolutionEvaluator
        from repro.sa.state import random_transaction_placement
        from repro.sa.subsolve import SubproblemSolver

        bites = 0
        for seed in range(5):
            instance = small_random_instance(seed, num_transactions=8, num_tables=6)
            coefficients = build_coefficients(instance, CostParameters())
            rng = np.random.default_rng(seed)
            x = random_transaction_placement(coefficients.num_transactions, 3, rng)
            subsolver = SubproblemSolver(coefficients, 3)
            y = subsolver.optimize_y_greedy(x)
            start_cost = SolutionEvaluator(coefficients).objective6(x, y)
            if start_cost > _collapsed_cost(coefficients, 3) + 1e-9:
                bites += 1
        assert bites > 0


class TestAnnealingTrace:
    def test_best_history_uses_default_factory(self):
        """Regression: the field must not default to None (nor share
        one list between instances)."""
        field = AnnealingTrace.__dataclass_fields__["best_history"]
        assert field.default is dataclasses.MISSING
        assert field.default_factory is list
        first, second = AnnealingTrace(), AnnealingTrace()
        first.best_history.append(1.0)
        assert second.best_history == []
