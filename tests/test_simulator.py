"""The execution simulator and its exact-match property with the model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters, WriteAccounting
from repro.costmodel.evaluator import SolutionEvaluator
from repro.exceptions import SimulationError
from repro.model.schema import Attribute
from repro.partition.assignment import PartitioningResult, single_site_partitioning
from repro.simulator.engine import WorkloadSimulator
from repro.simulator.network import Network
from repro.simulator.storage import FractionStore, SiteStorage
from tests.conftest import random_feasible_solution, small_random_instance


class TestFractionStore:
    def _fraction(self):
        attributes = (
            Attribute("T", "a", 4),
            Attribute("T", "b", 8),
        )
        return FractionStore("T", attributes, capacity=16)

    def test_row_width(self):
        assert self._fraction().row_width == 12.0

    def test_read_accounts_whole_rows(self):
        fraction = self._fraction()
        touched = fraction.read_rows(3)
        assert touched == 36.0
        assert fraction.bytes_read == 36.0
        assert fraction.rows_read == 3

    def test_write_accounts_whole_rows(self):
        fraction = self._fraction()
        assert fraction.write_rows(2) == 24.0
        assert fraction.bytes_written == 24.0

    def test_has_attribute(self):
        fraction = self._fraction()
        assert fraction.has_attribute("a")
        assert not fraction.has_attribute("zz")

    def test_empty_fraction_rejected(self):
        with pytest.raises(SimulationError, match="empty fraction"):
            FractionStore("T", ())

    def test_site_storage_rejects_duplicates(self):
        storage = SiteStorage(0)
        storage.add_fraction(self._fraction())
        with pytest.raises(SimulationError, match="already stores"):
            storage.add_fraction(self._fraction())


class TestNetwork:
    def test_counts_directed_links(self):
        network = Network(3)
        network.transfer(0, 1, 100.0)
        network.transfer(0, 1, 50.0)
        network.transfer(2, 0, 10.0)
        assert network.total_bytes == 160.0
        assert network.link_bytes(0, 1) == 150.0
        assert network.messages == 3
        assert network.busiest_link() == ((0, 1), 150.0)

    def test_self_transfer_rejected(self):
        network = Network(2)
        with pytest.raises(SimulationError, match="never transfers to itself"):
            network.transfer(1, 1, 5.0)

    def test_range_checked(self):
        network = Network(2)
        with pytest.raises(SimulationError, match="out of range"):
            network.transfer(0, 5, 1.0)


def _result_for(coefficients, x, y):
    evaluator = SolutionEvaluator(coefficients)
    return PartitioningResult(
        coefficients=coefficients, x=x, y=y,
        objective=evaluator.objective4(x, y), solver="test",
    )


class TestSimulatorModelIdentity:
    """The headline property: simulated bytes == analytic cost model."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        num_sites=st.integers(min_value=1, max_value=3),
        penalty=st.sampled_from([0.0, 8.0]),
    )
    def test_exact_match_on_random_solutions(self, seed, num_sites, penalty):
        instance = small_random_instance(seed)
        coefficients = build_coefficients(
            instance, CostParameters(network_penalty=penalty)
        )
        x, y = random_feasible_solution(coefficients, num_sites, seed + 99)
        result = _result_for(coefficients, x, y)
        report = WorkloadSimulator(result).run()
        breakdown = result.breakdown()
        assert report.bytes_read == pytest.approx(breakdown.read_access)
        assert report.bytes_written == pytest.approx(breakdown.write_access)
        assert report.bytes_transferred == pytest.approx(breakdown.transfer)
        assert report.objective() == pytest.approx(result.objective)

    def test_single_site_no_network(self, tiny_coefficients):
        result = single_site_partitioning(tiny_coefficients)
        report = WorkloadSimulator(result).run()
        assert report.bytes_transferred == 0.0
        assert report.messages == 0
        assert report.objective() == pytest.approx(result.objective)

    def test_per_site_loads_match(self, tiny_coefficients):
        x, y = random_feasible_solution(tiny_coefficients, 2, 7)
        result = _result_for(tiny_coefficients, x, y)
        report = WorkloadSimulator(result).run()
        # Reads happen at the executing site only.
        evaluator = SolutionEvaluator(tiny_coefficients)
        loads = evaluator.site_loads(x, y)
        per_site = np.array(report.per_site_read) + np.array(report.per_site_written)
        np.testing.assert_allclose(per_site, loads)


class TestRelevantAccounting:
    def test_relevant_mode_never_exceeds_all_mode(self):
        instance = small_random_instance(42)
        coefficients = build_coefficients(instance, CostParameters())
        x, y = random_feasible_solution(coefficients, 2, 3)
        result = _result_for(coefficients, x, y)
        all_report = WorkloadSimulator(
            result, accounting=WriteAccounting.ALL_ATTRIBUTES
        ).run()
        relevant_report = WorkloadSimulator(
            result, accounting=WriteAccounting.RELEVANT_ATTRIBUTES
        ).run()
        assert relevant_report.bytes_written <= all_report.bytes_written + 1e-9
        # Reads and transfers are identical across modes.
        assert relevant_report.bytes_read == pytest.approx(all_report.bytes_read)
        assert relevant_report.bytes_transferred == pytest.approx(
            all_report.bytes_transferred
        )

    def test_relevant_mode_matches_evaluator(self):
        instance = small_random_instance(13)
        parameters = CostParameters(
            write_accounting=WriteAccounting.RELEVANT_ATTRIBUTES
        )
        coefficients = build_coefficients(instance, parameters)
        x, y = random_feasible_solution(coefficients, 2, 4)
        result = _result_for(coefficients, x, y)
        report = WorkloadSimulator(
            result, accounting=WriteAccounting.RELEVANT_ATTRIBUTES
        ).run()
        breakdown = result.breakdown()
        assert report.bytes_written == pytest.approx(breakdown.write_access)

    def test_no_attributes_mode_rejected(self, tiny_coefficients):
        result = single_site_partitioning(tiny_coefficients)
        with pytest.raises(SimulationError, match="NO_ATTRIBUTES"):
            WorkloadSimulator(result, accounting=WriteAccounting.NO_ATTRIBUTES)


def test_queries_executed_counted(tiny_coefficients):
    result = single_site_partitioning(tiny_coefficients)
    report = WorkloadSimulator(result).run()
    assert report.queries_executed == 4
