"""PartitioningResult and layout rendering."""

import numpy as np
import pytest

from repro.costmodel.evaluator import SolutionEvaluator
from repro.exceptions import InstanceError
from repro.partition.assignment import PartitioningResult, single_site_partitioning
from repro.partition.layout import build_layout, layout_summary, render_layout
from tests.conftest import random_feasible_solution


@pytest.fixture
def result(tiny_coefficients):
    x, y = random_feasible_solution(tiny_coefficients, 2, seed=5)
    evaluator = SolutionEvaluator(tiny_coefficients)
    return PartitioningResult(
        coefficients=tiny_coefficients,
        x=x,
        y=y,
        objective=evaluator.objective4(x, y),
        solver="test",
    )


class TestPartitioningResult:
    def test_rejects_infeasible_solutions(self, tiny_coefficients):
        x = np.zeros((2, 2), dtype=bool)  # nobody placed
        y = np.ones((5, 2), dtype=bool)
        with pytest.raises(InstanceError, match="infeasible"):
            PartitioningResult(
                coefficients=tiny_coefficients, x=x, y=y,
                objective=0.0, solver="bad",
            )

    def test_accessors(self, result):
        assert result.num_sites == 2
        site = result.transaction_site("Reader")
        assert site in (0, 1)
        sites = result.attribute_sites("Narrow.key")
        assert len(sites) >= 1

    def test_replication_factor(self, result):
        expected = result.y.sum() / result.y.shape[0]
        assert result.replication_factor == pytest.approx(expected)

    def test_breakdown_consistent_with_objective(self, result):
        assert result.breakdown().objective4 == pytest.approx(result.objective)

    def test_is_disjoint(self, tiny_coefficients):
        x = np.zeros((2, 2), dtype=bool)
        x[:, 0] = True
        y = np.zeros((5, 2), dtype=bool)
        y[:, 0] = True
        evaluator = SolutionEvaluator(tiny_coefficients)
        result = PartitioningResult(
            coefficients=tiny_coefficients, x=x, y=y,
            objective=evaluator.objective4(x, y), solver="t",
        )
        assert result.is_disjoint


class TestSingleSite:
    def test_everything_on_one_site(self, tiny_coefficients):
        result = single_site_partitioning(tiny_coefficients)
        assert result.num_sites == 1
        assert result.x.all() and result.y.all()
        assert result.proven_optimal
        assert result.objective == pytest.approx(
            tiny_coefficients.single_site_cost()
        )


class TestLayout:
    def test_build_layout_partitions_everything(self, result):
        layouts = build_layout(result)
        assert len(layouts) == 2
        all_transactions = [t for l in layouts for t in l.transactions]
        assert sorted(all_transactions) == ["Reader", "Writer"]
        # Every attribute appears on at least one site.
        attributes = {a for l in layouts for a in l.attributes}
        assert len(attributes) == 5

    def test_fractions_group_by_table(self, result):
        layouts = build_layout(result)
        for layout in layouts:
            for table, names in layout.fractions.items():
                assert table in ("Narrow", "Wide")
                assert names  # non-empty fractions only

    def test_render_contains_sites_and_transactions(self, result):
        text = render_layout(result)
        assert "Site 1" in text and "Site 2" in text
        assert "Transaction" in text

    def test_render_truncation(self, result):
        text = render_layout(result, max_rows=3)
        assert "truncated" in text

    def test_layout_summary_shows_loads(self, result):
        text = layout_summary(result)
        assert "site 1" in text and "load" in text
