"""findSolution sub-problems: greedy vs exact, forced replicas, repair."""

import numpy as np
import pytest

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator, check_solution_feasible
from repro.exceptions import SolverError
from repro.sa.state import random_transaction_placement
from repro.sa.subsolve import SubproblemSolver
from tests.conftest import small_random_instance


@pytest.fixture
def solver2(tiny_coefficients):
    return SubproblemSolver(tiny_coefficients, 2)


class TestOptimizeY:
    def test_forced_replicas_cover_reads(self, solver2, tiny_coefficients):
        rng = np.random.default_rng(0)
        x = random_transaction_placement(2, 2, rng)
        y = solver2.optimize_y_greedy(x)
        assert check_solution_feasible(tiny_coefficients, x, y)

    def test_every_attribute_covered(self, solver2):
        rng = np.random.default_rng(1)
        x = random_transaction_placement(2, 2, rng)
        y = solver2.optimize_y_greedy(x)
        assert (y.sum(axis=1) >= 1).all()

    def test_write_only_attribute_lands_at_writer_site(self):
        """With pure cost (lambda=1), a write-only attribute's single
        replica goes to the writing transaction's site: the
        -p*alpha*delta rebate makes it the cheapest covering site.

        (Note: the rebate can cancel but never overshoot the replica's
        own write+transfer cost, so k >= 0 always — replication is
        driven by co-location and covering, matching the paper's
        Table 4 where write-only attributes float to one site.)
        """
        from repro.model.schema import SchemaBuilder
        from repro.model.workload import Query, Transaction, Workload
        from repro.model.instance import ProblemInstance

        schema = SchemaBuilder("w").table("T", key=4, counter=8).build()
        workload = Workload(
            [
                Transaction("Reader", (Query.read("r", ["T.key"]),)),
                Transaction("Writer", (Query.write("w", ["T.counter"]),)),
            ]
        )
        instance = ProblemInstance(schema, workload)
        coefficients = build_coefficients(
            instance, CostParameters(load_balance_lambda=1.0)
        )
        solver = SubproblemSolver(coefficients, 2)
        x = np.zeros((2, 2), dtype=bool)
        x[instance.transaction_index["Reader"], 0] = True
        x[instance.transaction_index["Writer"], 1] = True
        y = solver.optimize_y_greedy(x)
        counter = instance.attribute_index["T.counter"]
        assert y[counter, 1] and not y[counter, 0]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_greedy_matches_exact_pure_cost(self, seed):
        """For lambda = 1 the greedy y-step is provably optimal: compare
        against the exact MIP sub-solve."""
        instance = small_random_instance(seed)
        coefficients = build_coefficients(
            instance, CostParameters(load_balance_lambda=1.0)
        )
        solver = SubproblemSolver(coefficients, 3)
        evaluator = SolutionEvaluator(coefficients)
        rng = np.random.default_rng(seed)
        x = random_transaction_placement(coefficients.num_transactions, 3, rng)
        greedy = solver.optimize_y_greedy(x)
        exact = solver.optimize_y_exact(x)
        assert evaluator.objective6(x, greedy) == pytest.approx(
            evaluator.objective6(x, exact), rel=1e-9
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_greedy_close_to_exact_with_load_balance(self, seed):
        instance = small_random_instance(seed)
        coefficients = build_coefficients(instance, CostParameters())
        solver = SubproblemSolver(coefficients, 2)
        evaluator = SolutionEvaluator(coefficients)
        rng = np.random.default_rng(seed + 10)
        x = random_transaction_placement(coefficients.num_transactions, 2, rng)
        greedy_cost = evaluator.objective6(x, solver.optimize_y_greedy(x))
        exact_cost = evaluator.objective6(x, solver.optimize_y_exact(x))
        assert greedy_cost >= exact_cost - 1e-9
        assert greedy_cost <= exact_cost * 1.25  # within 25%


class TestDisjointY:
    def test_single_replica_everywhere(self, tiny_coefficients):
        solver = SubproblemSolver(tiny_coefficients, 2)
        x = np.zeros((2, 2), dtype=bool)
        x[:, 0] = True  # co-located -> disjoint feasible
        y = solver.optimize_y_greedy(x, disjoint=True)
        assert (y.sum(axis=1) == 1).all()
        assert check_solution_feasible(tiny_coefficients, x, y)

    def test_conflicting_readers_rejected(self, tiny_coefficients):
        solver = SubproblemSolver(tiny_coefficients, 2)
        x = np.zeros((2, 2), dtype=bool)
        x[0, 0] = x[1, 1] = True  # both read Narrow.key on different sites
        with pytest.raises(SolverError, match="disjoint"):
            solver.optimize_y_greedy(x, disjoint=True)


class TestOptimizeX:
    def test_respects_colocation(self, tiny_coefficients):
        solver = SubproblemSolver(tiny_coefficients, 2)
        y = np.zeros((5, 2), dtype=bool)
        y[:, 0] = True  # everything on site 0 only
        x = solver.optimize_x_greedy(y)
        assert x[:, 0].all()  # no transaction can leave site 0

    def test_allowed_sites_mask(self, tiny_coefficients):
        solver = SubproblemSolver(tiny_coefficients, 2)
        y = np.ones((5, 2), dtype=bool)
        allowed = solver.allowed_sites(y)
        assert allowed.all()
        y[:, 1] = False
        allowed = solver.allowed_sites(y)
        assert allowed[:, 0].all() and not allowed[:, 1].any()

    def test_repair_adds_missing_replicas(self, tiny_coefficients):
        solver = SubproblemSolver(tiny_coefficients, 2)
        x = np.zeros((2, 2), dtype=bool)
        x[0, 0] = x[1, 1] = True
        y = np.zeros((5, 2), dtype=bool)
        y[:, 0] = True
        repaired = solver.repair_y(x, y)
        assert check_solution_feasible(tiny_coefficients, x, repaired)
        # Repair only adds replicas, never removes.
        assert (repaired | y).sum() == repaired.sum()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_x_not_worse_than_greedy(self, seed):
        instance = small_random_instance(seed)
        coefficients = build_coefficients(instance, CostParameters())
        solver = SubproblemSolver(coefficients, 2)
        evaluator = SolutionEvaluator(coefficients)
        rng = np.random.default_rng(seed)
        x0 = random_transaction_placement(coefficients.num_transactions, 2, rng)
        y = solver.optimize_y_greedy(x0)
        x_greedy = solver.optimize_x_greedy(y)
        x_exact = solver.optimize_x_exact(y)
        y_greedy = solver.repair_y(x_greedy, y)
        y_exact = solver.repair_y(x_exact, y)
        assert evaluator.objective6(x_exact, y_exact) <= (
            evaluator.objective6(x_greedy, y_greedy) + 1e-6
        )


class TestFastMatchesLoop:
    """The default fast balance-aware placements must be *bitwise* equal
    to the reference loop path (``vectorized=False``) — same IEEE
    operations in the same order, only the per-iteration overhead gone."""

    @pytest.mark.parametrize("lam", [0.3, 0.5, 0.9])
    @pytest.mark.parametrize("num_sites", [2, 4])
    def test_optimize_y_bitwise_equal(self, lam, num_sites):
        for seed in range(4):
            instance = small_random_instance(seed)
            coefficients = build_coefficients(
                instance, CostParameters(load_balance_lambda=lam)
            )
            fast = SubproblemSolver(coefficients, num_sites)
            loop = SubproblemSolver(coefficients, num_sites, vectorized=False)
            rng = np.random.default_rng(seed)
            x = random_transaction_placement(
                coefficients.num_transactions, num_sites, rng
            )
            np.testing.assert_array_equal(
                fast.optimize_y_greedy(x), loop.optimize_y_greedy(x)
            )

    @pytest.mark.parametrize("lam", [0.3, 0.5, 0.9])
    @pytest.mark.parametrize("num_sites", [2, 4])
    def test_optimize_x_bitwise_equal(self, lam, num_sites):
        for seed in range(4):
            instance = small_random_instance(seed)
            coefficients = build_coefficients(
                instance, CostParameters(load_balance_lambda=lam)
            )
            fast = SubproblemSolver(coefficients, num_sites)
            loop = SubproblemSolver(coefficients, num_sites, vectorized=False)
            rng = np.random.default_rng(seed + 20)
            x0 = random_transaction_placement(
                coefficients.num_transactions, num_sites, rng
            )
            y = fast.optimize_y_greedy(x0)
            np.testing.assert_array_equal(
                fast.optimize_x_greedy(y), loop.optimize_x_greedy(y)
            )

    @pytest.mark.parametrize("lam", [0.5, 1.0])
    def test_disjoint_bitwise_equal(self, lam):
        for seed in range(4):
            instance = small_random_instance(seed)
            coefficients = build_coefficients(
                instance, CostParameters(load_balance_lambda=lam)
            )
            fast = SubproblemSolver(coefficients, 3)
            loop = SubproblemSolver(coefficients, 3, vectorized=False)
            x = np.zeros((coefficients.num_transactions, 3), dtype=bool)
            x[:, seed % 3] = True  # co-located -> disjoint feasible
            np.testing.assert_array_equal(
                fast.optimize_y_greedy(x, disjoint=True),
                loop.optimize_y_greedy(x, disjoint=True),
            )

    def test_negative_candidate_branch_bitwise_equal(self):
        """Synthetic ``k`` with many negative entries exercises the
        cost-negative replica scan (real instances often have none)."""
        instance = small_random_instance(1)
        coefficients = build_coefficients(
            instance, CostParameters(load_balance_lambda=0.5)
        )
        num_sites = 3
        fast = SubproblemSolver(coefficients, num_sites)
        loop = SubproblemSolver(coefficients, num_sites, vectorized=False)
        rng = np.random.default_rng(0)
        num_attributes = coefficients.num_attributes
        x = random_transaction_placement(
            coefficients.num_transactions, num_sites, rng
        )
        forced = fast.forced_y(x)
        for trial in range(5):
            k = rng.normal(scale=50.0, size=(num_attributes, num_sites))
            load_weight = rng.uniform(0.0, 30.0, size=(num_attributes, num_sites))
            assert (k < 0).sum() > 0
            np.testing.assert_array_equal(
                fast.optimize_y_greedy(
                    x, k=k, load_weight=load_weight, forced=forced
                ),
                loop.optimize_y_greedy(
                    x, k=k, load_weight=load_weight, forced=forced
                ),
            )

    def test_tie_break_prefers_first_site(self):
        """Equal scores must resolve to the lowest site index on both
        paths (the numpy argmin convention)."""
        instance = small_random_instance(2)
        coefficients = build_coefficients(
            instance, CostParameters(load_balance_lambda=0.5)
        )
        num_sites = 4
        fast = SubproblemSolver(coefficients, num_sites)
        loop = SubproblemSolver(coefficients, num_sites, vectorized=False)
        num_attributes = coefficients.num_attributes
        x = np.zeros((coefficients.num_transactions, num_sites), dtype=bool)
        x[:, 0] = True
        forced = fast.forced_y(x)
        k = np.zeros((num_attributes, num_sites))  # all scores tie
        load_weight = np.ones((num_attributes, num_sites))
        fast_y = fast.optimize_y_greedy(x, k=k, load_weight=load_weight, forced=forced)
        loop_y = loop.optimize_y_greedy(x, k=k, load_weight=load_weight, forced=forced)
        np.testing.assert_array_equal(fast_y, loop_y)


class TestPrecomputedInputs:
    """The keyword-only precomputed inputs (fed by the incremental
    evaluator) must reproduce the dense computation exactly."""

    @pytest.mark.parametrize("lam", [1.0, 0.6])
    @pytest.mark.parametrize("disjoint", [False, True])
    def test_optimize_y_matches_dense(self, lam, disjoint):
        for seed in range(3):
            instance = small_random_instance(seed)
            coefficients = build_coefficients(
                instance, CostParameters(load_balance_lambda=lam)
            )
            solver = SubproblemSolver(coefficients, 3)
            rng = np.random.default_rng(seed)
            if disjoint:
                # Disjoint needs conflict-free forced sites.
                x = np.zeros((coefficients.num_transactions, 3), dtype=bool)
                x[:, 1] = True
            else:
                x = random_transaction_placement(
                    coefficients.num_transactions, 3, rng
                )
            xs = x.astype(float)
            k = lam * (coefficients.c1 @ xs + coefficients.c2[:, None])
            load_weight = coefficients.c3 @ xs + coefficients.c4[:, None]
            forced = solver.forced_y(x)
            np.testing.assert_array_equal(
                solver.optimize_y_greedy(
                    x, disjoint=disjoint, k=k, load_weight=load_weight, forced=forced
                ),
                solver.optimize_y_greedy(x, disjoint=disjoint),
            )

    @pytest.mark.parametrize("lam", [1.0, 0.6])
    def test_optimize_x_matches_dense(self, lam):
        for seed in range(3):
            instance = small_random_instance(seed)
            coefficients = build_coefficients(
                instance, CostParameters(load_balance_lambda=lam)
            )
            solver = SubproblemSolver(coefficients, 3)
            rng = np.random.default_rng(seed)
            x0 = random_transaction_placement(coefficients.num_transactions, 3, rng)
            y = solver.optimize_y_greedy(x0)
            ys = y.astype(float)
            np.testing.assert_array_equal(
                solver.optimize_x_greedy(
                    y,
                    cost=lam * (coefficients.c1.T @ ys),
                    read_load=coefficients.c3.T @ ys,
                    missing=solver.phi.T @ (1.0 - ys),
                    static_load=coefficients.c4 @ ys,
                ),
                solver.optimize_x_greedy(y),
            )
